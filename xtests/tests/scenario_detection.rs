//! Scenario-driven integration tests: scripted infrastructure changes
//! must surface in the observatory's detection analyses — the oracle
//! that replaces the paper's manual DNSDB verification.

use dns_observatory::analysis::ttl::{self, ChangeCategory};
use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{ScanFlood, Scenario, ScenarioEvent, ScenarioKind, SimConfig, Simulation};

fn run_with(
    scenario: Scenario,
    datasets: Vec<(Dataset, usize)>,
    secs: f64,
    window: f64,
) -> dns_observatory::TimeSeriesStore {
    let mut sim = Simulation::new(SimConfig::small(), scenario);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets,
        window_secs: window,
        ..ObservatoryConfig::default()
    });
    sim.run(secs, &mut |tx| obs.ingest(tx));
    obs.finish()
}

#[test]
fn ttl_cut_multiplies_cache_misses() {
    // Domain 1 is popular enough that per-resolver demand outruns a 20 s
    // TTL; old entries drain within 20 s of the cut, so comparing the
    // last pre-change windows with the last post-change windows isolates
    // the effect.
    let scenario = Scenario::from_events([
        ScenarioEvent {
            at: 0.0,
            domain: 1,
            kind: ScenarioKind::SetATtl(20),
        },
        ScenarioEvent {
            at: 30.0,
            domain: 1,
            kind: ScenarioKind::SetATtl(1),
        },
    ]);
    let probe = Simulation::new(SimConfig::small(), Scenario::new());
    let props = probe.world().domains.props(1);
    let fqdn = probe.world().domains.fqdn(&props, 0).to_ascii();
    drop(probe);

    let store = run_with(scenario, vec![(Dataset::Qname, 10_000)], 60.0, 5.0);
    let windows = store.dataset(Dataset::Qname);
    let series = ttl::key_series(&windows, &fqdn);
    let before: u64 = series
        .iter()
        .filter(|p| p.start >= 20.0 && p.start < 30.0)
        .map(|p| p.hits)
        .sum();
    let after: u64 = series
        .iter()
        .filter(|p| p.start >= 50.0)
        .map(|p| p.hits)
        .sum();
    assert!(
        after > 3 * before.max(1),
        "TTL cut: before {before}, after {after}"
    );
}

#[test]
fn renumbering_detected_and_classified() {
    let mut scenario = Scenario::new();
    for e in Scenario::planned_change(4, 40.0, 10.0, ScenarioKind::Renumber, 20, 3_600) {
        scenario.push(e);
    }
    let store = run_with(scenario, vec![(Dataset::AaFqdn, 10_000)], 80.0, 10.0);
    let windows = store.dataset(Dataset::AaFqdn);
    let changes = ttl::detect_changes(&windows);
    let hit = changes
        .iter()
        .any(|c| c.key.contains("dom4.") && c.category == ChangeCategory::Renumbering);
    assert!(
        hit,
        "renumbering of dom4 not recovered; got {:?}",
        changes
            .iter()
            .filter(|c| c.key.contains("dom4."))
            .map(|c| (c.key.clone(), c.category))
            .collect::<Vec<_>>()
    );
}

#[test]
fn ns_change_detected_on_esld_key() {
    // NS answers normally live a day in caches, hiding NS changes from a
    // short run; dial the NS TTL down and the NS query rate up so every
    // resolver re-learns the NS set within the observation window.
    let cfg = SimConfig {
        ttl_ns: 20,
        weight_ns: 30.0,
        ..SimConfig::small()
    };
    let scenario = Scenario::from_events([
        ScenarioEvent {
            at: 0.0,
            domain: 6,
            kind: ScenarioKind::SetATtl(600),
        },
        ScenarioEvent {
            at: 40.0,
            domain: 6,
            kind: ScenarioKind::ChangeNs,
        },
    ]);
    let mut sim = Simulation::new(cfg, scenario);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::AaFqdn, 10_000)],
        window_secs: 10.0,
        ..ObservatoryConfig::default()
    });
    sim.run(80.0, &mut |tx| obs.ingest(tx));
    let store = obs.finish();
    let windows = store.dataset(Dataset::AaFqdn);
    let changes = ttl::detect_changes(&windows);
    let found = changes
        .iter()
        .any(|c| c.key.contains("dom6.") && c.category == ChangeCategory::ChangeNs);
    assert!(
        found,
        "NS change not detected; dom6 detections: {:?}",
        changes
            .iter()
            .filter(|c| c.key.contains("dom6."))
            .map(|c| (c.key.clone(), c.category))
            .collect::<Vec<_>>()
    );
}

#[test]
fn nonconforming_server_flagged() {
    let scenario = Scenario::from_events([ScenarioEvent {
        at: 0.0,
        domain: 2,
        kind: ScenarioKind::SetNonconforming(true),
    }]);
    let store = run_with(scenario, vec![(Dataset::AaFqdn, 10_000)], 100.0, 25.0);
    let windows = store.dataset(Dataset::AaFqdn);
    let changes = ttl::detect_changes(&windows);
    let found = changes
        .iter()
        .any(|c| c.key.contains("dom2.") && c.category == ChangeCategory::NonConforming);
    assert!(found, "variable-TTL server not flagged");
}

#[test]
fn scan_flood_raises_queries_not_responses() {
    let mut scenario = Scenario::new();
    scenario.push_flood(ScanFlood {
        domain: 7,
        start: 20.0,
        end: 40.0,
        rate: 300.0,
    });
    let store = run_with(scenario, vec![(Dataset::Esld, 10_000)], 40.0, 10.0);
    let windows = store.dataset(Dataset::Esld);
    let probe = Simulation::new(SimConfig::small(), Scenario::new());
    let esld = probe.world().domains.props(7).esld.to_ascii();
    drop(probe);
    let series = ttl::key_series(&windows, &esld);
    let calm: u64 = series
        .iter()
        .filter(|p| p.start < 20.0)
        .map(|p| p.hits)
        .sum();
    let flooded: u64 = series
        .iter()
        .filter(|p| p.start >= 20.0)
        .map(|p| p.hits)
        .sum();
    assert!(
        flooded > 3 * calm.max(1),
        "flood invisible: {calm} -> {flooded}"
    );
    // Responses (ok) must not grow with the queries: the flood is NXD.
    let calm_ok: u64 = series.iter().filter(|p| p.start < 20.0).map(|p| p.ok).sum();
    let flooded_ok: u64 = series
        .iter()
        .filter(|p| p.start >= 20.0)
        .map(|p| p.ok)
        .sum();
    assert!(
        (flooded_ok as f64) < 2.0 * calm_ok.max(1) as f64,
        "flood should not raise NoError responses: {calm_ok} -> {flooded_ok}"
    );
}

#[test]
fn ipv6_turnup_kills_empty_aaaa() {
    let probe = Simulation::new(SimConfig::small(), Scenario::new());
    let victim = (1..=100)
        .find(|&id| {
            let p = probe.world().domains.props(id);
            !p.has_ipv6 && p.neg_ttl <= 60
        })
        .expect("an IPv4-only, short-negTTL domain exists");
    let fqdn = {
        let p = probe.world().domains.props(victim);
        probe.world().domains.fqdn(&p, 0).to_ascii()
    };
    drop(probe);

    let scenario = Scenario::from_events([ScenarioEvent {
        at: 40.0,
        domain: victim,
        kind: ScenarioKind::EnableIpv6,
    }]);
    let store = run_with(scenario, vec![(Dataset::Qname, 10_000)], 80.0, 10.0);
    let windows = store.dataset(Dataset::Qname);
    let turnup = dns_observatory::analysis::happy::ipv6_turnup(&windows, &fqdn, 40.0)
        .expect("victim fqdn tracked");
    assert!(
        turnup.empty_share_before > 0.2,
        "{}",
        turnup.empty_share_before
    );
    assert!(
        turnup.empty_share_after < 0.5 * turnup.empty_share_before,
        "share did not collapse: {} -> {}",
        turnup.empty_share_before,
        turnup.empty_share_after
    );
}
