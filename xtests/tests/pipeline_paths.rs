//! Pipeline-path equivalence and robustness: raw packets vs structured
//! ingest, the threaded pipeline, TSV round-trips of real dumps, and
//! fault injection on the wire.

use dns_observatory::{
    tsv, Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TimeSeriesStore,
};
use simnet::{SimConfig, Simulation};

fn obs_cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 2_000),
            (Dataset::Esld, 2_000),
            (Dataset::Qtype, 64),
        ],
        window_secs: 2.0,
        ..ObservatoryConfig::default()
    }
}

fn stores_equal(a: &TimeSeriesStore, b: &TimeSeriesStore) {
    assert_eq!(a.windows().len(), b.windows().len());
    for (wa, wb) in a.windows().iter().zip(b.windows()) {
        assert_eq!(wa.dataset, wb.dataset);
        assert_eq!(wa.start, wb.start);
        assert_eq!(
            wa.rows.len(),
            wb.rows.len(),
            "{} @ {}",
            wa.dataset,
            wa.start
        );
        for ((ka, ra), (kb, rb)) in wa.rows.iter().zip(&wb.rows) {
            assert_eq!(ka, kb);
            assert_eq!(ra.hits, rb.hits, "key {ka}");
            assert_eq!(ra.nxd, rb.nxd);
            assert_eq!(ra.ok_nil, rb.ok_nil);
        }
    }
}

#[test]
fn packet_and_structured_paths_agree_at_scale() {
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut structured = Observatory::new(obs_cfg());
    let mut packets = Observatory::new(obs_cfg());
    sim.run(6.0, &mut |tx| {
        structured.ingest(tx);
        let (q, r) = tx.to_packets();
        packets.ingest_packets(&q, r.as_deref(), tx.time, tx.contributor, tx.delay_ms);
    });
    assert!(structured.ingested() > 5_000);
    assert_eq!(structured.ingested(), packets.ingested());
    stores_equal(&structured.finish(), &packets.finish());
}

#[test]
fn threaded_pipeline_equals_single_threaded_at_scale() {
    let mut sim = Simulation::from_config(SimConfig::small());
    let txs = sim.collect(6.0);
    let mut single = Observatory::new(obs_cfg());
    for tx in &txs {
        single.ingest(tx);
    }
    let threaded = ThreadedPipeline::new(obs_cfg(), 8).run(txs);
    stores_equal(&single.finish(), &threaded);
}

#[test]
fn corrupted_packets_are_dropped_not_fatal() {
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut obs = Observatory::new(obs_cfg());
    let mut corrupted = 0u64;
    let mut i = 0u64;
    sim.run(2.0, &mut |tx| {
        let (mut q, r) = tx.to_packets();
        i += 1;
        if i.is_multiple_of(7) {
            // Flip a byte somewhere in the packet: must never panic, and
            // unparseable results are silently dropped.
            let pos = (i as usize * 13) % q.len();
            q[pos] ^= 0xff;
            corrupted += 1;
        }
        obs.ingest_packets(&q, r.as_deref(), tx.time, tx.contributor, tx.delay_ms);
    });
    assert!(corrupted > 100);
    assert!(obs.ingested() > 0);
    let store = obs.finish();
    assert!(!store.windows().is_empty());
}

#[test]
fn tsv_roundtrip_of_real_windows() {
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut obs = Observatory::new(obs_cfg());
    sim.run(4.0, &mut |tx| obs.ingest(tx));
    let store = obs.finish();
    let mut checked = 0;
    for window in store.windows() {
        if window.rows.is_empty() {
            continue;
        }
        let mut buf = Vec::new();
        tsv::write_window(&mut buf, window).unwrap();
        let parsed = tsv::read_window(&buf[..]).unwrap();
        assert_eq!(parsed.dataset, window.dataset);
        assert_eq!(parsed.rows.len(), window.rows.len());
        assert_eq!(parsed.kept, window.kept);
        for ((ka, ra), (kb, rb)) in window.rows.iter().zip(&parsed.rows) {
            assert_eq!(ka, kb);
            assert_eq!(ra.hits, rb.hits);
            assert_eq!(ra.ttl_top.len(), rb.ttl_top.len());
        }
        checked += 1;
    }
    assert!(checked > 5, "checked only {checked} windows");
}

#[test]
fn aggregation_ladder_preserves_rates() {
    use dns_observatory::aggregate::{Aggregator, Level};
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::Qtype, 64)],
        window_secs: 1.0,
        ..ObservatoryConfig::default()
    });
    sim.run(8.5, &mut |tx| obs.ingest(tx));
    let store = obs.finish();
    let minutely: Vec<_> = store.dataset(Dataset::Qtype);

    let mut agg = Aggregator::new(&[
        Level {
            name: "4s",
            fan_in: 4,
            retention: 100,
        },
        Level {
            name: "8s",
            fan_in: 2,
            retention: 100,
        },
    ]);
    for w in &minutely {
        agg.push((*w).clone());
    }
    assert_eq!(agg.completed(0).len(), 2);
    assert_eq!(agg.completed(1).len(), 1);
    // The rolled-up A rate must equal the mean of the inputs.
    let coarse = &agg.completed(1)[0];
    let a_rate = coarse.get("A").map(|r| r.hits).unwrap_or(0);
    let mean_a: u64 = minutely[..8]
        .iter()
        .map(|w| w.get("A").map(|r| r.hits).unwrap_or(0))
        .sum::<u64>()
        / 8;
    let diff = (a_rate as i64 - mean_a as i64).abs();
    assert!(diff <= 2, "rollup A rate {a_rate} vs mean {mean_a}");
}

#[test]
fn determinism_across_runs() {
    let run = || {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(obs_cfg());
        sim.run(3.0, &mut |tx| obs.ingest(tx));
        obs.finish()
    };
    stores_equal(&run(), &run());
}
