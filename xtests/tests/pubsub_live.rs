//! Live-serving integration: the acceptance bar for the subscription
//! tier is *render equivalence* — a subscriber following the broker's
//! snapshot-then-delta stream over real TCP must write, byte for byte,
//! the same TSV windows the server renders from its own sealed states.
//! A mid-stream joiner must converge through the connect-time snapshot
//! and then ride deltas to the same final bytes.
//!
//! The publisher and subscriber run lock-step over a channel (the
//! subscriber acks each rendered window before the next seal), so the
//! tests are race-free without a single sleep.

use chaos::storecrash::workload;
use dns_observatory::{render_state, tsv, Dataset, ObservatoryConfig, StateExporter};
use pubsub::{ServeConfig, Server, SubEvent, SubscribeClient};
use simnet::{SimConfig, Simulation};
use sketchwire::WindowState;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread;
use telemetry::{Registry, TraceRing};

/// Real per-window sketch exports from the federated tier: a seeded
/// simulation through a [`StateExporter`], grouped into one batch per
/// sealed window — exactly what `--serve` publishes on the seal path.
fn exported_batches(seed: u64) -> Vec<Vec<WindowState>> {
    let cfg = ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 500),
            (Dataset::Esld, 500),
            (Dataset::Qtype, 64),
        ],
        window_secs: 1.0,
        ..ObservatoryConfig::default()
    };
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::small()
    });
    let mut exporter = StateExporter::new(cfg, 1, 0);
    let mut states = Vec::new();
    sim.run(6.0, &mut |tx| exporter.ingest(tx, &mut states));
    exporter.finish(&mut states);

    let mut by_start: BTreeMap<u64, Vec<WindowState>> = BTreeMap::new();
    for ws in states {
        by_start
            .entry((ws.start * 1e6) as u64)
            .or_default()
            .push(ws);
    }
    let batches: Vec<Vec<WindowState>> = by_start.into_values().collect();
    assert!(batches.len() >= 4, "simulation sealed too few windows");
    batches
}

/// Render one window state exactly as `dnsobs` writes it locally.
fn render_bytes(state: &sketchwire::TopKState, start: f64, length: f64) -> Vec<u8> {
    let dump = render_state(state, start, length).expect("exported state renders");
    let mut buf = Vec::new();
    tsv::write_window(&mut buf, &dump).expect("in-memory write");
    buf
}

/// The reference output: every exported window rendered directly,
/// keyed by `(dataset, start-seconds)`.
fn reference(work: &[Vec<WindowState>]) -> BTreeMap<(String, u64), Vec<u8>> {
    let mut out = BTreeMap::new();
    for batch in work {
        for ws in batch {
            out.insert(
                (ws.topk.dataset.clone(), ws.start as u64),
                render_bytes(&ws.topk, ws.start, ws.length),
            );
        }
    }
    out
}

fn bind_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServeConfig::default(),
        &Registry::new(),
        TraceRing::disabled(),
    )
    .expect("bind serving tier")
}

/// A subscriber thread that renders every window event and acks each
/// one over `acks`; returns its rendered files and core counters.
#[allow(clippy::type_complexity)]
fn spawn_subscriber(
    addr: String,
    acks: mpsc::Sender<(String, u64)>,
) -> thread::JoinHandle<(BTreeMap<(String, u64), Vec<u8>>, u64, u64)> {
    thread::spawn(move || {
        let mut client = SubscribeClient::connect(addr, &[]).expect("connect subscriber");
        let mut files = BTreeMap::new();
        while let Ok(Some(ev)) = client.next_event() {
            match ev {
                SubEvent::Window(h) => {
                    let key = (h.state.dataset.clone(), h.start as u64);
                    files.insert(key.clone(), render_bytes(&h.state, h.start, h.length));
                    let _ = acks.send(key);
                }
                SubEvent::End => break,
                other => panic!("unexpected event: {other:?}"),
            }
        }
        let snaps = client.core().snapshots_applied();
        let deltas = client.core().deltas_applied();
        (files, snaps, deltas)
    })
}

#[test]
fn live_stream_renders_byte_identical_tsv_windows() {
    let work = exported_batches(3);
    let expect = reference(&work);
    let total_states: usize = work.iter().map(|b| b.len()).sum();
    let datasets = work[0].len();

    let mut server = bind_server();
    let mut handle = server.take_handle().expect("first take wins");
    let (ack_tx, ack_rx) = mpsc::channel();
    let sub = spawn_subscriber(server.local_addr().to_string(), ack_tx);

    // Lock-step: the subscriber acks every dataset of window w before
    // window w+1 seals, so every window rides the wire (the first as a
    // snapshot, the rest as deltas) and none is coalesced away.
    for batch in &work {
        assert!(handle.publish_windows(batch.clone()), "ingest ring full");
        for _ in 0..batch.len() {
            ack_rx.recv().expect("subscriber ack");
        }
    }
    drop(handle);
    let report = server.finish();
    let (files, snaps, deltas) = sub.join().expect("subscriber thread");

    assert_eq!(files.len(), expect.len(), "window count differs");
    for (key, bytes) in &expect {
        assert_eq!(
            files.get(key).expect("window arrived"),
            bytes,
            "window {key:?} differs from the local render"
        );
    }
    // Steady state is deltas: one snapshot per dataset, then diffs.
    assert_eq!(snaps, datasets as u64);
    assert_eq!(deltas, (total_states - datasets) as u64);
    assert_eq!(report.clients_seen, 1);
    assert_eq!(report.undelivered, 0, "clean run must deliver everything");
}

#[test]
fn mid_stream_joiner_converges_via_snapshot_then_deltas() {
    let work = exported_batches(11);
    let expect = reference(&work);
    let half = work.len() / 2;
    let datasets = work[0].len();

    let mut server = bind_server();
    let mut handle = server.take_handle().expect("first take wins");

    // First half seals with no subscribers at all.
    for batch in &work[..half] {
        assert!(handle.publish_windows(batch.clone()), "ingest ring full");
    }

    // A late joiner connects, then the second half seals lock-step.
    let (ack_tx, ack_rx) = mpsc::channel();
    let sub = spawn_subscriber(server.local_addr().to_string(), ack_tx);
    // The connect-time snapshot (one per dataset) is the join barrier:
    // once acked, the broker has processed the handshake.
    for _ in 0..datasets {
        ack_rx.recv().expect("connect snapshot");
    }
    for batch in &work[half..] {
        assert!(handle.publish_windows(batch.clone()), "ingest ring full");
        for _ in 0..batch.len() {
            ack_rx.recv().expect("subscriber ack");
        }
    }
    drop(handle);
    server.finish();
    let (files, snaps, deltas) = sub.join().expect("subscriber thread");

    // Every window it held — the joined snapshot and everything after —
    // must be byte-identical to the direct render.
    assert!(
        files.len() >= (work.len() - half) * datasets,
        "joiner missed windows: got {}",
        files.len()
    );
    for (key, bytes) in &files {
        assert_eq!(
            bytes,
            expect.get(key).expect("known window"),
            "window {key:?} differs from the local render"
        );
    }
    // It must end on the final window of every dataset.
    let last_start = work[work.len() - 1][0].start as u64;
    for ws in &work[work.len() - 1] {
        assert!(
            files.contains_key(&(ws.topk.dataset.clone(), last_start)),
            "{} never reached the final window",
            ws.topk.dataset
        );
    }
    assert_eq!(snaps, datasets as u64, "exactly one snapshot per dataset");
    assert!(deltas >= ((work.len() - half - 1) * datasets) as u64);
}

#[test]
fn meta_payloads_ride_the_same_stream() {
    // Toy sketch states are fine here: meta bytes are opaque to the
    // broker and nothing is rendered.
    let work = workload(2, 6, &["esld", "qtype"]);
    let datasets = 2;
    let mut server = bind_server();
    let mut handle = server.take_handle().expect("first take wins");

    let (tx, rx) = mpsc::channel();
    let addr = server.local_addr().to_string();
    let sub = thread::spawn(move || {
        let mut client = SubscribeClient::connect(addr, &[]).expect("connect subscriber");
        let mut metas = Vec::new();
        while let Ok(Some(ev)) = client.next_event() {
            match ev {
                SubEvent::Window(h) => {
                    let _ = tx.send((h.state.dataset.clone(), h.start as u64));
                }
                SubEvent::Meta { start_us, bytes } => metas.push((start_us, bytes)),
                SubEvent::End => break,
                other => panic!("unexpected event: {other:?}"),
            }
        }
        metas
    });

    let payload = b"queries\t12345\nwindow\t0\n".to_vec();
    assert!(handle.publish_windows(work[0].clone()));
    for _ in 0..datasets {
        rx.recv().expect("window ack");
    }
    assert!(handle.publish_meta(0, payload.clone()));
    assert!(handle.publish_windows(work[1].clone()));
    for _ in 0..datasets {
        rx.recv().expect("window ack");
    }
    drop(handle);
    server.finish();

    let metas = sub.join().expect("subscriber thread");
    assert_eq!(
        metas,
        vec![(0, payload)],
        "meta bytes must survive verbatim"
    );
}
