//! §5.4 remedy mechanics, verified end to end: each proposed measure
//! must reduce exactly the cost it targets, without breaking resolution.

use dnswire::RecordType;
use psl::Psl;
use simnet::{Scenario, SimConfig, Simulation};

struct Counts {
    transactions: u64,
    aaaa_nodata: u64,
    any_with_both: u64,
    answered_web: u64,
}

fn measure(cfg: SimConfig) -> Counts {
    let psl = Psl::embedded();
    let mut sim = Simulation::new(cfg, Scenario::new());
    sim.run(10.0, &mut |_| {}); // warm up
    let mut c = Counts {
        transactions: 0,
        aaaa_nodata: 0,
        any_with_both: 0,
        answered_web: 0,
    };
    // Long enough that short negative TTLs (15 s) expire several times.
    sim.run(60.0, &mut |tx| {
        c.transactions += 1;
        let s = dns_observatory::TxSummary::from_transaction(tx, &psl);
        if s.qtype == RecordType::Aaaa && s.is_nodata() {
            c.aaaa_nodata += 1;
        }
        if s.qtype == RecordType::Any && !s.ip4s.is_empty() && !s.ip6s.is_empty() {
            c.any_with_both += 1;
        }
        if s.ok_ans && matches!(s.qtype, RecordType::A | RecordType::Aaaa | RecordType::Any) {
            c.answered_web += 1;
        }
    });
    c
}

#[test]
fn joint_query_reduces_transactions_and_carries_both_families() {
    let baseline = measure(SimConfig::small());
    let joint = measure(SimConfig {
        remedy_joint_query: true,
        ..SimConfig::small()
    });
    // Dual-stack pairs collapse into single queries: total volume drops.
    assert!(
        (joint.transactions as f64) < 0.95 * baseline.transactions as f64,
        "joint {} vs baseline {}",
        joint.transactions,
        baseline.transactions
    );
    // The joint answers actually carry both address families for
    // dual-stacked domains.
    assert!(joint.any_with_both > 0, "no joint answers with A+AAAA seen");
    // And the AAAA NoData flood disappears (no separate AAAA queries).
    assert!(
        joint.aaaa_nodata < baseline.aaaa_nodata / 4,
        "joint {} vs baseline {}",
        joint.aaaa_nodata,
        baseline.aaaa_nodata
    );
    // Resolution still works.
    assert!(joint.answered_web > 0);
}

#[test]
fn split_negative_caching_reduces_empty_aaaa_for_pathological_fqdns() {
    // The remedy targets domains whose negative TTL is shorter than the
    // A TTL; measure the empty-AAAA flood on exactly those FQDNs.
    let probe = Simulation::new(SimConfig::small(), Scenario::new());
    let victims: Vec<String> = (1..=100u64)
        .filter(|&id| {
            let p = probe.world().domains.props(id);
            !p.has_ipv6 && p.neg_ttl < p.a_ttl
        })
        .map(|id| {
            let p = probe.world().domains.props(id);
            probe.world().domains.fqdn(&p, 0).to_ascii()
        })
        .collect();
    assert!(
        !victims.is_empty(),
        "the small world has pathological domains"
    );
    drop(probe);

    let count_for = |cfg: SimConfig| {
        let mut sim = Simulation::new(cfg, Scenario::new());
        sim.run(10.0, &mut |_| {});
        let mut nodata = 0u64;
        sim.run(60.0, &mut |tx| {
            let q = tx.query.question().unwrap();
            if q.qtype != RecordType::Aaaa {
                return;
            }
            if !victims.iter().any(|v| v == &q.qname.to_ascii()) {
                return;
            }
            if let Some(r) = &tx.response {
                if r.rcode() == dnswire::Rcode::NoError && r.answers.is_empty() {
                    nodata += 1;
                }
            }
        });
        nodata
    };
    let baseline = count_for(SimConfig::small());
    let split = count_for(SimConfig {
        remedy_split_negative: true,
        ..SimConfig::small()
    });
    assert!(
        (split as f64) < 0.6 * baseline as f64,
        "split {split} vs baseline {baseline}"
    );
    assert!(
        baseline > 50,
        "baseline flood too small to judge: {baseline}"
    );
}

#[test]
fn remedies_default_off() {
    let cfg = SimConfig::default();
    assert!(!cfg.remedy_joint_query);
    assert!(!cfg.remedy_split_negative);
}
