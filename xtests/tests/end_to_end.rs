//! End-to-end integration: simulator → observatory → analyses, with
//! assertions on the paper-shaped properties the whole system exists to
//! show.

use dns_observatory::analysis::{delays, distribution, happy, qmin, qtypes};
use dns_observatory::{Dataset, Observatory, ObservatoryConfig, TimeSeriesStore};
use simnet::{SimConfig, Simulation};

fn run(datasets: Vec<(Dataset, usize)>, secs: f64) -> (TimeSeriesStore, Simulation) {
    let mut sim = Simulation::from_config(SimConfig::small());
    // Warm caches briefly so steady-state shapes dominate.
    sim.run(3.0, &mut |_| {});
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets,
        window_secs: secs / 4.0,
        ..ObservatoryConfig::default()
    });
    sim.run(secs, &mut |tx| obs.ingest(tx));
    (obs.finish(), sim)
}

#[test]
fn traffic_concentrates_on_few_servers() {
    let (store, _) = run(vec![(Dataset::SrvIp, 10_000)], 8.0);
    let rows = store.cumulative(Dataset::SrvIp);
    let dist = distribution::traffic_distribution(&rows);
    let total_objects = dist.ranked.len();
    assert!(total_objects > 300, "world too small: {total_objects}");
    // The paper's headline: a small fraction of nameservers carries half
    // the traffic.
    let half_rank = dist.curves[0].rank_for_share(0.5).expect("has traffic");
    assert!(
        (half_rank as f64) < 0.1 * total_objects as f64,
        "50% of traffic needs {half_rank} of {total_objects} servers"
    );
    // NXDOMAIN is even more concentrated (gTLD letters).
    let nxd = dist.curves.iter().find(|c| c.label == "nxdomain").unwrap();
    assert!(
        nxd.at_rank(30) > 0.5,
        "NXD not concentrated: {}",
        nxd.at_rank(30)
    );
}

#[test]
fn qtype_table_matches_paper_shape() {
    let (store, _) = run(vec![(Dataset::Qtype, 64)], 8.0);
    let table = qtypes::qtype_table(&store.cumulative(Dataset::Qtype));
    let get = |q: &str| table.iter().find(|r| r.qtype == q).cloned();
    let a = get("A").expect("A present");
    let aaaa = get("AAAA").expect("AAAA present");
    assert_eq!(table[0].qtype, "A");
    assert!(a.global > 2.0 * aaaa.global, "A should dominate AAAA");
    assert!(
        aaaa.nodata > 10.0 * a.nodata.max(0.001),
        "Happy Eyeballs NoData signature missing"
    );
    if let Some(ns) = get("NS") {
        assert!(ns.nxd > 0.5, "PRSD NXD share too low: {}", ns.nxd);
        assert!(ns.size > 2.0 * a.size, "signed NXD should be large");
    }
    if let Some(ptr) = get("PTR") {
        assert!(ptr.qdots > a.qdots + 1.0, "reverse names have many labels");
    }
    if let Some(txt) = get("TXT") {
        assert_eq!(txt.ttl, Some(5), "TXT custom protocols use tiny TTLs");
    }
}

#[test]
fn delay_regimes_partition_plausibly() {
    let (store, _) = run(vec![(Dataset::SrvIp, 10_000)], 8.0);
    let rows = store.cumulative(Dataset::SrvIp);
    let d = delays::server_delays(&rows);
    assert!(d.len() > 200);
    let shares = delays::delay_cdf(&d).regime_shares();
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // Distant (35-350ms) dominates, as in Fig. 3a.
    assert!(shares[2] > shares[0] && shares[2] > shares[1] && shares[2] > shares[3]);
    assert!(shares[2] > 0.4, "distant regime share {}", shares[2]);
}

#[test]
fn root_and_gtld_constellations_visible() {
    let (store, _) = run(vec![(Dataset::SrvIp, 10_000)], 10.0);
    let rows = store.cumulative(Dataset::SrvIp);
    let root = delays::constellation(&rows, delays::root_letter_of);
    let gtld = delays::constellation(&rows, delays::gtld_letter_of);
    assert!(root.len() >= 10, "root letters observed: {}", root.len());
    assert_eq!(gtld.len(), 13, "all gTLD letters should carry traffic");
    // F root (most mirrors) must beat B root (fewest) on delay.
    let delay = |set: &[delays::LetterDelay], ch: char| {
        set.iter().find(|l| l.letter == ch).map(|l| l.median)
    };
    if let (Some(f), Some(b)) = (delay(&root, 'F'), delay(&root, 'B')) {
        assert!(f < b, "root F ({f} ms) should be faster than B ({b} ms)");
    }
    // gTLD B is the fastest letter.
    let min = gtld
        .iter()
        .min_by(|a, b| a.median.partial_cmp(&b.median).unwrap())
        .unwrap();
    assert_eq!(min.letter, 'B');
}

#[test]
fn qmin_classifier_recovers_configured_resolvers() {
    let cfg = SimConfig {
        qmin_fraction: 0.25, // 6 of 24 resolvers
        ..SimConfig::small()
    };
    let mut sim = Simulation::from_config(cfg);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::SrcSrv, 20_000)],
        window_secs: 4.0,
        ..ObservatoryConfig::default()
    });
    sim.run(8.0, &mut |tx| obs.ingest(tx));
    let rows = obs.finish().cumulative(Dataset::SrcSrv);
    let verdicts = qmin::classify(
        &rows,
        &qmin::QminConfig {
            level_of: qmin::sim_level_of,
            lenient_tld: false,
        },
    );
    let summary = qmin::summarize(&verdicts);
    assert_eq!(summary.possible_qmin, 6, "exactly the configured qmin set");
    // The qmin resolvers are the plan's first six.
    let expected: std::collections::HashSet<String> = (0..6)
        .map(|r| sim.world().plan.resolver_ip(r).to_string())
        .collect();
    for v in verdicts.iter().filter(|v| v.possible_qmin) {
        assert!(
            expected.contains(&v.resolver),
            "unexpected qmin {}",
            v.resolver
        );
    }
}

#[test]
fn happy_eyeballs_correlation_emerges() {
    let (store, _) = run(vec![(Dataset::Qname, 20_000)], 40.0);
    let rows = store.cumulative(Dataset::Qname);
    let happy_list = happy::happy_rows(&rows, 150);
    assert!(happy_list.len() >= 100);
    let pathological = happy_list
        .iter()
        .filter(|r| r.empty_aaaa_share > 0.5)
        .count();
    assert!(pathological >= 1, "low-negTTL domains must stand out");
    // Robust version of Fig. 9's association: among the *popular* rows
    // (where demand is high enough that TTLs actually bind — the paper's
    // top-200 are all in this regime), a large A-TTL/negTTL quotient must
    // push the empty-AAAA share far above the healthy rows' shares.
    let popular: Vec<_> = happy_list.iter().take(40).collect();
    let worst_high = popular
        .iter()
        .filter(|r| r.ttl_quotient().map(|q| q > 2.0).unwrap_or(false))
        .map(|r| r.empty_aaaa_share)
        .fold(0.0f64, f64::max);
    let mean_low = {
        let sel: Vec<f64> = popular
            .iter()
            .filter(|r| r.ttl_quotient().map(|q| q <= 1.0).unwrap_or(false))
            .map(|r| r.empty_aaaa_share)
            .collect();
        if sel.is_empty() {
            0.0
        } else {
            sel.iter().sum::<f64>() / sel.len() as f64
        }
    };
    assert!(
        worst_high > mean_low + 0.2,
        "quotient association missing: worst high {worst_high:.2} vs mean low {mean_low:.2}"
    );
}

#[test]
fn collection_stats_account_for_every_transaction() {
    let (store, sim) = run(vec![(Dataset::SrvIp, 500), (Dataset::AaFqdn, 500)], 6.0);
    let _ = sim;
    for ds in [Dataset::SrvIp, Dataset::AaFqdn] {
        let windows = store.dataset(ds);
        assert!(!windows.is_empty());
        let ingested: u64 = windows
            .iter()
            .map(|w| w.kept + w.dropped + w.filtered)
            .sum();
        let first: u64 = store
            .dataset(Dataset::SrvIp)
            .iter()
            .map(|w| w.kept + w.dropped + w.filtered)
            .sum();
        assert_eq!(ingested, first, "{:?} sees every transaction", ds.name());
    }
}
