//! Cross-stack check of the historical store as a DNSDB substitute: the
//! paper's Table-4 renumbering validation must survive the store round
//! trip — append synthetic 10-minute windows with planted renumbering
//! events, compact them up the hierarchy, and re-detect the events from
//! the *queried* (chunk-reassembled, possibly rolled-up) windows.
//!
//! Two resolutions are pinned:
//!
//! * hour-level compaction keeps every day-boundary event detectable —
//!   the query layer recovers the exact planted schedule, no phantoms;
//! * the exact per-window hit counters (`features.adds[0]` deltas) are
//!   conserved through any rollup, so `history` sums to ground truth at
//!   every compaction level.

use dns_observatory::analysis::ttl::{detect_changes, ChangeCategory};
use dns_observatory::synth::{renumber_truth, SynthConfig, SynthStream};
use std::path::{Path, PathBuf};

const WINDOWS_PER_DAY: usize = 144;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnsobs-xstore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(days: usize) -> SynthConfig {
    SynthConfig {
        seed: 9,
        start: 0.0,
        window_secs: 600.0,
        windows: days * WINDOWS_PER_DAY,
        keys: 6,
        datasets: vec!["aafqdn".to_string()],
        capacity: 24,
        renumber_every: WINDOWS_PER_DAY,
    }
}

fn build(dir: &Path, cfg: &SynthConfig, policy: &store::CompactionPolicy) -> store::Store {
    let (mut s, _) = store::Store::open(dir).expect("open");
    let mut stream = SynthStream::new(cfg.clone());
    // One level-0 segment per hour, so hour buckets have inputs to roll
    // (a segment can only compact into a bucket that spans it).
    for _ in 0..cfg.windows / 6 {
        let mut batch = Vec::new();
        for _ in 0..6 {
            batch.extend(stream.next_window().expect("sized stream"));
        }
        s.append(&batch).expect("append");
    }
    store::compact(&mut s, policy).expect("compact");
    s
}

/// Hour-level rollups keep day-boundary renumbering events visible: the
/// TTL-change scan over the queried windows recovers the planted
/// schedule exactly — every event, no phantoms.
#[test]
fn renumbering_schedule_survives_hourly_compaction() {
    let cfg = cfg(3);
    let truth = renumber_truth(&cfg);
    assert!(!truth.is_empty(), "synth planted nothing");

    let dir = temp_store("renumber");
    let policy = store::CompactionPolicy {
        spans_us: vec![3_600_000_000],
    };
    let s = build(&dir, &cfg, &policy);
    assert!(
        s.segments().iter().any(|m| m.level > 0),
        "compaction must actually roll something"
    );

    let span_us = cfg.windows as u64 * 600_000_000;
    let (groups, stats) =
        store::query::windows_in(&s, "aafqdn", 0, span_us + 1, None).expect("windows_in");
    assert!(stats.records_decoded > 0);
    let dumps: Vec<_> = groups
        .iter()
        .map(|g| dns_observatory::render_state(&g.state, g.start, g.length).expect("render"))
        .collect();
    let refs: Vec<&dns_observatory::WindowDump> = dumps.iter().collect();
    let found: Vec<_> = detect_changes(&refs)
        .into_iter()
        .filter(|c| c.category == ChangeCategory::Renumbering)
        .collect();

    assert_eq!(found.len(), truth.len(), "event count diverged");
    for event in &truth {
        assert!(
            found
                .iter()
                .any(|c| c.key == event.key && (c.at - event.window_start).abs() < 1e-6),
            "planted event at t={}s key {} not re-detected from the store",
            event.window_start,
            event.key
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The exact per-window hit deltas sum to the same ground truth no
/// matter how coarsely the store is compacted, and the merged error
/// bound is always stated.
#[test]
fn history_hits_are_conserved_across_compaction_levels() {
    let cfg = cfg(2);
    let span_us = cfg.windows as u64 * 600_000_000;

    let mut totals = Vec::new();
    for (tag, spans) in [
        ("raw", vec![]),
        ("hourly", vec![3_600_000_000]),
        ("daily", vec![3_600_000_000, 86_400_000_000]),
    ] {
        let dir = temp_store(tag);
        let s = build(&dir, &cfg, &store::CompactionPolicy { spans_us: spans });
        let (points, bound, _) =
            store::query::history(&s, "aafqdn", "host1.example.", 0, span_us + 1).expect("history");
        assert!(!points.is_empty(), "{tag}: no history points");
        assert!(bound > 0, "{tag}: bound must be stated");
        totals.push((tag, points.iter().map(|p| p.hits).sum::<u64>()));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let (_, raw_total) = totals[0];
    for (tag, total) in &totals {
        assert_eq!(
            *total, raw_total,
            "{tag}: per-window hit deltas not conserved"
        );
    }
}
