//! Distributed-feed integration: the acceptance bar for the sensor→
//! collector transport is *loopback equivalence* — K sensor processes
//! streaming over real TCP must reproduce, byte for byte, the TSV output
//! of the same traffic ingested in a single process — plus exact fault
//! accounting when a sensor dies and comes back.

use dns_observatory::{
    tsv, Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TimeSeriesStore, TxSummary,
};
use feed::{Backoff, BackoffConfig, Collector, CollectorConfig, Sensor, SensorConfig};
use psl::Psl;
use simnet::{SimConfig, Simulation};
use std::thread;
use std::time::{Duration, Instant};

const SENSORS: usize = 3;
const DURATION: f64 = 3.0;

fn obs_config(window: f64) -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 2_000),
            (Dataset::Esld, 2_000),
            (Dataset::Qtype, 64),
        ],
        window_secs: window,
        ..ObservatoryConfig::default()
    }
}

/// Single-process reference: the Observatory ingesting the raw stream.
fn single_process(seed: u64) -> TimeSeriesStore {
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::small()
    });
    let mut obs = Observatory::new(obs_config(1.0));
    sim.run(DURATION, &mut |tx| obs.ingest(tx));
    obs.finish()
}

/// Distributed run: K sensor threads each simulate the deployment's
/// traffic, keep their own vantage slice, and stream summaries over TCP
/// to a collector that feeds the pipeline.
fn distributed(seed: u64) -> (TimeSeriesStore, feed::CollectorReport, Vec<feed::SensorReport>) {
    let mut collector =
        Collector::<TxSummary>::bind("127.0.0.1:0", CollectorConfig::new(SENSORS as u64))
            .expect("bind collector");
    let addr = collector.local_addr().to_string();

    let handles: Vec<_> = (0..SENSORS)
        .map(|index| {
            let addr = addr.clone();
            thread::spawn(move || {
                let psl = Psl::embedded();
                let client = Sensor::connect(addr, SensorConfig::new(index as u64));
                let mut sim = Simulation::from_config(SimConfig {
                    seed,
                    ..SimConfig::small()
                });
                sim.run(DURATION, &mut |tx| {
                    if tx.sensor_index(SENSORS) == index {
                        client.send(TxSummary::from_transaction(tx, &psl));
                    }
                });
                client.finish()
            })
        })
        .collect();

    let output = collector.take_output();
    let store = ThreadedPipeline::new(obs_config(1.0), 1).run_summaries(output.iter());
    let sensor_reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let report = collector.finish();
    (store, report, sensor_reports)
}

/// Render every window of every dataset exactly as `dnsobs` writes it.
fn tsv_bytes(store: &TimeSeriesStore) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for &(ds, _) in &obs_config(1.0).datasets {
        for w in store.dataset(ds) {
            let mut bytes = Vec::new();
            tsv::write_window(&mut bytes, w).expect("tsv serializes");
            out.push((format!("{}-{:05}", ds.name(), w.start as u64), bytes));
        }
    }
    out
}

#[test]
fn loopback_equivalence_across_seeds() {
    for seed in [3u64, 11] {
        let reference = tsv_bytes(&single_process(seed));
        let (store, report, sensor_reports) = distributed(seed);
        let distributed = tsv_bytes(&store);

        // A clean localhost run loses nothing, so equivalence must be exact.
        assert_eq!(report.total_gap_frames(), 0, "seed {seed}: lossy feed");
        let sent: u64 = sensor_reports.iter().map(|r| r.sent_items).sum();
        assert_eq!(report.items_merged, sent, "seed {seed}: items vanished");
        for r in &sensor_reports {
            assert_eq!(r.dropped_frames, 0, "seed {seed}: sensor {} dropped", r.sensor);
        }

        assert_eq!(
            reference.len(),
            distributed.len(),
            "seed {seed}: window count differs"
        );
        for ((name_a, bytes_a), (name_b, bytes_b)) in reference.iter().zip(&distributed) {
            assert_eq!(name_a, name_b, "seed {seed}: window sequence differs");
            assert_eq!(
                bytes_a, bytes_b,
                "seed {seed}: TSV for {name_a} is not byte-identical"
            );
        }
    }
}

#[test]
fn crashed_sensor_restart_reports_exact_gap() {
    let mut collector =
        Collector::<TxSummary>::bind("127.0.0.1:0", CollectorConfig::new(1)).expect("bind");
    let addr = collector.local_addr().to_string();
    let output = collector.take_output();
    let consumer = thread::spawn(move || output.iter().count() as u64);

    let psl = Psl::embedded();
    let mut sim = Simulation::from_config(SimConfig {
        seed: 5,
        ..SimConfig::small()
    });
    let summaries: Vec<TxSummary> = sim
        .collect(0.3)
        .iter()
        .map(|tx| TxSummary::from_transaction(tx, &psl))
        .collect();
    assert!(summaries.len() > 64, "world too small");
    let half = summaries.len() / 2;

    // Incarnation 1: stream the first half, then die without a BYE.
    let mut cfg = SensorConfig::new(0);
    cfg.batch_items = 16;
    let client = Sensor::connect(&addr, cfg);
    for s in &summaries[..half] {
        client.send(s.clone());
    }
    client.flush();
    client.wait_drained();
    let crashed = client.abort();
    assert_eq!(crashed.dropped_frames, 0, "drained before the crash");
    assert!(crashed.sent_frames > 1);
    // Let the collector finish draining the dead connection before the
    // replacement shows up — a real restart is never faster than the
    // collector's read poll, and starting early would make incarnation
    // 1's final frames race incarnation 2's HELLO through the per-
    // connection reader threads.
    thread::sleep(Duration::from_millis(300));

    // Incarnation 2: the crash lost GAP sealed-but-unsent frames, so the
    // restarted sensor resumes its sequence numbers past them.
    const GAP: u64 = 4;
    let mut cfg = SensorConfig::new(0);
    cfg.batch_items = 16;
    cfg.first_seq = crashed.next_seq + GAP;
    let client = Sensor::connect(&addr, cfg);
    for s in &summaries[half..] {
        client.send(s.clone());
    }
    let resumed = client.finish();
    assert_eq!(resumed.dropped_frames, 0);

    let merged = consumer.join().unwrap();
    let report = collector.finish();
    let stats = &report.sensors[&0];

    // The collector saw both incarnations and reports exactly the frames
    // the crash swallowed — as one gap, at the right position.
    assert_eq!(stats.connects, 2);
    assert_eq!(stats.byes, 1);
    assert_eq!(
        stats.gaps,
        vec![(crashed.next_seq, crashed.next_seq + GAP - 1)],
        "gap must span exactly the lost sequence range"
    );
    assert_eq!(stats.gap_frames, GAP);
    assert_eq!(stats.duplicate_frames, 0);
    assert_eq!(stats.crc_errors, 0);

    // Conservation: every summary handed to a sensor is either merged or
    // accounted as dropped; nothing is double-counted or invented. The
    // sensor's `sent_frames` includes incarnation 2's BYE, which the
    // collector tallies separately from data frames.
    assert_eq!(stats.frames + stats.byes, crashed.sent_frames + resumed.sent_frames);
    assert_eq!(stats.items, crashed.sent_items + resumed.sent_items);
    assert_eq!(report.items_merged, stats.items);
    assert_eq!(merged, report.items_merged);
    assert_eq!(
        stats.items + crashed.dropped_items + resumed.dropped_items,
        summaries.len() as u64
    );
}

#[test]
fn sensor_reconnects_within_backoff_schedule() {
    // Reserve a port, then free it: the sensor starts against a dead
    // address and must keep retrying on its backoff schedule.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let backoff = BackoffConfig {
        base_ms: 10,
        max_ms: 80,
        seed: 0,
    };
    let mut cfg = SensorConfig::new(0);
    cfg.backoff = backoff;
    let client = Sensor::connect(&addr, cfg);

    let psl = Psl::embedded();
    let mut sim = Simulation::from_config(SimConfig::small());
    let tx = &sim.collect(0.05)[0];
    client.send(TxSummary::from_transaction(tx, &psl));
    client.flush();

    // Let a few attempts fail, then bring the collector up.
    thread::sleep(Duration::from_millis(120));
    let mut collector =
        Collector::<TxSummary>::bind(&addr, CollectorConfig::new(1)).expect("rebind");
    let up = Instant::now();
    let output = collector.take_output();
    let consumer = thread::spawn(move || output.iter().count());

    let report = client.finish();
    let connected_within = up.elapsed();
    assert_eq!(consumer.join().unwrap(), 1);
    let stats = collector.finish();

    assert_eq!(report.connects, 1, "one successful connection, late");
    assert_eq!(report.dropped_frames, 0);
    assert_eq!(stats.sensors[&0].items, 1);
    // Once the listener exists, the very next scheduled attempt succeeds:
    // the wait is bounded by one capped backoff delay plus slack for
    // scheduling and the write itself.
    let cap = Backoff::max_delay_for_attempt(&backoff, 32);
    assert!(
        connected_within < cap * 3 + Duration::from_millis(750),
        "reconnect took {connected_within:?}, schedule cap is {cap:?}"
    );
}
