//! Distributed-feed integration: the acceptance bar for the sensor→
//! collector transport is *loopback equivalence* — K sensor processes
//! streaming over real TCP must reproduce, byte for byte, the TSV output
//! of the same traffic ingested in a single process — plus exact fault
//! accounting when a sensor dies and comes back.
//!
//! The crash/restart and backoff tests run the same protocol code
//! sans-io on a virtual clock (no wall-clock sleeps): event order is
//! stated explicitly instead of approximated with `thread::sleep`, so
//! they are race-free and finish in microseconds of real time.

use chaos::VirtualClock;
use dns_observatory::{
    tsv, Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TimeSeriesStore, TxSummary,
};
use feed::{
    Backoff, BackoffConfig, Collector, CollectorConfig, CollectorCore, FrameReader, Sensor,
    SensorConfig, SensorMachine, SensorOp,
};
use psl::Psl;
use simnet::{SimConfig, Simulation};
use std::thread;

const SENSORS: usize = 3;
const DURATION: f64 = 3.0;

fn obs_config(window: f64) -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 2_000),
            (Dataset::Esld, 2_000),
            (Dataset::Qtype, 64),
        ],
        window_secs: window,
        ..ObservatoryConfig::default()
    }
}

/// Single-process reference: the Observatory ingesting the raw stream.
fn single_process(seed: u64) -> TimeSeriesStore {
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::small()
    });
    let mut obs = Observatory::new(obs_config(1.0));
    sim.run(DURATION, &mut |tx| obs.ingest(tx));
    obs.finish()
}

/// Distributed run: K sensor threads each simulate the deployment's
/// traffic, keep their own vantage slice, and stream summaries over TCP
/// to a collector that feeds the pipeline.
fn distributed(
    seed: u64,
) -> (
    TimeSeriesStore,
    feed::CollectorReport,
    Vec<feed::SensorReport>,
) {
    let mut collector =
        Collector::<TxSummary>::bind("127.0.0.1:0", CollectorConfig::new(SENSORS as u64))
            .expect("bind collector");
    let addr = collector.local_addr().to_string();

    let handles: Vec<_> = (0..SENSORS)
        .map(|index| {
            let addr = addr.clone();
            thread::spawn(move || {
                let psl = Psl::embedded();
                let client = Sensor::connect(addr, SensorConfig::new(index as u64));
                let mut sim = Simulation::from_config(SimConfig {
                    seed,
                    ..SimConfig::small()
                });
                sim.run(DURATION, &mut |tx| {
                    if tx.sensor_index(SENSORS) == index {
                        client.send(TxSummary::from_transaction(tx, &psl));
                    }
                });
                client.finish()
            })
        })
        .collect();

    let output = collector.take_output();
    let store = ThreadedPipeline::new(obs_config(1.0), 1).run_summaries(output.iter());
    let sensor_reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let report = collector.finish();
    (store, report, sensor_reports)
}

/// Render every window of every dataset exactly as `dnsobs` writes it.
fn tsv_bytes(store: &TimeSeriesStore) -> Vec<(String, Vec<u8>)> {
    let datasets: Vec<_> = obs_config(1.0).datasets.iter().map(|&(ds, _)| ds).collect();
    tsv::render_store(store, &datasets)
}

#[test]
fn loopback_equivalence_across_seeds() {
    for seed in [3u64, 11] {
        let reference = tsv_bytes(&single_process(seed));
        let (store, report, sensor_reports) = distributed(seed);
        let distributed = tsv_bytes(&store);

        // A clean localhost run loses nothing, so equivalence must be exact.
        assert_eq!(report.total_gap_frames(), 0, "seed {seed}: lossy feed");
        let sent: u64 = sensor_reports.iter().map(|r| r.sent_items).sum();
        assert_eq!(report.items_merged, sent, "seed {seed}: items vanished");
        for r in &sensor_reports {
            assert_eq!(
                r.dropped_frames, 0,
                "seed {seed}: sensor {} dropped",
                r.sensor
            );
        }

        assert_eq!(
            reference.len(),
            distributed.len(),
            "seed {seed}: window count differs"
        );
        for ((name_a, bytes_a), (name_b, bytes_b)) in reference.iter().zip(&distributed) {
            assert_eq!(name_a, name_b, "seed {seed}: window sequence differs");
            assert_eq!(
                bytes_a, bytes_b,
                "seed {seed}: TSV for {name_a} is not byte-identical"
            );
        }
    }
}

/// Drive `machine` on a virtual clock until it has nothing left to do,
/// delivering every written frame straight into `core` as connection
/// `conn`. Returns the virtual time when the machine went quiet.
fn pump(
    machine: &mut SensorMachine<TxSummary>,
    clock: &mut VirtualClock,
    conn: u64,
    core: &mut CollectorCore<TxSummary>,
    out: &mut Vec<TxSummary>,
) -> u64 {
    let mut reader = FrameReader::<TxSummary>::new();
    loop {
        match machine.poll(clock.now()) {
            SensorOp::Connect => machine.on_connected(clock.now()),
            SensorOp::WaitUntil(t) => clock.advance_to(t),
            SensorOp::Write(bytes) => {
                reader.push(&bytes);
                loop {
                    match reader.next_frame() {
                        Ok(Some(frame)) => {
                            core.on_frame(conn, frame, out);
                        }
                        Ok(None) => break,
                        Err(e) => core.on_bad_frame(conn, &e),
                    }
                }
                machine.on_write_ok();
            }
            SensorOp::Idle | SensorOp::Done => return clock.now(),
        }
    }
}

#[test]
fn crashed_sensor_restart_reports_exact_gap() {
    // Same scenario as the old TCP version, sans-io on a virtual clock:
    // the former 300 ms "let the collector drain the dead connection"
    // sleep is now simply the order of events — incarnation 1 is pumped
    // to completion before incarnation 2's HELLO exists.
    let psl = Psl::embedded();
    let mut sim = Simulation::from_config(SimConfig {
        seed: 5,
        ..SimConfig::small()
    });
    let summaries: Vec<TxSummary> = sim
        .collect(0.3)
        .iter()
        .map(|tx| TxSummary::from_transaction(tx, &psl))
        .collect();
    assert!(summaries.len() > 64, "world too small");
    let half = summaries.len() / 2;

    let mut clock = VirtualClock::new();
    let mut core = CollectorCore::<TxSummary>::new(&CollectorConfig::new(1));
    let mut out = Vec::new();

    // Incarnation 1: stream the first half, then die without a BYE.
    let mut cfg = SensorConfig::new(0);
    cfg.batch_items = 16;
    let mut machine = SensorMachine::<TxSummary>::new(cfg);
    for s in &summaries[..half] {
        machine.push(s.clone());
    }
    machine.flush();
    pump(&mut machine, &mut clock, 0, &mut core, &mut out);
    let crashed = machine.abort();
    assert_eq!(crashed.dropped_frames, 0, "drained before the crash");
    assert!(crashed.sent_frames > 1);
    core.on_disconnect(0, &mut out);

    // Incarnation 2: the crash lost GAP sealed-but-unsent frames, so the
    // restarted sensor resumes its sequence numbers past them.
    const GAP: u64 = 4;
    let mut cfg = SensorConfig::new(0);
    cfg.batch_items = 16;
    cfg.first_seq = crashed.next_seq + GAP;
    let mut machine = SensorMachine::<TxSummary>::new(cfg);
    for s in &summaries[half..] {
        machine.push(s.clone());
    }
    machine.finish();
    pump(&mut machine, &mut clock, 1, &mut core, &mut out);
    let resumed = machine.report();
    assert_eq!(resumed.dropped_frames, 0);

    let report = core.finish(&mut out);
    let merged = out.len() as u64;
    let stats = &report.sensors[&0];

    // The collector saw both incarnations and reports exactly the frames
    // the crash swallowed — as one gap, at the right position.
    assert_eq!(stats.connects, 2);
    assert_eq!(stats.byes, 1);
    assert_eq!(
        stats.gaps,
        vec![(crashed.next_seq, crashed.next_seq + GAP - 1)],
        "gap must span exactly the lost sequence range"
    );
    assert_eq!(stats.gap_frames, GAP);
    assert_eq!(stats.duplicate_frames, 0);
    assert_eq!(stats.crc_errors, 0);

    // Conservation: every summary handed to a sensor is either merged or
    // accounted as dropped; nothing is double-counted or invented. The
    // sensor's `sent_frames` includes incarnation 2's BYE, which the
    // collector tallies separately from data frames.
    assert_eq!(
        stats.frames + stats.byes,
        crashed.sent_frames + resumed.sent_frames
    );
    assert_eq!(stats.items, crashed.sent_items + resumed.sent_items);
    assert_eq!(report.items_merged, stats.items);
    assert_eq!(merged, report.items_merged);
    assert_eq!(
        stats.items + crashed.dropped_items + resumed.dropped_items,
        summaries.len() as u64
    );
}

#[test]
fn sensor_reconnects_within_backoff_schedule() {
    // The collector is down for the first 120 virtual milliseconds; the
    // sensor must keep retrying on exactly its seeded backoff schedule
    // and connect on the first attempt after the listener exists. The
    // old TCP version could only bound the reconnect latency loosely
    // (sleeps, scheduler slack); virtual time pins the whole schedule.
    let backoff = BackoffConfig {
        base_ms: 10,
        max_ms: 80,
        seed: 0,
    };
    let mut cfg = SensorConfig::new(0);
    cfg.backoff = backoff;
    let mut machine = SensorMachine::<TxSummary>::new(cfg);

    let psl = Psl::embedded();
    let mut sim = Simulation::from_config(SimConfig::small());
    let tx = &sim.collect(0.05)[0];
    machine.push(TxSummary::from_transaction(tx, &psl));
    machine.flush();

    // Phase 1: listener down. Every connect attempt fails; the machine
    // must ask to wait, never busy-loop at one instant.
    const DOWN_US: u64 = 120_000;
    let mut clock = VirtualClock::new();
    let mut failures = 0u64;
    let mut observed_delays = Vec::new();
    while clock.now() < DOWN_US {
        match machine.poll(clock.now()) {
            SensorOp::Connect => {
                let before = clock.now();
                machine.on_connect_failed(before);
                failures += 1;
                match machine.poll(before) {
                    SensorOp::WaitUntil(t) => {
                        assert!(t > before, "backoff must move time forward");
                        observed_delays.push(t - before);
                        clock.advance_to(t);
                    }
                    other => panic!("expected a backoff wait, got {other:?}"),
                }
            }
            other => panic!("expected a connect attempt, got {other:?}"),
        }
    }
    assert!(
        failures >= 3,
        "schedule retried only {failures} times in {DOWN_US}µs"
    );
    // The observed waits are exactly the seeded schedule, delay for
    // delay — not merely bounded by it.
    let mut reference = Backoff::new(backoff);
    for (attempt, &delay) in observed_delays.iter().enumerate() {
        let expected = reference.next_delay().as_micros() as u64;
        assert_eq!(delay, expected, "attempt {attempt} diverged from schedule");
    }

    // Phase 2: listener up. The pending attempt (scheduled while the
    // listener was still down) succeeds, so the connect latency after
    // startup is bounded by one capped backoff delay of virtual time.
    let up_at = clock.now();
    let mut core = CollectorCore::<TxSummary>::new(&CollectorConfig::new(1));
    let mut out = Vec::new();
    machine.finish();
    pump(&mut machine, &mut clock, 0, &mut core, &mut out);
    let report = machine.report();
    let stats = core.finish(&mut out);

    assert_eq!(report.connects, 1, "one successful connection, late");
    assert_eq!(report.dropped_frames, 0);
    assert_eq!(stats.sensors[&0].items, 1);
    assert_eq!(out.len(), 1, "the queued item survives the outage");
    let cap = Backoff::max_delay_for_attempt(&backoff, 32).as_micros() as u64;
    assert!(
        up_at - DOWN_US <= cap,
        "first post-outage attempt at {up_at}µs, cap {cap}µs past {DOWN_US}µs"
    );
}
