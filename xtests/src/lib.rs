//! Integration test host crate for the dns-observatory workspace.
