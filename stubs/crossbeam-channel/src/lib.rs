//! Offline stand-in for `crossbeam-channel` (see `stubs/README.md`).
//!
//! A bounded MPMC channel built on `Mutex` + `Condvar` with the same
//! semantics the pipeline relies on: blocking `send` with backpressure,
//! cloneable senders *and* receivers, disconnection when the last handle
//! on the other side drops, and a blocking [`Receiver::iter`] that ends
//! on disconnect.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver is gone; gives
/// the message back like the real crate.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`] when no message is ready.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now; senders still exist.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// The sending half; cloneable for fan-in.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable for fan-out (each message is delivered
/// to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel with room for `capacity` queued messages.
/// `capacity == 0` is rounded up to 1 (the real crate's zero-capacity
/// rendezvous semantics are not needed here).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            // Cap the eager allocation; effectively-unbounded channels
            // grow on demand.
            queue: VecDeque::with_capacity(capacity.clamp(1, 1_024)),
            senders: 1,
            receivers: 1,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(usize::MAX / 2)
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue `msg`. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they can observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives. Fails only when the queue is empty
    /// and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator that yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they can observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fan_out_fan_in_delivers_everything() {
        let (task_tx, task_rx) = bounded::<u64>(4);
        // Results are drained only after all sends: leave room for every
        // result so the blocking send never deadlocks against the feeder.
        let (done_tx, done_rx) = bounded::<u64>(128);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = task_rx.clone();
                let tx = done_tx.clone();
                thread::spawn(move || {
                    for v in rx.iter() {
                        tx.send(v * 2).unwrap();
                    }
                })
            })
            .collect();
        drop(task_rx);
        drop(done_tx);
        for v in 0..100u64 {
            task_tx.send(v).unwrap();
        }
        drop(task_tx);
        let mut got: Vec<u64> = done_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap();
    }
}
