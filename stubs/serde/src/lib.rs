//! Offline stand-in for `serde` (see `stubs/README.md`).
//!
//! The workspace only imports the derive macros; no serialization
//! machinery is needed because persistence goes through the TSV layer.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
