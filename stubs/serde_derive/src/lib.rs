//! No-op `Serialize`/`Deserialize` derives (see `stubs/README.md`).
//!
//! The workspace derives these traits for documentation purposes but
//! serializes via its own TSV layer, so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
