//! Offline stand-in for `criterion` (see `stubs/README.md`).
//!
//! Implements the `criterion_group!`/`criterion_main!` entry points and
//! the `benchmark_group`/`bench_function`/`iter` surface the workspace's
//! benches use. Measurement is a simple calibrated wall-clock loop: each
//! benchmark is timed over enough iterations to fill a short measurement
//! window and the mean per-iteration time is printed to stdout. No
//! statistics, no HTML reports, no saved baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(self.measurement_window, name, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_window = d;
        self
    }

    /// Time `f` and print the mean per-iteration cost.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(self.criterion.measurement_window, name, self.throughput, f);
        self
    }

    /// End the group (printing only; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the payload `self.iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    window: Duration,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the batch size until one batch fills ~1/10 of the
    // measurement window, then measure one full window worth.
    let mut iters = 1u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    loop {
        b.iters = iters;
        f(&mut b);
        if b.elapsed >= window / 10 || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let per_batch = b.elapsed.max(Duration::from_nanos(1));
    let batches = (window.as_nanos() / per_batch.as_nanos()).clamp(1, 1_000) as u64;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..batches {
        b.iters = iters;
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let ns_per_iter = total.as_nanos() as f64 / total_iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", n as f64 / ns_per_iter * 953.674_316),
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / ns_per_iter * 1e9)
        }
    });
    println!(
        "  {name}: {:.1} ns/iter{}",
        ns_per_iter,
        rate.unwrap_or_default()
    );
}

/// Collect benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: run every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
