//! Offline stand-in for `proptest` (see `stubs/README.md`).
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use, with two deliberate simplifications:
//!
//! - **No shrinking.** A failing case panics with the case number; the
//!   run is deterministic (the RNG seed derives from the test name), so
//!   a failure reproduces exactly on re-run.
//! - **Minimal regex strategies.** String-literal strategies support the
//!   subset the tests use: literal characters, `[...]` classes with
//!   ranges, `\PC` (any non-control character), and `{m,n}`/`{m}`
//!   quantifiers.

#![forbid(unsafe_code)]

/// Test-case plumbing: config, RNG, and error type.
pub mod test_runner {
    /// Controls how many accepted cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of (non-rejected) cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases with default everything-else.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject,
        /// `prop_assert!`-family failure with a rendered message.
        Fail(String),
    }

    /// Deterministic generator driving all strategies (xoshiro256++
    /// seeded from an FNV-1a hash of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from a test name so every run of a test is identical.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut key = h;
            let mut s = [0u64; 4];
            for slot in &mut s {
                key = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = key;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)` (Lemire scaled multiply).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// The core [`Strategy`] trait and basic combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erase the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Box a strategy with its value type unified by inference — the
    /// cast-free workhorse behind `prop_oneof!`.
    pub fn union_box<T, S: Strategy<Value = T> + 'static>(strat: S) -> BoxedStrategy<T> {
        Box::new(strat)
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let x = rng.next_u64() as u128;
                    self.start.wrapping_add(((x * span) >> 64) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                    let x = rng.next_u64() as u128;
                    lo.wrapping_add(((x * span) >> 64) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).sample(rng)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11, M.12);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11, M.12, N.13);
    impl_tuple_strategy!(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11, M.12, N.13, O.14
    );
    impl_tuple_strategy!(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11, M.12, N.13, O.14, P.15
    );

    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

/// `any::<T>()` — uniform values of simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64() as usize)
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Optional-value strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    /// `None` half the time, `Some` of the inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Character strategies (`prop::char`).
pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`range`].
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Uniform `char` in `[lo, hi]` (skipping invalid code points).
    pub fn range(lo: ::std::primitive::char, hi: ::std::primitive::char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::std::primitive::char;

        fn sample(&self, rng: &mut TestRng) -> ::std::primitive::char {
            let span = (self.hi - self.lo) as u64 + 1;
            loop {
                let c = self.lo + rng.below(span) as u32;
                if let Some(c) = ::std::primitive::char::from_u32(c) {
                    return c;
                }
            }
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    /// An arbitrary index usable against any non-empty slice length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Resolve against a concrete length (must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

/// Minimal regex-pattern string generation (see crate docs for the
/// supported subset).
pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        Literal(::std::primitive::char),
        /// Inclusive code-point ranges from a `[...]` class.
        Class(Vec<(u32, u32)>),
        /// `\PC` — any non-control character (sampled from printable
        /// ASCII, which satisfies the predicate).
        NonControl,
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let item = chars.next().expect("unterminated [class]");
                        if item == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            let mut look = chars.clone();
                            look.next();
                            if look.peek().is_some_and(|&c| c != ']') {
                                chars.next();
                                let hi = chars.next().unwrap();
                                ranges.push((item as u32, hi as u32));
                                continue;
                            }
                        }
                        ranges.push((item as u32, item as u32));
                    }
                    Atom::Class(ranges)
                }
                '\\' => match chars.next().expect("dangling escape") {
                    'P' => {
                        let cat = chars.next().expect("\\P needs a category");
                        assert_eq!(cat, 'C', "only \\PC is supported");
                        Atom::NonControl
                    }
                    lit => Atom::Literal(lit),
                },
                lit => Atom::Literal(lit),
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let m: usize = spec.parse().unwrap();
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    pub(crate) fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let n = lo + rng.below((hi - lo) as u64 + 1) as usize;
            for _ in 0..n {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::NonControl => {
                        out.push((0x20 + rng.below(0x5f) as u8) as ::std::primitive::char)
                    }
                    Atom::Class(ranges) => {
                        let total: u64 = ranges.iter().map(|(lo, hi)| (hi - lo) as u64 + 1).sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let size = (hi - lo) as u64 + 1;
                            if pick < size {
                                let c = ::std::primitive::char::from_u32(lo + pick as u32)
                                    .expect("class range within valid chars");
                                out.push(c);
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

/// The `prop::` namespace used inside tests.
pub mod prop {
    pub use crate::char;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// One-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Define property tests. Each accepted case samples every `pat in
/// strategy` binding and runs the body; `prop_assume!` rejections do not
/// count toward the case budget.
#[macro_export]
macro_rules! proptest {
    (@config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strats = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    case += 1;
                    let ($($p,)+) = $crate::strategy::Strategy::sample(&strats, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 65_536,
                                "proptest: too many rejected cases in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case #{} of {} failed: {}",
                                case,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Compose strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
     ($($p:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strat,)+), move |($($p,)+)| $body)
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_box($strat),)+
        ])
    };
}

/// Assert within a property body; failure reports the case, no panic
/// mid-strategy.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)+);
            }
        }
    };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 3u8..9, y in 0.25f64..=0.5, n in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..=0.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((any::<u16>(), arb_even()), 0..=5),
            opt in prop::option::of(Just(7u8)),
            c in prop::char::range('a', 'f'),
            s in "x[a-c0-2.]{2,4}",
            idx in any::<prop::sample::Index>(),
        ) {
            for (_, e) in &v {
                prop_assert_eq!(e % 2, 0);
            }
            prop_assert!(opt.is_none() || opt == Some(7));
            prop_assert!(('a'..='f').contains(&c));
            prop_assert!(s.starts_with('x'));
            prop_assert!((3..=5).contains(&s.len()));
            prop_assert!(s[1..].chars().all(|c| "abc012.".contains(c)));
            prop_assert!(idx.index(10) < 10);
        }

        #[test]
        fn oneof_and_assume(pick in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assume!(pick != 2);
            prop_assert!(pick == 1 || pick == 5 || pick == 6);
        }

        #[test]
        fn mut_bindings_work(mut xs in prop::collection::vec(any::<u32>(), 1..10)) {
            xs.sort_unstable();
            for w in xs.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a.min(b), a.max(b))
        }
    }

    proptest! {
        #[test]
        fn composed_ordered(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }
    }
}
