//! Offline stand-in for the `rand` crate (see `stubs/README.md`).
//!
//! Implements the exact API surface this workspace uses: `rngs::StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++,
//! which is deterministic per seed but not bit-compatible with the real
//! crate's ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seed-based construction, as used by the deterministic simulator.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Common generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the real
    /// `StdRng`; same seeding API, different output stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut key = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut key);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style scaled multiply avoids modulo bias for the
                // span sizes a simulation draws from.
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u8..=255);
            let _ = y;
            let z = r.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&z));
            let w: f64 = r.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn full_u8_range_hits_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 256];
        for _ in 0..100_000 {
            seen[r.gen_range(0u8..=255) as usize] = true;
        }
        assert!(seen[0] && seen[255]);
    }
}
