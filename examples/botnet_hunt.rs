//! Botnet hunt: use the Observatory's datasets to isolate DGA traffic the
//! way the paper spotted Mylobot (§3.2) — a flood of NXDOMAIN A-queries
//! for machine-generated names under non-existent `.com` SLDs, landing
//! on the gTLD letters.
//!
//! ```sh
//! cargo run --release --example botnet_hunt
//! ```

use dns_observatory::analysis::delays::gtld_letter_of;
use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{SimConfig, Simulation};

fn main() {
    // Crank the botnet up so the hunt has something to find.
    let cfg = SimConfig {
        weight_botnet: 20.0,
        ..SimConfig::small()
    };
    let mut sim = Simulation::from_config(cfg);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 2_000), (Dataset::Esld, 10_000)],
        window_secs: 15.0,
        ..ObservatoryConfig::default()
    });
    sim.run(45.0, &mut |tx| obs.ingest(tx));
    let store = obs.finish();

    // Step 1: the infrastructure view. Which servers drown in NXDOMAIN?
    println!("step 1 — nameservers with anomalous NXDOMAIN shares:");
    let servers = store.cumulative(Dataset::SrvIp);
    let mut suspicious = 0;
    for (ip, row) in servers.iter().take(40) {
        if row.nxd_share() > 0.30 && row.hits > 100 {
            let is_gtld = ip
                .parse()
                .map(|p| gtld_letter_of(p).is_some())
                .unwrap_or(false);
            println!(
                "  {ip:<16} {:>6} hits, {:>4.0}% NXD{}",
                row.hits,
                row.nxd_share() * 100.0,
                if is_gtld { "  <- gTLD letter" } else { "" }
            );
            suspicious += 1;
        }
    }
    assert!(
        suspicious > 0,
        "expected NXD-heavy servers with the botnet on"
    );

    // Step 2: the domain view. DGA SLDs have a signature: almost pure
    // NXDOMAIN, many distinct QNAMEs, zero resolved names.
    println!("\nstep 2 — candidate DGA SLDs (NXD-only, high name churn):");
    let eslds = store.cumulative(Dataset::Esld);
    let mut dga = Vec::new();
    for (esld, row) in &eslds {
        let nxd_only = row.nxd_share() > 0.95;
        let churny = row.qnamesa > 3.0 && row.qnames < 1.0;
        if nxd_only && churny && row.hits >= 10 {
            dga.push((esld.clone(), row.hits, row.qnamesa));
        }
    }
    dga.sort_by_key(|d| std::cmp::Reverse(d.1));
    for (esld, hits, names) in dga.iter().take(10) {
        println!("  {esld:<24} {hits:>6} queries, ~{names:.0} distinct names, 0 resolved");
    }
    println!(
        "\n{} candidate DGA SLDs found (the simulated Mylobot uses 4,000 .com SLDs)",
        dga.len()
    );
    assert!(
        dga.iter()
            .all(|(esld, _, _)| esld.contains("dga-") || esld.contains("prsd-")),
        "false positives in the DGA hunt"
    );
}
