//! Quickstart: simulate a DNS world, run the Observatory over it, and
//! print a one-minute summary — the whole pipeline in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{SimConfig, Simulation};

fn main() {
    // A small but complete world: resolvers, root/TLD/authoritative
    // servers, caches, botnets — everything the paper's sensors see.
    let mut sim = Simulation::from_config(SimConfig::small());

    // Track the top nameservers and the QTYPE mix, like the paper's
    // `srvip` and `qtype` datasets, in 10-second windows.
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 1_000), (Dataset::Qtype, 32)],
        window_secs: 10.0,
        ..ObservatoryConfig::default()
    });

    // One simulated minute of cache-miss traffic.
    sim.run(60.0, &mut |tx| obs.ingest(tx));
    println!(
        "ingested {} transactions from {} client arrivals\n",
        obs.ingested(),
        sim.arrivals()
    );
    let store = obs.finish();

    // Who handles the traffic?
    let servers = store.cumulative(Dataset::SrvIp);
    println!("top 5 nameservers by traffic:");
    for (ip, row) in servers.iter().take(5) {
        println!(
            "  {ip:<16} {:>6} hits, median delay {:>6.1} ms, {:>4.1}% NXDOMAIN",
            row.hits,
            row.median_delay(),
            row.nxd_share() * 100.0
        );
    }

    // What is being asked?
    let qtypes = store.cumulative(Dataset::Qtype);
    let total: u64 = qtypes.iter().map(|(_, r)| r.hits).sum();
    println!("\nQTYPE mix:");
    for (qtype, row) in qtypes.iter().take(6) {
        println!(
            "  {qtype:<6} {:>5.1}%  (NoData {:>4.1}%, NXDOMAIN {:>4.1}%)",
            row.hits as f64 / total as f64 * 100.0,
            row.nodata_share() * 100.0,
            row.nxd_share() * 100.0
        );
    }

    // And write one window as a TSV file, the platform's storage format.
    let path = std::env::temp_dir().join("dns-observatory-quickstart.tsv");
    let window = store
        .dataset(Dataset::SrvIp)
        .into_iter()
        .max_by(|a, b| a.total_hits().cmp(&b.total_hits()))
        .expect("at least one window");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create tsv"));
    dns_observatory::tsv::write_window(&mut file, window).expect("write tsv");
    println!("\nwrote the busiest srvip window to {}", path.display());
}
