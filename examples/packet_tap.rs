//! Packet tap: drive the Observatory from *raw IP packets*, exactly like
//! a passive sensor on a resolver machine (paper §2.1: "capturing raw IP
//! packets from network interfaces").
//!
//! The simulator serializes every transaction into IPv4/IPv6+UDP wire
//! bytes; the Observatory parses them back with `dnswire` — IP header,
//! UDP header, DNS message, hop inference from the received IP TTL — and
//! the results are proven identical to the structured fast path.
//!
//! ```sh
//! cargo run --release --example packet_tap
//! ```

use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{SimConfig, Simulation};

fn observatory() -> Observatory {
    Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 500), (Dataset::Rcode, 16)],
        window_secs: 10.0,
        ..ObservatoryConfig::default()
    })
}

fn main() {
    // Path A: the structured ingest (what the experiments use).
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut structured = observatory();
    sim.run(20.0, &mut |tx| structured.ingest(tx));

    // Path B: the same traffic, round-tripped through raw packets.
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut tapped = observatory();
    let mut bytes_seen = 0usize;
    sim.run(20.0, &mut |tx| {
        let (query_pkt, response_pkt) = tx.to_packets();
        bytes_seen += query_pkt.len() + response_pkt.as_ref().map(Vec::len).unwrap_or(0);
        tapped.ingest_packets(
            &query_pkt,
            response_pkt.as_deref(),
            tx.time,
            tx.contributor,
            tx.delay_ms,
        );
    });
    println!(
        "tapped {} transactions / {:.1} MiB of raw packets",
        tapped.ingested(),
        bytes_seen as f64 / (1024.0 * 1024.0)
    );

    let a = structured.finish();
    let b = tapped.finish();
    assert_eq!(a.windows().len(), b.windows().len());
    for (wa, wb) in a.windows().iter().zip(b.windows()) {
        assert_eq!(wa.total_hits(), wb.total_hits(), "window {}", wa.start);
        assert_eq!(wa.rows.len(), wb.rows.len());
    }
    println!("packet path and structured path agree on every window ✔");

    // Show the RCODE mix recovered purely from wire bytes.
    println!("\nRCODE mix (from raw packets):");
    let rcodes = b.cumulative(Dataset::Rcode);
    let total: u64 = rcodes.iter().map(|(_, r)| r.hits).sum();
    for (rcode, row) in &rcodes {
        println!(
            "  {rcode:<6} {:>5.1}%  median response {:>4.0} B",
            row.hits as f64 / total as f64 * 100.0,
            row.resp_size[1]
        );
    }
}
