//! Distributed tap: the paper's Figure 1 A→B boundary on your loopback.
//!
//! Three sensor threads each simulate the same global traffic, keep the
//! slice their vantage point would see, and stream summaries over real
//! TCP to one collector, which merges the streams back into time order
//! and feeds the tracking pipeline. The demo then runs the identical
//! traffic through a single in-process Observatory and asserts the two
//! paths produce the same windows — the transport is invisible to the
//! science.
//!
//! Run with: `cargo run --release --example distributed_tap`

use dns_observatory::{Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TxSummary};
use feed::{Collector, CollectorConfig, Sensor, SensorConfig};
use psl::Psl;
use simnet::{SimConfig, Simulation};
use std::thread;

const SENSORS: usize = 3;
const SEED: u64 = 42;
const DURATION: f64 = 5.0;

fn config() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 5_000),
            (Dataset::Esld, 5_000),
            (Dataset::Qtype, 64),
        ],
        window_secs: 1.0,
        ..ObservatoryConfig::default()
    }
}

fn main() {
    // --- Distributed run: N sensors over TCP into one collector. -------
    let mut collector =
        Collector::<TxSummary>::bind("127.0.0.1:0", CollectorConfig::new(SENSORS as u64))
            .expect("bind collector");
    let addr = collector.local_addr().to_string();
    println!("collector listening on {addr}, waiting for {SENSORS} sensors");

    let handles: Vec<_> = (0..SENSORS)
        .map(|index| {
            let addr = addr.clone();
            thread::spawn(move || {
                let psl = Psl::embedded();
                let client = Sensor::connect(addr, SensorConfig::new(index as u64));
                let mut sim = Simulation::from_config(SimConfig {
                    seed: SEED,
                    ..SimConfig::small()
                });
                let mut kept = 0u64;
                sim.run(DURATION, &mut |tx| {
                    if tx.sensor_index(SENSORS) == index {
                        client.send(TxSummary::from_transaction(tx, &psl));
                        kept += 1;
                    }
                });
                (kept, client.finish())
            })
        })
        .collect();

    let output = collector.take_output();
    let distributed = ThreadedPipeline::new(config(), 1).run_summaries(output.iter());
    let sensor_reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let report = collector.finish();

    println!("\nper-sensor accounting:");
    for (kept, r) in &sensor_reports {
        let stats = &report.sensors[&r.sensor];
        println!(
            "  sensor {}: tapped {kept} tx -> {} frames/{} items sent, \
             {} dropped, {} gap(s)/{} missing frames at the collector",
            r.sensor,
            r.sent_frames,
            r.sent_items,
            r.dropped_items,
            stats.gaps.len(),
            stats.gap_frames,
        );
    }
    println!(
        "collector merged {} items ({} total gap frames)",
        report.items_merged,
        report.total_gap_frames()
    );

    // --- Reference run: same traffic, one process, no network. ---------
    let mut sim = Simulation::from_config(SimConfig {
        seed: SEED,
        ..SimConfig::small()
    });
    let mut obs = Observatory::new(config());
    sim.run(DURATION, &mut |tx| obs.ingest(tx));
    let reference = obs.finish();

    // --- The whole point: the feed boundary changes nothing. -----------
    let mut windows = 0;
    for &(ds, _) in &config().datasets {
        let a = reference.dataset(ds);
        let b = distributed.dataset(ds);
        assert_eq!(a.len(), b.len(), "{} window count differs", ds.name());
        for (wa, wb) in a.iter().zip(b) {
            assert_eq!(
                format!("{wa:?}"),
                format!("{wb:?}"),
                "{} window @ t={} differs",
                ds.name(),
                wa.start
            );
            windows += 1;
        }
    }
    println!("\nverified: {windows} windows identical to the in-process run");
}
