//! Negative-TTL audit: find the domains wasting everyone's resources on
//! empty AAAA responses — the paper's §5 recommendation turned into a
//! tool an operator could actually run against their own feed.
//!
//! For every popular FQDN it reports the A-TTL/negative-TTL quotient and
//! the measured share of empty AAAA responses, then simulates the fix
//! (raising the negative TTL) and measures the saving.
//!
//! ```sh
//! cargo run --release --example negative_ttl_audit
//! ```

use dns_observatory::analysis::happy::{happy_rows, quotient_share_correlation};
use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{Scenario, ScenarioEvent, ScenarioKind, SimConfig, Simulation};

fn measure(scenario: Scenario) -> (Vec<dns_observatory::analysis::happy::HappyRow>, u64) {
    let mut sim = Simulation::new(SimConfig::small(), scenario);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::Qname, 10_000)],
        window_secs: 20.0,
        ..ObservatoryConfig::default()
    });
    sim.run(120.0, &mut |tx| obs.ingest(tx));
    let total = obs.ingested();
    let rows = obs.finish().cumulative(Dataset::Qname);
    (happy_rows(&rows, 100), total)
}

fn main() {
    println!("auditing the top 100 FQDNs for negative-caching pathologies...\n");
    let (audit, total_before) = measure(Scenario::new());

    let mut offenders = Vec::new();
    for r in &audit {
        if r.empty_aaaa_share > 0.4 {
            println!(
                "  rank {:>3} {:<26} empty-AAAA {:>3.0}%  A-TTL {:?}  negTTL {:?}",
                r.rank,
                r.key,
                r.empty_aaaa_share * 100.0,
                r.a_ttl,
                r.neg_ttl
            );
            offenders.push(r.key.clone());
        }
    }
    if let Some(corr) = quotient_share_correlation(&audit) {
        println!("\ncorrelation of ln(A-TTL/negTTL) vs empty share: {corr:.2}");
    }
    assert!(
        !offenders.is_empty(),
        "the small world always has offenders"
    );

    // Now apply the paper's third remedy — align the negative TTL with
    // the A TTL — for every offending domain, and re-measure.
    println!(
        "\napplying the fix (negative TTL := 300 s) to {} domains...",
        { offenders.len() }
    );
    let probe = Simulation::from_config(SimConfig::small());
    let mut events = Vec::new();
    for key in &offenders {
        // Recover the domain id from the generated name (domNN.tld).
        if let Some(idnum) = key
            .split('.')
            .nth(1)
            .and_then(|l| l.strip_prefix("dom"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            events.push(ScenarioEvent {
                at: 0.0,
                domain: idnum,
                kind: ScenarioKind::SetNegTtl(300),
            });
        }
    }
    drop(probe);
    let (fixed, total_after) = measure(Scenario::from_events(events));

    let share_of = |rows: &[dns_observatory::analysis::happy::HappyRow], key: &str| {
        rows.iter()
            .find(|r| r.key == key)
            .map(|r| r.empty_aaaa_share)
            .unwrap_or(0.0)
    };
    println!("\nbefore -> after (share of empty AAAA responses):");
    let mut improved = 0;
    for key in offenders.iter().take(8) {
        let b = share_of(&audit, key);
        let a = share_of(&fixed, key);
        if a < b {
            improved += 1;
        }
        println!("  {key:<28} {:>3.0}% -> {:>3.0}%", b * 100.0, a * 100.0);
    }
    println!(
        "\n{improved} of {} offenders improved; total cache-miss transactions {} -> {}",
        offenders.len().min(8),
        total_before,
        total_after
    );
}
