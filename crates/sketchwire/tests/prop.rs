//! Property tests for the sketch-state wire format and merge laws.
//!
//! Three guarantees are pinned here:
//!
//! * **Codec**: every representable record round-trips byte-for-byte,
//!   and arbitrary truncation or corruption of an encoded stream is a
//!   typed error — never a panic, never a silently different state.
//! * **Merge ⋄ codec**: merging decoded copies equals merging the
//!   originals — serialization is transparent to the merge algebra.
//! * **Merge algebra**: `merge_topk`/`merge_features` are commutative
//!   and associative, so an aggregation tree produces the same global
//!   state regardless of arrival order or tree shape; the stated error
//!   bound is the sum of the inputs' and no entry's error exceeds it.

use feed::{ByteReader, FeedItem};
use proptest::prelude::*;
use sketchwire::{
    merge_chunks, merge_features, merge_topk, read_all, write_record, FeatureState, HistogramState,
    HllState, TopKEntry, TopKState, TopValuesState, WindowState,
};

// ---------------------------------------------------------------------
// Strategies. All values respect the decoder's invariants (the decoder
// is the gatekeeper; the corruption tests cover invalid bytes).
// ---------------------------------------------------------------------

fn arb_hll() -> impl Strategy<Value = HllState> {
    prop_oneof![
        prop::collection::vec(0u8..=61, 16).prop_map(|registers| HllState { p: 4, registers }),
        prop::collection::vec(0u8..=60, 32).prop_map(|registers| HllState { p: 5, registers }),
    ]
}

// A top-values table with a caller-fixed capacity (merge requires equal
// capacities; round-trip uses a few different ones).
prop_compose! {
    fn arb_topvalues(capacity: u64)(
        raw in prop::collection::vec((any::<u16>(), 1u64..50), 0..=4),
        extra in 0u64..100,
    ) -> TopValuesState {
        let mut slots: Vec<(u64, u64)> = Vec::new();
        for (v, c) in raw {
            let v = v as u64;
            if slots.len() < capacity as usize && !slots.iter().any(|&(sv, _)| sv == v) {
                slots.push((v, c));
            }
        }
        let observed = slots.iter().map(|&(_, c)| c).sum::<u64>() + extra;
        TopValuesState { capacity, observed, slots }
    }
}

// A histogram over a caller-fixed layout (merge requires equal layouts).
prop_compose! {
    fn arb_hist(min_c: u32, base_c: u32, buckets: usize)(
        counts in prop::collection::vec(0u64..50, 1),
        lo in 1u32..1_000,
        hi in 1u32..1_000,
    ) -> HistogramState {
        let counts = vec![counts[0]; 1].into_iter().chain(
            (1..buckets).map(|i| (lo as u64 + i as u64) % 7)
        ).collect::<Vec<u64>>();
        let total: u64 = counts.iter().sum();
        let (observed_min, observed_max) = if total == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            let (a, b) = (lo.min(hi), lo.max(hi));
            (a as f64 / 10.0, b as f64 / 10.0)
        };
        HistogramState {
            min: min_c as f64 / 100.0,
            base: base_c as f64 / 100.0,
            counts,
            observed_min,
            observed_max,
        }
    }
}

// Feature state in the *fixed* layout the merge laws require: shapes,
// HLL precisions, capacities, and histogram layouts all agree.
prop_compose! {
    fn arb_features()(
        adds in prop::collection::vec(0u64..1_000, 3),
        maxes in prop::collection::vec(0u64..255, 1),
        hll in prop::collection::vec(0u8..=61, 16),
        raw_sources in prop::collection::vec(any::<u16>(), 0..=5),
        top in arb_topvalues(4),
        hist in arb_hist(150, 200, 3),
    ) -> FeatureState {
        let mut sources = raw_sources;
        sources.sort_unstable();
        sources.dedup();
        FeatureState {
            adds,
            maxes,
            hlls: vec![HllState { p: 4, registers: hll }],
            source_cap: 16,
            sources,
            tops: vec![top],
            hists: vec![hist],
        }
    }
}

// Tracker state over a small key pool (so different samples overlap on
// some keys and differ on others — both merge paths get exercised).
prop_compose! {
    fn arb_topk()(
        raw_entries in prop::collection::vec(
            (0usize..8, 0u64..500, 0u64..500, 0u32..10_000, arb_features()),
            0..=5,
        ),
        capacity in 1u64..64,
        extra_observed in 0u64..1_000,
        min_c in 0u64..40,
        bound_extra in 0u64..100,
        evictions in 0u64..50,
        kept in 0u64..1_000,
        dropped in 0u64..100,
        filtered in 0u64..100,
    ) -> TopKState {
        let mut entries: Vec<TopKEntry> = Vec::new();
        for (idx, count, err, at, features) in raw_entries {
            let key = format!("k{idx}");
            if entries.iter().any(|e| e.key == key) {
                continue;
            }
            entries.push(TopKEntry {
                key,
                count,
                error: err.min(count),
                inserted_at: at as f64 / 100.0,
                features,
            });
        }
        let max_count = entries.iter().map(|e| e.count).max().unwrap_or(0);
        let observed = max_count + extra_observed;
        let min_count = min_c.min(observed);
        // Space-Saving invariant: an entry's error is the min_count at
        // insertion time, which never exceeds the current min_count.
        for e in &mut entries {
            e.error = e.error.min(min_count);
        }
        TopKState {
            dataset: "esld".to_string(),
            capacity,
            observed,
            min_count,
            error_bound: min_count + bound_extra,
            evictions,
            kept,
            dropped,
            filtered,
            chunk: 0,
            chunks: 1,
            entries,
            gate: None,
        }
    }
}

prop_compose! {
    fn arb_window()(
        topk in arb_topk(),
        upstream in 0u64..9,
        window in 0u32..500,
    ) -> WindowState {
        WindowState {
            upstream,
            start: window as f64 * 60.0,
            length: 60.0,
            topk,
        }
    }
}

fn encode_ws(ws: &WindowState) -> Vec<u8> {
    let mut buf = Vec::new();
    ws.encode(&mut buf);
    buf
}

fn roundtrip(ws: &WindowState) -> WindowState {
    let buf = encode_ws(ws);
    let mut r = ByteReader::new(&buf);
    let back = WindowState::decode(&mut r).expect("strategy output must decode");
    assert!(r.is_empty(), "decode must consume every byte");
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- codec ---------------------------------------------------------

    #[test]
    fn window_state_roundtrips(ws in arb_window()) {
        prop_assert_eq!(roundtrip(&ws), ws);
    }

    #[test]
    fn hll_shape_variants_roundtrip(hll in arb_hll(), ws in arb_window()) {
        // Codec (unlike merge) must handle mixed HLL precisions.
        let mut ws = ws;
        if let Some(e) = ws.topk.entries.first_mut() {
            e.features.hlls[0] = hll;
        }
        prop_assert_eq!(roundtrip(&ws), ws);
    }

    #[test]
    fn record_stream_roundtrips(a in arb_window(), b in arb_window()) {
        let mut buf = Vec::new();
        write_record(&a, &mut buf);
        write_record(&b, &mut buf);
        let back = read_all(&buf).expect("valid stream");
        prop_assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn truncation_is_detected(ws in arb_window(), cut in any::<u16>()) {
        let mut buf = Vec::new();
        write_record(&ws, &mut buf);
        let cut = cut as usize % buf.len();
        // A prefix is only valid when cut at a record boundary (here:
        // empty). Anything else must be a typed error, not a panic.
        match read_all(&buf[..cut]) {
            Ok(records) => prop_assert!(cut == 0 && records.is_empty()),
            Err(_) => prop_assert!(cut > 0),
        }
    }

    #[test]
    fn corruption_is_detected(ws in arb_window(), pos in any::<u16>(), flip in 1u8..=255) {
        let mut buf = Vec::new();
        write_record(&ws, &mut buf);
        let pos = pos as usize % buf.len();
        buf[pos] ^= flip;
        // Either a typed error, or (if the flip hit the length field and
        // made the record look longer) a wait-for-more-bytes truncation
        // error — also typed. A silently *different* record is the one
        // forbidden outcome.
        if let Ok(records) = read_all(&buf) {
            prop_assert_eq!(records, vec![ws]);
        }
    }

    // --- merge ⋄ codec -------------------------------------------------

    #[test]
    fn merge_commutes_with_codec(a in arb_window(), b in arb_window()) {
        let direct = merge_topk(&a.topk, &b.topk).expect("fixed layout merges");
        let via_wire = merge_topk(&roundtrip(&a).topk, &roundtrip(&b).topk)
            .expect("fixed layout merges");
        prop_assert_eq!(direct, via_wire);
    }

    // --- merge algebra -------------------------------------------------

    #[test]
    fn merge_topk_is_commutative(a in arb_topk(), b in arb_topk()) {
        let ab = merge_topk(&a, &b).expect("merge");
        let ba = merge_topk(&b, &a).expect("merge");
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_topk_is_associative(a in arb_topk(), b in arb_topk(), c in arb_topk()) {
        let left = merge_topk(&merge_topk(&a, &b).expect("ab"), &c).expect("ab_c");
        let right = merge_topk(&a, &merge_topk(&b, &c).expect("bc")).expect("a_bc");
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merged_bound_is_sum_and_covers_entries(a in arb_topk(), b in arb_topk()) {
        let m = merge_topk(&a, &b).expect("merge");
        prop_assert_eq!(m.error_bound, a.error_bound + b.error_bound);
        prop_assert_eq!(m.min_count, a.min_count + b.min_count);
        // Every entry's error gained at most the other side's min_count,
        // and min_count ≤ error_bound on each input, so the merged bound
        // still covers the worst entry.
        prop_assert!(m.max_entry_error() <= m.error_bound);
        // Conservation: per-window transaction accounting adds up.
        prop_assert_eq!(m.kept, a.kept + b.kept);
        prop_assert_eq!(m.dropped, a.dropped + b.dropped);
        prop_assert_eq!(m.filtered, a.filtered + b.filtered);
        prop_assert_eq!(m.observed, a.observed + b.observed);
    }

    #[test]
    fn merge_features_is_commutative(a in arb_features(), b in arb_features()) {
        let ab = merge_features(&a, &b).expect("merge");
        let ba = merge_features(&b, &a).expect("merge");
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_features_is_associative(
        a in arb_features(),
        b in arb_features(),
        c in arb_features(),
    ) {
        let left = merge_features(&merge_features(&a, &b).expect("ab"), &c).expect("ab_c");
        let right = merge_features(&a, &merge_features(&b, &c).expect("bc")).expect("a_bc");
        prop_assert_eq!(left, right);
    }

    // --- chunking ------------------------------------------------------

    #[test]
    fn chunks_reassemble_losslessly(topk in arb_topk(), max in 1usize..4) {
        let chunks = topk.clone().into_chunks(max);
        prop_assert!(chunks.iter().all(|c| c.entries.len() <= max));
        let back = merge_chunks(&chunks).expect("reassemble");
        let mut want = topk;
        want.entries.sort_by(|a, b| a.key.cmp(&b.key));
        prop_assert_eq!(back, want);
    }

    #[test]
    fn chunks_roundtrip_the_wire(ws in arb_window(), max in 1usize..4) {
        // Chunk, ship each chunk as its own record, reassemble the
        // decoded copies: still lossless.
        let chunks = ws.topk.clone().into_chunks(max);
        let mut buf = Vec::new();
        for c in &chunks {
            write_record(
                &WindowState { topk: c.clone(), ..ws.clone() },
                &mut buf,
            );
        }
        let shipped = read_all(&buf).expect("valid stream");
        let parts: Vec<TopKState> = shipped.into_iter().map(|w| w.topk).collect();
        let back = merge_chunks(&parts).expect("reassemble");
        let mut want = ws.topk;
        want.entries.sort_by(|a, b| a.key.cmp(&b.key));
        prop_assert_eq!(back, want);
    }

    // --- compaction hierarchy ------------------------------------------

    #[test]
    fn hierarchical_fold_matches_oneshot(
        states in prop::collection::vec(arb_topk(), 2..=12),
        cuts_hourly in prop::collection::vec(any::<bool>(), 11),
        cuts_daily in prop::collection::vec(any::<bool>(), 11),
    ) {
        // The store's compactor rolls 10-min windows into hours, hours
        // into days, days into months — i.e. it re-associates the same
        // linear fold. Whatever consecutive partition each level picks,
        // the final state must be byte-identical to the one-shot fold.
        let fold = |group: &[TopKState]| -> TopKState {
            let mut acc = group[0].clone();
            for part in &group[1..] {
                acc = merge_topk(&acc, part).expect("fixed layout merges");
            }
            acc
        };
        // Split `items` into consecutive runs, cutting after position i
        // when cuts[i] is set.
        let split = |items: &[TopKState], cuts: &[bool]| -> Vec<Vec<TopKState>> {
            let mut groups = vec![Vec::new()];
            for (i, item) in items.iter().enumerate() {
                groups.last_mut().expect("non-empty").push(item.clone());
                if i + 1 < items.len() && cuts.get(i).copied().unwrap_or(false) {
                    groups.push(Vec::new());
                }
            }
            groups
        };
        let oneshot = fold(&states);
        let hourly: Vec<TopKState> =
            split(&states, &cuts_hourly).iter().map(|g| fold(g)).collect();
        let daily: Vec<TopKState> =
            split(&hourly, &cuts_daily).iter().map(|g| fold(g)).collect();
        let rolled = fold(&daily);
        // Struct equality, then byte equality after rendering to the
        // wire — the canonical form a segment file would store.
        prop_assert_eq!(&rolled, &oneshot);
        let wrap = |topk: TopKState| WindowState {
            upstream: 0,
            start: 0.0,
            length: 600.0,
            topk,
        };
        prop_assert_eq!(encode_ws(&wrap(rolled)), encode_ws(&wrap(oneshot)));
    }
}
