//! Merge laws over serialized sketch state.
//!
//! Everything here is associative and commutative — the property the
//! serialized-layer proptests pin — so an aggregation tree produces the
//! same global state no matter how streams arrive or how the tree is
//! shaped. Three ingredients make that work:
//!
//! * integer arithmetic only (saturating adds, maxes, mins) — no
//!   floating-point accumulation on the wire;
//! * merges never truncate (top-value tables and contributor sets may
//!   exceed their nominal capacity; capacity is re-applied on render);
//! * the Space-Saving law: a key absent from input `x` has true count
//!   `≤ min_count(x)`, so the merged count and error both gain
//!   `min_count(x)`, and the merged `min_count` is the sum of the
//!   inputs' — which keeps the law self-similar under further merges.
//!
//! The bound bookkeeping that falls out: every merged entry satisfies
//! `count − error ≤ true ≤ count` and `error ≤ error_bound`, where the
//! merged `error_bound` is exactly the sum of the per-input bounds — the
//! *stated* error the aggregator emits and the chaos oracle asserts.

use std::collections::BTreeMap;

use crate::state::{FeatureState, HistogramState, StateError, TopKEntry, TopKState};

fn check_features(a: &FeatureState, b: &FeatureState) -> Result<(), StateError> {
    if a.adds.len() != b.adds.len() {
        return Err(StateError::LayoutMismatch("counter count"));
    }
    if a.maxes.len() != b.maxes.len() {
        return Err(StateError::LayoutMismatch("max count"));
    }
    if a.hlls.len() != b.hlls.len() {
        return Err(StateError::LayoutMismatch("hll count"));
    }
    if a.hlls.iter().zip(&b.hlls).any(|(x, y)| x.p != y.p) {
        return Err(StateError::LayoutMismatch("hll precision"));
    }
    if a.source_cap != b.source_cap {
        return Err(StateError::LayoutMismatch("source cap"));
    }
    if a.tops.len() != b.tops.len() {
        return Err(StateError::LayoutMismatch("topvalues count"));
    }
    if a.tops
        .iter()
        .zip(&b.tops)
        .any(|(x, y)| x.capacity != y.capacity)
    {
        return Err(StateError::LayoutMismatch("topvalues capacity"));
    }
    if a.hists.len() != b.hists.len() {
        return Err(StateError::LayoutMismatch("histogram count"));
    }
    if a.hists.iter().zip(&b.hists).any(|(x, y)| {
        x.min.to_bits() != y.min.to_bits()
            || x.base.to_bits() != y.base.to_bits()
            || x.counts.len() != y.counts.len()
    }) {
        return Err(StateError::LayoutMismatch("histogram layout"));
    }
    Ok(())
}

fn merge_sorted_u16(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn merge_histogram(a: &HistogramState, b: &HistogramState) -> HistogramState {
    HistogramState {
        min: a.min,
        base: a.base,
        counts: a
            .counts
            .iter()
            .zip(&b.counts)
            .map(|(&x, &y)| x.saturating_add(y))
            .collect(),
        // Canonical empty bounds (+∞/−∞) are the identity of min/max, so
        // empty inputs merge transparently.
        observed_min: a.observed_min.min(b.observed_min),
        observed_max: a.observed_max.max(b.observed_max),
    }
}

/// Merge two feature accumulator states of identical shape.
pub fn merge_features(a: &FeatureState, b: &FeatureState) -> Result<FeatureState, StateError> {
    check_features(a, b)?;
    let hlls = a
        .hlls
        .iter()
        .zip(&b.hlls)
        .map(|(x, y)| {
            let mut h = x.clone();
            for (r, &s) in h.registers.iter_mut().zip(&y.registers) {
                if s > *r {
                    *r = s;
                }
            }
            h
        })
        .collect();
    let tops = a
        .tops
        .iter()
        .zip(&b.tops)
        .map(|(x, y)| {
            let mut by_value: BTreeMap<u64, u64> = BTreeMap::new();
            for &(v, c) in x.slots.iter().chain(&y.slots) {
                let slot = by_value.entry(v).or_insert(0);
                *slot = slot.saturating_add(c);
            }
            crate::state::TopValuesState {
                capacity: x.capacity,
                observed: x.observed.saturating_add(y.observed),
                // Canonical value-ascending order keeps merges comparable
                // regardless of input slot order.
                slots: by_value.into_iter().collect(),
            }
        })
        .collect();
    Ok(FeatureState {
        adds: a
            .adds
            .iter()
            .zip(&b.adds)
            .map(|(&x, &y)| x.saturating_add(y))
            .collect(),
        maxes: a
            .maxes
            .iter()
            .zip(&b.maxes)
            .map(|(&x, &y)| x.max(y))
            .collect(),
        hlls,
        source_cap: a.source_cap,
        sources: merge_sorted_u16(&a.sources, &b.sources),
        tops,
        hists: a
            .hists
            .iter()
            .zip(&b.hists)
            .map(|(x, y)| merge_histogram(x, y))
            .collect(),
    })
}

/// Merge two assembled tracker states from *different* sources (the
/// cross-collector Space-Saving merge law). Inputs must be whole windows
/// (`chunks == 1`); chunks of one source reassemble with
/// [`merge_chunks`] first — the absent-key adjustment below would be
/// wrong within a single source.
pub fn merge_topk(a: &TopKState, b: &TopKState) -> Result<TopKState, StateError> {
    if a.dataset != b.dataset {
        return Err(StateError::DatasetMismatch);
    }
    if a.chunks != 1 || b.chunks != 1 {
        return Err(StateError::ChunkMismatch("merging unassembled chunk"));
    }
    let mut keys: BTreeMap<&str, (Option<&TopKEntry>, Option<&TopKEntry>)> = BTreeMap::new();
    for e in &a.entries {
        keys.entry(&e.key).or_default().0 = Some(e);
    }
    for e in &b.entries {
        keys.entry(&e.key).or_default().1 = Some(e);
    }
    let mut entries = Vec::with_capacity(keys.len());
    for (key, pair) in keys {
        let e = match pair {
            (Some(x), Some(y)) => TopKEntry {
                key: key.to_string(),
                count: x.count.saturating_add(y.count),
                error: x.error.saturating_add(y.error),
                inserted_at: x.inserted_at.min(y.inserted_at),
                features: merge_features(&x.features, &y.features)?,
            },
            // A key one side never tracked has a true count of at most
            // that side's min_count — add it to both the count (upper
            // bound stays an upper bound) and the error (the lower bound
            // concedes it may be zero).
            (Some(x), None) => TopKEntry {
                key: key.to_string(),
                count: x.count.saturating_add(b.min_count),
                error: x.error.saturating_add(b.min_count),
                inserted_at: x.inserted_at,
                features: x.features.clone(),
            },
            (None, Some(y)) => TopKEntry {
                key: key.to_string(),
                count: y.count.saturating_add(a.min_count),
                error: y.error.saturating_add(a.min_count),
                inserted_at: y.inserted_at,
                features: y.features.clone(),
            },
            (None, None) => unreachable!("key came from one of the inputs"),
        };
        entries.push(e);
    }
    Ok(TopKState {
        dataset: a.dataset.clone(),
        capacity: a.capacity.min(b.capacity),
        observed: a.observed.saturating_add(b.observed),
        min_count: a.min_count.saturating_add(b.min_count),
        error_bound: a.error_bound.saturating_add(b.error_bound),
        evictions: a.evictions.saturating_add(b.evictions),
        kept: a.kept.saturating_add(b.kept),
        dropped: a.dropped.saturating_add(b.dropped),
        filtered: a.filtered.saturating_add(b.filtered),
        chunk: 0,
        chunks: 1,
        entries,
        // A merge output is an aggregate of two trackers, not a live
        // tracker: no single gate describes it, so it carries none.
        gate: None,
    })
}

/// Reassemble the surviving chunks of *one* source window into a whole
/// tracker state. Chunks repeat the source header, so any subset (chunk
/// loss under faults) still reassembles; the per-source `min_count` law
/// stays valid for the keys that survived. Headers must agree and keys
/// must be disjoint — anything else is a [`StateError::ChunkMismatch`].
pub fn merge_chunks(parts: &[TopKState]) -> Result<TopKState, StateError> {
    let first = parts
        .first()
        .ok_or(StateError::ChunkMismatch("no chunks"))?;
    let mut seen = std::collections::BTreeSet::new();
    for p in parts {
        if p.dataset != first.dataset {
            return Err(StateError::DatasetMismatch);
        }
        if p.chunks != first.chunks || p.chunk >= p.chunks {
            return Err(StateError::ChunkMismatch("chunk count disagreement"));
        }
        if !seen.insert(p.chunk) {
            return Err(StateError::ChunkMismatch("duplicate chunk"));
        }
        if p.capacity != first.capacity
            || p.observed != first.observed
            || p.min_count != first.min_count
            || p.error_bound != first.error_bound
            || p.evictions != first.evictions
            || p.kept != first.kept
            || p.dropped != first.dropped
            || p.filtered != first.filtered
            || p.gate != first.gate
        {
            return Err(StateError::ChunkMismatch("header disagreement"));
        }
    }
    // A split state is only whole once every declared chunk is present;
    // merging fewer would silently under-count the tracker.
    if parts.len() as u32 != first.chunks {
        return Err(StateError::ChunkMismatch("missing chunks"));
    }
    let mut entries: Vec<TopKEntry> = Vec::new();
    for p in parts {
        entries.extend(p.entries.iter().cloned());
    }
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    if entries.windows(2).any(|w| w[0].key == w[1].key) {
        return Err(StateError::ChunkMismatch("overlapping chunk keys"));
    }
    let mut out = first.clone();
    out.chunk = 0;
    out.chunks = 1;
    out.entries = entries;
    Ok(out)
}
