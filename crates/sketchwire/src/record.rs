//! Versioned, CRC-framed, length-prefixed record streams.
//!
//! This is the at-rest form of [`WindowState`] — what `dnsobs collect
//! --state-out` writes and `dnsobs aggregate --input` reads, and the
//! serialization substrate the historical store will reuse for
//! compaction. Layout per record:
//!
//! ```text
//! magic "SKW1" (4) | version u8 | payload_len u32 LE | payload | crc32 u32 LE
//! ```
//!
//! The CRC covers the version byte and the payload, so a flipped length
//! or version is caught just like flipped payload bytes. Decoding never
//! panics: every failure is a typed [`FeedError`].

use feed::{crc32::crc32, ByteReader, FeedError, FeedItem};

use crate::state::WindowState;

/// Record stream magic.
pub const RECORD_MAGIC: [u8; 4] = *b"SKW1";
/// Record format version.
pub const RECORD_VERSION: u8 = 1;
/// Hard cap on one record's payload. File records are not bound by the
/// feed transport's frame cap, but an absurd length is still corruption.
pub const MAX_RECORD: usize = 64 << 20;

/// Append one record to `out`.
pub fn write_record(ws: &WindowState, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    ws.encode(&mut payload);
    out.extend_from_slice(&RECORD_MAGIC);
    let crc_start = out.len();
    out.push(RECORD_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    // CRC over version + length + payload.
    let crc = crc32(&out[crc_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Incremental decoder for a record stream: push bytes in, pull whole
/// records out. Mirrors the feed's `FrameReader` discipline.
#[derive(Debug, Default)]
pub struct RecordReader {
    buf: Vec<u8>,
    decoded: u64,
}

impl RecordReader {
    /// New empty reader.
    pub fn new() -> RecordReader {
        RecordReader::default()
    }

    /// Append raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded record.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Records decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Decode the next whole record, `Ok(None)` if more bytes are needed.
    /// Errors are fatal for the stream (framing is lost after a bad
    /// header or CRC).
    pub fn next_record(&mut self) -> Result<Option<WindowState>, FeedError> {
        // magic + version + len
        if self.buf.len() < 9 {
            return Ok(None);
        }
        if self.buf[..4] != RECORD_MAGIC {
            let mut magic = [0u8; 4];
            magic.copy_from_slice(&self.buf[..4]);
            return Err(FeedError::BadMagic(magic));
        }
        let version = self.buf[4];
        if version != RECORD_VERSION {
            return Err(FeedError::BadItemVersion {
                got: version,
                want: RECORD_VERSION,
            });
        }
        let len = u32::from_le_bytes([self.buf[5], self.buf[6], self.buf[7], self.buf[8]]) as usize;
        if len > MAX_RECORD {
            return Err(FeedError::Invalid("record payload too large"));
        }
        let total = 9 + len + 4;
        if self.buf.len() < total {
            return Ok(None);
        }
        let expected = u32::from_le_bytes([
            self.buf[9 + len],
            self.buf[10 + len],
            self.buf[11 + len],
            self.buf[12 + len],
        ]);
        let computed = crc32(&self.buf[4..9 + len]);
        if expected != computed {
            return Err(FeedError::Crc { expected, computed });
        }
        let mut r = ByteReader::new(&self.buf[9..9 + len]);
        let ws = WindowState::decode(&mut r)?;
        if !r.is_empty() {
            return Err(FeedError::TrailingBytes(r.remaining()));
        }
        self.buf.drain(..total);
        self.decoded += 1;
        Ok(Some(ws))
    }
}

/// Decode a complete record stream strictly: every byte must belong to a
/// valid record (a truncated tail is a [`FeedError::Truncated`]).
pub fn read_all(bytes: &[u8]) -> Result<Vec<WindowState>, FeedError> {
    let mut reader = RecordReader::new();
    reader.push(bytes);
    let mut out = Vec::new();
    while let Some(ws) = reader.next_record()? {
        out.push(ws);
    }
    if reader.buffered() > 0 {
        return Err(FeedError::Truncated("partial trailing record"));
    }
    Ok(out)
}
