//! The sans-io federated aggregation core.
//!
//! [`AggregatorCore`] ingests N collector window-state streams (already
//! transported, deduplicated and time-merged by the feed collector),
//! aligns them on per-upstream watermark frontiers, reassembles chunked
//! tracker states, merges them per `(window, dataset)` with the laws in
//! [`crate::merge`], and emits [`GlobalWindow`]s whose Space-Saving
//! error bound is computed and stated (the sum of the per-input bounds).
//!
//! Same discipline as `feed::machine`: no sockets, no clocks, no
//! threads — events in, decisions out — so the chaos kernel can drive it
//! deterministically and diff it against a plain fold of the survivor
//! streams.

use std::collections::BTreeMap;

use telemetry::trace::{TraceEvent, TraceKind, TraceRing};
use telemetry::{Counter, Gauge, Histogram, Registry};

use crate::merge::{merge_chunks, merge_topk};
use crate::state::{StateError, TopKState, WindowState};

/// Stage name the aggregator records trace events under.
const STAGE: &str = "aggregator";

/// Microseconds per second — window starts are keyed on integer µs so
/// float window boundaries computed identically on every collector map
/// to identical keys.
const US: f64 = 1e6;

/// Aggregator configuration.
#[derive(Debug, Clone, Copy)]
pub struct AggregatorConfig {
    /// Upstream collectors expected to contribute. [`AggregatorCore::poll`]
    /// holds every window until all of them have been seen (or closed),
    /// so a late-starting upstream cannot be silently excluded from
    /// early windows. [`AggregatorCore::finish`] seals unconditionally.
    pub expected_upstreams: usize,
}

impl AggregatorConfig {
    /// Expect `n` upstream collectors.
    pub fn new(n: usize) -> AggregatorConfig {
        AggregatorConfig {
            expected_upstreams: n,
        }
    }
}

/// Per-upstream ledger: every record accounted, every gap visible. The
/// telemetry registry mirrors these byte-exactly (see
/// [`AggregatorMetrics`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpstreamStats {
    /// Window-state records accepted from this upstream.
    pub records: u64,
    /// Records rejected (structural conflicts, duplicate chunks).
    pub rejected: u64,
    /// Records for windows already sealed (counted, then dropped).
    pub late_records: u64,
    /// Distinct windows this upstream contributed to.
    pub windows: u64,
    /// Windows skipped between consecutive contributions — lost whole
    /// windows (the transport's frame ledger tracks sub-window loss).
    pub window_gaps: u64,
    /// Records that arrived for an older window than the upstream's
    /// newest (out-of-order within the stream; still merged if open).
    pub out_of_order: u64,
    /// Sealed global windows this upstream contributed to.
    pub merged_windows: u64,
    /// Watermark frontier: end of the newest window seen, seconds.
    pub frontier: Option<f64>,
    /// Upstream said goodbye (or its connection is gone) — it no longer
    /// gates window sealing.
    pub closed: bool,
}

struct UpstreamLedger {
    stats: UpstreamStats,
    last_window_us: Option<u64>,
}

/// Provenance of one sealed window: where its time went and what it
/// absorbed on the way. Timestamps come from whatever clock the io edge
/// injects via [`AggregatorCore::set_now_us`] — wall time in `dnsobs
/// aggregate`, virtual time under the chaos kernel, zero when nobody
/// injects one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowLineage {
    /// Clock reading when the first record for this window arrived, µs.
    pub first_seen_us: u64,
    /// Clock reading when the window was sealed, µs.
    pub sealed_us: u64,
    /// Window-state records merged into this window.
    pub records: u64,
    /// Merge conflicts absorbed while sealing (chunk loss, cross-
    /// collector shape conflicts).
    pub conflicts: u64,
}

impl WindowLineage {
    /// Open-to-seal residency, µs.
    pub fn latency_us(&self) -> u64 {
        self.sealed_us.saturating_sub(self.first_seen_us)
    }
}

/// One sealed global window: the merged per-dataset tracker states, each
/// carrying its stated error bound (`TopKState::error_bound` — the sum
/// of the contributing upstreams' bounds).
#[derive(Debug, Clone)]
pub struct GlobalWindow {
    /// Window start, seconds.
    pub start: f64,
    /// Window length, seconds.
    pub length: f64,
    /// Contributing upstream ids, ascending.
    pub upstreams: Vec<u64>,
    /// Merged per-dataset states, dataset-name ascending.
    pub datasets: Vec<TopKState>,
    /// Provenance metadata (see [`WindowLineage`]).
    pub lineage: WindowLineage,
}

/// Equality is *payload* equality: two windows with the same merged
/// state are equal no matter what path or clock produced them. Lineage
/// is provenance metadata, deliberately excluded so the differential
/// suites can compare a traced run against an untraced reference fold.
impl PartialEq for GlobalWindow {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start
            && self.length == other.length
            && self.upstreams == other.upstreams
            && self.datasets == other.datasets
    }
}

/// Aggregate accounting, mirrored byte-exactly into telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregatorReport {
    /// Per-upstream ledgers.
    pub upstreams: BTreeMap<u64, UpstreamStats>,
    /// Records accepted in total.
    pub records: u64,
    /// Records rejected in total.
    pub rejected: u64,
    /// Late records in total.
    pub late_records: u64,
    /// Global windows sealed.
    pub windows_sealed: u64,
    /// Source dataset states folded into global states.
    pub dataset_merges: u64,
    /// Source states skipped at seal time because they refused to merge
    /// (cross-collector shape conflicts).
    pub merge_conflicts: u64,
}

struct WindowAccum {
    start: f64,
    length: f64,
    /// upstream → dataset → received chunks.
    sources: BTreeMap<u64, BTreeMap<String, Vec<TopKState>>>,
    /// Clock reading when the first record arrived (µs).
    first_seen_us: u64,
    /// Records accepted into this window.
    records: u64,
}

/// The sans-io aggregation state machine.
pub struct AggregatorCore {
    cfg: AggregatorConfig,
    upstreams: BTreeMap<u64, UpstreamLedger>,
    windows: BTreeMap<u64, WindowAccum>,
    /// Start (µs) of the newest sealed window — records at or below it
    /// are late.
    sealed_through_us: Option<u64>,
    records: u64,
    rejected: u64,
    late_records: u64,
    windows_sealed: u64,
    dataset_merges: u64,
    merge_conflicts: u64,
    metrics: Option<AggregatorMetrics>,
    /// Injected clock reading (µs); stamps lineage and trace events.
    now_us: u64,
    /// Provenance ring; disabled (zero-capacity) unless installed.
    trace: TraceRing,
}

impl AggregatorCore {
    /// New core without telemetry.
    pub fn new(cfg: &AggregatorConfig) -> AggregatorCore {
        AggregatorCore {
            cfg: *cfg,
            upstreams: BTreeMap::new(),
            windows: BTreeMap::new(),
            sealed_through_us: None,
            records: 0,
            rejected: 0,
            late_records: 0,
            windows_sealed: 0,
            dataset_merges: 0,
            merge_conflicts: 0,
            metrics: None,
            now_us: 0,
            trace: TraceRing::disabled(),
        }
    }

    /// New core mirroring its ledgers into `registry`.
    pub fn with_registry(cfg: &AggregatorConfig, registry: &Registry) -> AggregatorCore {
        let mut core = AggregatorCore::new(cfg);
        core.metrics = Some(AggregatorMetrics::register(registry));
        core
    }

    /// Record provenance events into `ring` (builder style).
    pub fn with_trace(mut self, ring: TraceRing) -> AggregatorCore {
        self.trace = ring;
        self
    }

    /// Inject the current clock reading (µs). Sans-io discipline: the
    /// core never reads a clock; the io edge (or the chaos kernel, with
    /// virtual time) tells it what time it is before each event, and
    /// lineage/trace timestamps follow.
    pub fn set_now_us(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    /// Resume the sealing frontier from a durable store: every record for
    /// a window at or before `window_us` is treated as late (ledgered and
    /// dropped), exactly as if this core had sealed those windows itself.
    ///
    /// This is the crash-recovery contract of `aggregate --store`: on
    /// restart the aggregator replays upstream retransmissions without
    /// double-merging windows that already reached disk. The frontier
    /// only moves forward; a resume behind the current frontier is a
    /// no-op.
    pub fn resume_sealed_through(&mut self, window_us: u64) {
        if self.sealed_through_us.is_none_or(|s| s < window_us) {
            self.sealed_through_us = Some(window_us);
        }
    }

    /// The sealing frontier: the window-start (µs) through which windows
    /// have been sealed, if any. Mirrors what a `--store` run persists.
    pub fn sealed_through_us(&self) -> Option<u64> {
        self.sealed_through_us
    }

    fn ledger(&mut self, upstream: u64) -> &mut UpstreamLedger {
        self.upstreams
            .entry(upstream)
            .or_insert_with(|| UpstreamLedger {
                stats: UpstreamStats::default(),
                last_window_us: None,
            })
    }

    fn sync_metrics(&mut self) {
        if let Some(metrics) = self.metrics.as_mut() {
            let report = AggregatorReport {
                upstreams: self
                    .upstreams
                    .iter()
                    .map(|(&id, l)| (id, l.stats.clone()))
                    .collect(),
                records: self.records,
                rejected: self.rejected,
                late_records: self.late_records,
                windows_sealed: self.windows_sealed,
                dataset_merges: self.dataset_merges,
                merge_conflicts: self.merge_conflicts,
            };
            metrics.sync(&report, self.windows.len() as u64);
        }
    }

    fn reject(&mut self, upstream: u64, window_us: u64, err: StateError) -> Result<(), StateError> {
        self.rejected += 1;
        self.ledger(upstream).stats.rejected += 1;
        self.trace.record(
            TraceEvent::new(self.now_us, STAGE, TraceKind::Mark)
                .window(window_us)
                .source(upstream)
                .value(1),
        );
        self.sync_metrics();
        Err(err)
    }

    /// Ingest one window-state record. Structural conflicts reject the
    /// record (ledgered per upstream) and surface the typed error.
    pub fn on_state(&mut self, ws: WindowState) -> Result<(), StateError> {
        let upstream = ws.upstream;
        let window_us = (ws.start * US).round() as u64;
        let length_us = ((ws.length * US).round() as u64).max(1);

        // Frontier advances on every record, accepted or not — the
        // upstream demonstrably reached this window.
        let end = ws.start + ws.length;
        let ledger = self.ledger(upstream);
        if !ledger.stats.frontier.is_some_and(|f| end <= f) {
            ledger.stats.frontier = Some(end);
        }

        if self.sealed_through_us.is_some_and(|s| window_us <= s) {
            self.late_records += 1;
            self.ledger(upstream).stats.late_records += 1;
            self.trace.record(
                TraceEvent::new(self.now_us, STAGE, TraceKind::Drop)
                    .window(window_us)
                    .source(upstream)
                    .value(1),
            );
            self.sync_metrics();
            return Ok(());
        }

        // Window/gap accounting on the per-upstream window sequence.
        let ledger = self.ledger(upstream);
        match ledger.last_window_us {
            None => {
                ledger.stats.windows += 1;
                ledger.last_window_us = Some(window_us);
            }
            Some(last) if window_us > last => {
                ledger.stats.windows += 1;
                ledger.stats.window_gaps += (window_us - last) / length_us.max(1) - 1;
                ledger.last_window_us = Some(window_us);
            }
            Some(last) if window_us < last => {
                ledger.stats.out_of_order += 1;
            }
            Some(_) => {}
        }

        let now_us = self.now_us;
        let accum = self
            .windows
            .entry(window_us)
            .or_insert_with(|| WindowAccum {
                start: ws.start,
                length: ws.length,
                sources: BTreeMap::new(),
                first_seen_us: now_us,
                records: 0,
            });
        if accum.length.to_bits() != ws.length.to_bits() {
            return self.reject(
                upstream,
                window_us,
                StateError::LayoutMismatch("window length"),
            );
        }
        let parts = accum
            .sources
            .entry(upstream)
            .or_default()
            .entry(ws.topk.dataset.clone())
            .or_default();
        if let Some(first) = parts.first() {
            if first.chunks != ws.topk.chunks {
                return self.reject(
                    upstream,
                    window_us,
                    StateError::ChunkMismatch("chunk count disagreement"),
                );
            }
            if parts.iter().any(|p| p.chunk == ws.topk.chunk) {
                return self.reject(
                    upstream,
                    window_us,
                    StateError::ChunkMismatch("duplicate chunk"),
                );
            }
        }
        parts.push(ws.topk);
        accum.records += 1;
        self.records += 1;
        self.ledger(upstream).stats.records += 1;
        self.trace.record(
            TraceEvent::new(now_us, STAGE, TraceKind::Ingest)
                .window(window_us)
                .source(upstream)
                .value(1),
        );
        self.sync_metrics();
        Ok(())
    }

    /// Mark an upstream as finished (BYE or lost connection): it stops
    /// gating window sealing.
    pub fn on_closed(&mut self, upstream: u64) {
        self.ledger(upstream).stats.closed = true;
        self.sync_metrics();
    }

    /// Seal every window all open upstream frontiers have moved past and
    /// append the merged results to `out`, oldest first. Windows are held
    /// until all expected upstreams have been seen.
    pub fn poll(&mut self, out: &mut Vec<GlobalWindow>) {
        if self.upstreams.len() < self.cfg.expected_upstreams {
            return;
        }
        loop {
            let Some((&window_us, accum)) = self.windows.iter().next() else {
                return;
            };
            let end_us = window_us + (accum.length * US).round() as u64;
            let complete = self.upstreams.values().all(|l| {
                l.stats.closed
                    || l.stats
                        .frontier
                        .is_some_and(|f| (f * US).round() as u64 > end_us)
            });
            if !complete {
                return;
            }
            self.seal_first(out);
        }
    }

    /// Seal the oldest open window unconditionally.
    fn seal_first(&mut self, out: &mut Vec<GlobalWindow>) {
        let Some((window_us, accum)) = self.windows.pop_first() else {
            return;
        };
        let conflicts_before = self.merge_conflicts;
        let mut by_dataset: BTreeMap<String, TopKState> = BTreeMap::new();
        let mut contributors: Vec<u64> = Vec::new();
        for (&upstream, datasets) in &accum.sources {
            let mut contributed = false;
            for (name, parts) in datasets {
                let assembled = match merge_chunks(parts) {
                    Ok(s) => s,
                    Err(_) => {
                        self.merge_conflicts += 1;
                        continue;
                    }
                };
                let merged = match by_dataset.remove(name) {
                    None => Some(assembled),
                    Some(current) => match merge_topk(&current, &assembled) {
                        Ok(m) => Some(m),
                        Err(_) => {
                            self.merge_conflicts += 1;
                            Some(current)
                        }
                    },
                };
                if let Some(m) = merged {
                    by_dataset.insert(name.clone(), m);
                    self.dataset_merges += 1;
                    contributed = true;
                }
            }
            if contributed {
                contributors.push(upstream);
            }
        }
        for &u in &contributors {
            self.ledger(u).stats.merged_windows += 1;
        }
        self.windows_sealed += 1;
        self.sealed_through_us = Some(
            self.sealed_through_us
                .map_or(window_us, |s| s.max(window_us)),
        );
        let lineage = WindowLineage {
            first_seen_us: accum.first_seen_us,
            sealed_us: self.now_us,
            records: accum.records,
            conflicts: self.merge_conflicts - conflicts_before,
        };
        // Exactly one terminal event per window: a clean seal, or a seal
        // that absorbed merge conflicts. Either way the payload is the
        // record count, so the trace-conservation law can balance Ingest
        // events against terminals.
        let terminal = if lineage.conflicts > 0 {
            TraceKind::Conflict
        } else {
            TraceKind::Seal
        };
        self.trace.record(
            TraceEvent::new(self.now_us, STAGE, terminal)
                .window(window_us)
                .value(lineage.records),
        );
        if let Some(metrics) = self.metrics.as_ref() {
            metrics
                .seal_latency
                .record(lineage.latency_us() as f64 / 1e6);
        }
        out.push(GlobalWindow {
            start: accum.start,
            length: accum.length,
            upstreams: contributors,
            datasets: by_dataset.into_values().collect(),
            lineage,
        });
        self.sync_metrics();
    }

    /// Current accounting snapshot.
    pub fn report(&self) -> AggregatorReport {
        AggregatorReport {
            upstreams: self
                .upstreams
                .iter()
                .map(|(&id, l)| (id, l.stats.clone()))
                .collect(),
            records: self.records,
            rejected: self.rejected,
            late_records: self.late_records,
            windows_sealed: self.windows_sealed,
            dataset_merges: self.dataset_merges,
            merge_conflicts: self.merge_conflicts,
        }
    }

    /// Open (unsealed) windows.
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Seal everything still open (oldest first) and return the final
    /// report.
    pub fn finish(mut self, out: &mut Vec<GlobalWindow>) -> AggregatorReport {
        while !self.windows.is_empty() {
            self.seal_first(out);
        }
        self.sync_metrics();
        self.report()
    }
}

/// Telemetry mirror of the aggregator ledgers, byte-exact with
/// [`AggregatorReport`] after every event — the same positive-delta
/// discipline as `feed::CollectorMetrics`.
struct AggregatorMetrics {
    registry: Registry,
    records: Counter,
    rejected: Counter,
    late_records: Counter,
    windows_sealed: Counter,
    dataset_merges: Counter,
    merge_conflicts: Counter,
    open_windows: Gauge,
    upstreams: Gauge,
    /// Open-to-seal residency per window, seconds.
    seal_latency: Histogram,
    per_upstream: BTreeMap<u64, UpstreamCounters>,
}

struct UpstreamCounters {
    records: Counter,
    rejected: Counter,
    late_records: Counter,
    windows: Counter,
    window_gaps: Counter,
    out_of_order: Counter,
    merged_windows: Counter,
    frontier: Gauge,
    mirror: UpstreamStats,
}

impl AggregatorMetrics {
    fn register(registry: &Registry) -> AggregatorMetrics {
        AggregatorMetrics {
            registry: registry.clone(),
            records: registry.counter("agg_records_total"),
            rejected: registry.counter("agg_rejected_records_total"),
            late_records: registry.counter("agg_late_records_total"),
            windows_sealed: registry.counter("agg_windows_sealed_total"),
            dataset_merges: registry.counter("agg_dataset_merges_total"),
            merge_conflicts: registry.counter("agg_merge_conflicts_total"),
            open_windows: registry.gauge("agg_open_windows"),
            upstreams: registry.gauge("agg_upstreams"),
            seal_latency: registry
                .histogram("agg_window_seal_seconds", Histogram::seconds_layout()),
            per_upstream: BTreeMap::new(),
        }
    }

    fn sync(&mut self, report: &AggregatorReport, open_windows: u64) {
        fn advance(counter: &Counter, old: u64, new: u64) {
            if new > old {
                counter.inc(new - old);
            }
        }
        let mut records = 0;
        let mut rejected = 0;
        let mut late = 0;
        for u in self.per_upstream.values() {
            records += u.mirror.records;
            rejected += u.mirror.rejected;
            late += u.mirror.late_records;
        }
        advance(&self.records, records, report.records);
        advance(&self.rejected, rejected, report.rejected);
        advance(&self.late_records, late, report.late_records);
        let sealed = self.windows_sealed.value();
        advance(&self.windows_sealed, sealed, report.windows_sealed);
        let merges = self.dataset_merges.value();
        advance(&self.dataset_merges, merges, report.dataset_merges);
        let conflicts = self.merge_conflicts.value();
        advance(&self.merge_conflicts, conflicts, report.merge_conflicts);
        self.open_windows.set(open_windows as f64);
        self.upstreams.set(report.upstreams.len() as f64);
        for (&id, stats) in &report.upstreams {
            let registry = &self.registry;
            let u = self.per_upstream.entry(id).or_insert_with(|| {
                let label = id.to_string();
                let labels: &[(&str, &str)] = &[("upstream", label.as_str())];
                UpstreamCounters {
                    records: registry.counter_with("agg_upstream_records_total", labels),
                    rejected: registry.counter_with("agg_upstream_rejected_total", labels),
                    late_records: registry.counter_with("agg_upstream_late_records_total", labels),
                    windows: registry.counter_with("agg_upstream_windows_total", labels),
                    window_gaps: registry.counter_with("agg_upstream_window_gaps_total", labels),
                    out_of_order: registry.counter_with("agg_upstream_out_of_order_total", labels),
                    merged_windows: registry
                        .counter_with("agg_upstream_merged_windows_total", labels),
                    frontier: registry.gauge_with("agg_upstream_frontier_seconds", labels),
                    mirror: UpstreamStats::default(),
                }
            });
            advance(&u.records, u.mirror.records, stats.records);
            advance(&u.rejected, u.mirror.rejected, stats.rejected);
            advance(&u.late_records, u.mirror.late_records, stats.late_records);
            advance(&u.windows, u.mirror.windows, stats.windows);
            advance(&u.window_gaps, u.mirror.window_gaps, stats.window_gaps);
            advance(&u.out_of_order, u.mirror.out_of_order, stats.out_of_order);
            advance(
                &u.merged_windows,
                u.mirror.merged_windows,
                stats.merged_windows,
            );
            u.frontier.set(stats.frontier.unwrap_or(0.0));
            u.mirror = stats.clone();
        }
    }
}
