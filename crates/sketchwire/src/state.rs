//! Serializable per-window sketch state.
//!
//! Every type here is a plain-data mirror of a live sketch: HLL register
//! arrays, Space-Saving counters with their error terms, feature
//! accumulator internals. The encoding is the same discipline as the feed
//! codec — little-endian fixed-width integers, LEB128 varints for counts,
//! IEEE-bits `f64` — and every decode path validates structure so hostile
//! bytes produce a typed [`FeedError`], never a panic or an unbounded
//! allocation.
//!
//! Decode-time validation is deliberately strict about *invariants* a
//! well-formed exporter upholds (Space-Saving `error ≤ count`,
//! `min_count ≤ error_bound`, strictly ascending source lists, canonical
//! empty-histogram bounds): a record that violates them cannot have come
//! from a correct exporter or merge, and rejecting it early keeps the
//! aggregation tier's stated error bounds trustworthy.

use feed::codec::write_varint;
use feed::{ByteReader, FeedError, FeedItem};

/// Longest accepted rendered key (dataset keys are names/addresses — a
/// DNS name caps at 253 octets; 4 KiB leaves room for future key kinds).
const MAX_KEY_BYTES: usize = 4096;
/// Longest accepted dataset name.
const MAX_DATASET_BYTES: usize = 256;
/// Widest accepted histogram layout.
const MAX_HIST_BUCKETS: usize = 4096;
/// Most per-feature sub-sketches of one kind (HLLs, top-value tables,
/// histograms) a record may carry.
const MAX_SKETCHES: usize = 64;
/// Widest accepted admission-gate bloom filter (bits). The pipeline
/// sizes gates at `4·k` expected items, so even a million-key tracker
/// stays orders of magnitude under this.
const MAX_GATE_BITS: u64 = 1 << 27;

fn write_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn write_string(s: &str, out: &mut Vec<u8>) {
    write_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(
    r: &mut ByteReader<'_>,
    max: usize,
    what: &'static str,
) -> Result<String, FeedError> {
    let len = r.count(1, what)?;
    if len > max {
        return Err(FeedError::Invalid(what));
    }
    let bytes = r.bytes(len, what)?;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => Err(FeedError::Invalid(what)),
    }
}

/// One HyperLogLog's serialized registers.
#[derive(Debug, Clone, PartialEq)]
pub struct HllState {
    /// Precision (4..=16): the sketch has `2^p` one-byte registers.
    pub p: u8,
    /// The register array, length `2^p`, each value `≤ 65 - p`.
    pub registers: Vec<u8>,
}

impl HllState {
    /// Capture a live sketch.
    pub fn from_sketch(h: &sketches::HyperLogLog) -> HllState {
        HllState {
            p: h.precision(),
            registers: h.registers().to_vec(),
        }
    }

    /// Rebuild a live sketch (state is pre-validated by `decode`).
    pub fn to_sketch(&self) -> sketches::HyperLogLog {
        sketches::HyperLogLog::from_registers(self.p, self.registers.clone())
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.p);
        out.extend_from_slice(&self.registers);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<HllState, FeedError> {
        let p = r.u8("hll precision")?;
        if !(4..=16).contains(&p) {
            return Err(FeedError::Invalid("hll precision out of range"));
        }
        let registers = r.bytes(1usize << p, "hll registers")?.to_vec();
        if registers.iter().any(|&reg| reg > 65 - p) {
            return Err(FeedError::Invalid("hll register exceeds rank range"));
        }
        Ok(HllState { p, registers })
    }
}

/// One exact bounded value-count table ([`sketches::TopValues`]).
///
/// A merged state may carry more than `capacity` slots — merging never
/// truncates (truncation would break associativity); the capacity is
/// re-applied when the state is rendered back into a live tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct TopValuesState {
    /// Slot capacity of the originating tracker.
    pub capacity: u64,
    /// Total occurrences recorded, evicted ones included.
    pub observed: u64,
    /// `(value, count)` pairs with distinct values.
    pub slots: Vec<(u64, u64)>,
}

impl TopValuesState {
    /// Capture a live tracker.
    pub fn from_sketch(t: &sketches::TopValues) -> TopValuesState {
        TopValuesState {
            capacity: t.capacity() as u64,
            observed: t.observed(),
            slots: t.slots().to_vec(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.capacity, out);
        write_varint(self.observed, out);
        write_varint(self.slots.len() as u64, out);
        for &(v, c) in &self.slots {
            write_varint(v, out);
            write_varint(c, out);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<TopValuesState, FeedError> {
        let capacity = r.varint()?;
        if capacity == 0 {
            return Err(FeedError::Invalid("topvalues capacity zero"));
        }
        let observed = r.varint()?;
        let n = r.count(2, "topvalues slots")?;
        let mut slots = Vec::with_capacity(n);
        let mut sum = 0u64;
        for _ in 0..n {
            let v = r.varint()?;
            let c = r.varint()?;
            sum = sum
                .checked_add(c)
                .ok_or(FeedError::Invalid("topvalues count overflow"))?;
            slots.push((v, c));
        }
        if sum > observed {
            return Err(FeedError::Invalid("topvalues counts exceed observed"));
        }
        let mut values: Vec<u64> = slots.iter().map(|&(v, _)| v).collect();
        values.sort_unstable();
        if values.windows(2).any(|w| w[0] == w[1]) {
            return Err(FeedError::Invalid("duplicate topvalues value"));
        }
        Ok(TopValuesState {
            capacity,
            observed,
            slots,
        })
    }
}

/// One log-bucketed histogram's counts plus its layout and observed range.
///
/// The running sum behind `LogHistogram::mean` is deliberately *not* on
/// the wire: floating-point summation is not associative, and carrying it
/// would break the merge-associativity law this tier is built on. The
/// rendered view only needs quantiles, which are exact from the counts
/// and the (min/max-mergeable) observed range.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramState {
    /// Layout: inclusive lower edge of bucket 0.
    pub min: f64,
    /// Layout: per-bucket growth factor.
    pub base: f64,
    /// Per-bucket counts (the layout length is `counts.len()`).
    pub counts: Vec<u64>,
    /// Smallest recorded value; `+∞` when empty (canonical).
    pub observed_min: f64,
    /// Largest recorded value; `-∞` when empty (canonical).
    pub observed_max: f64,
}

impl HistogramState {
    /// Capture a live histogram.
    pub fn from_sketch(h: &sketches::LogHistogram) -> HistogramState {
        let b = h.buckets();
        HistogramState {
            min: b.min(),
            base: b.base(),
            counts: h.counts().to_vec(),
            observed_min: h.min_value().unwrap_or(f64::INFINITY),
            observed_max: h.max_value().unwrap_or(f64::NEG_INFINITY),
        }
    }

    /// Rebuild a live histogram (quantiles exact, mean approximated —
    /// see [`sketches::LogHistogram::from_parts`]).
    pub fn to_sketch(&self) -> sketches::LogHistogram {
        let buckets = sketches::LogBuckets::from_parts(self.min, self.base, self.counts.len());
        sketches::LogHistogram::from_parts(
            buckets,
            self.counts.clone(),
            self.observed_min,
            self.observed_max,
        )
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        write_f64(self.min, out);
        write_f64(self.base, out);
        write_varint(self.counts.len() as u64, out);
        for &c in &self.counts {
            write_varint(c, out);
        }
        write_f64(self.observed_min, out);
        write_f64(self.observed_max, out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<HistogramState, FeedError> {
        let min = r.f64("histogram min")?;
        if !(min.is_finite() && min > 0.0) {
            return Err(FeedError::Invalid("histogram layout min"));
        }
        let base = r.f64("histogram base")?;
        if !(base.is_finite() && base > 1.0) {
            return Err(FeedError::Invalid("histogram layout base"));
        }
        let n = r.count(1, "histogram buckets")?;
        if n == 0 || n > MAX_HIST_BUCKETS {
            return Err(FeedError::Invalid("histogram bucket count"));
        }
        let mut counts = Vec::with_capacity(n);
        let mut total = 0u64;
        for _ in 0..n {
            let c = r.varint()?;
            total = total
                .checked_add(c)
                .ok_or(FeedError::Invalid("histogram total overflow"))?;
            counts.push(c);
        }
        let observed_min = r.f64("histogram observed min")?;
        let observed_max = r.f64("histogram observed max")?;
        if total == 0 {
            if observed_min != f64::INFINITY || observed_max != f64::NEG_INFINITY {
                return Err(FeedError::Invalid("empty histogram bounds"));
            }
        } else if !(observed_min.is_finite()
            && observed_max.is_finite()
            && observed_min <= observed_max)
        {
            return Err(FeedError::Invalid("histogram bounds"));
        }
        Ok(HistogramState {
            min,
            base,
            counts,
            observed_min,
            observed_max,
        })
    }
}

/// One feature accumulator's serialized internals.
///
/// The layout is positional and owned by the producer (`core` maps its
/// `FeatureSet` fields to fixed indices); this crate only guarantees the
/// merge semantics per group: `adds` sum, `maxes` take the maximum,
/// `hlls` merge register-wise, `sources` union (a strictly ascending set
/// of contributor ids), `tops` union-sum, `hists` add counts and widen
/// the observed range. Two states merge only if their shapes agree.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureState {
    /// Additive counters (hit/response-class counts, integer sums).
    pub adds: Vec<u64>,
    /// Max-merged watermarks.
    pub maxes: Vec<u64>,
    /// Cardinality sketches.
    pub hlls: Vec<HllState>,
    /// Capacity of the contributor set in the originating accumulator.
    pub source_cap: u64,
    /// Distinct contributor ids, strictly ascending. A merged state may
    /// exceed `source_cap`; the cap is re-applied on render.
    pub sources: Vec<u16>,
    /// Exact bounded value-count tables.
    pub tops: Vec<TopValuesState>,
    /// Log-bucketed histograms.
    pub hists: Vec<HistogramState>,
}

impl FeatureState {
    /// Encode into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.adds.len() as u64, out);
        for &v in &self.adds {
            write_varint(v, out);
        }
        write_varint(self.maxes.len() as u64, out);
        for &v in &self.maxes {
            write_varint(v, out);
        }
        write_varint(self.hlls.len() as u64, out);
        for h in &self.hlls {
            h.encode(out);
        }
        write_varint(self.source_cap, out);
        write_varint(self.sources.len() as u64, out);
        for &s in &self.sources {
            out.extend_from_slice(&s.to_le_bytes());
        }
        write_varint(self.tops.len() as u64, out);
        for t in &self.tops {
            t.encode(out);
        }
        write_varint(self.hists.len() as u64, out);
        for h in &self.hists {
            h.encode(out);
        }
    }

    /// Decode and validate one feature state.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<FeatureState, FeedError> {
        let n_adds = r.count(1, "feature counters")?;
        if n_adds > MAX_SKETCHES {
            return Err(FeedError::Invalid("too many feature counters"));
        }
        let mut adds = Vec::with_capacity(n_adds);
        for _ in 0..n_adds {
            adds.push(r.varint()?);
        }
        let n_maxes = r.count(1, "feature maxes")?;
        if n_maxes > MAX_SKETCHES {
            return Err(FeedError::Invalid("too many feature maxes"));
        }
        let mut maxes = Vec::with_capacity(n_maxes);
        for _ in 0..n_maxes {
            maxes.push(r.varint()?);
        }
        let n_hlls = r.count(17, "feature hlls")?;
        if n_hlls > MAX_SKETCHES {
            return Err(FeedError::Invalid("too many feature hlls"));
        }
        let mut hlls = Vec::with_capacity(n_hlls);
        for _ in 0..n_hlls {
            hlls.push(HllState::decode(r)?);
        }
        let source_cap = r.varint()?;
        if source_cap == 0 {
            return Err(FeedError::Invalid("feature source cap zero"));
        }
        let n_sources = r.count(2, "feature sources")?;
        let mut sources = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            sources.push(r.u16("feature source")?);
        }
        if sources.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FeedError::Invalid("feature sources not ascending"));
        }
        let n_tops = r.count(3, "feature tops")?;
        if n_tops > MAX_SKETCHES {
            return Err(FeedError::Invalid("too many feature tops"));
        }
        let mut tops = Vec::with_capacity(n_tops);
        for _ in 0..n_tops {
            tops.push(TopValuesState::decode(r)?);
        }
        let n_hists = r.count(18, "feature hists")?;
        if n_hists > MAX_SKETCHES {
            return Err(FeedError::Invalid("too many feature hists"));
        }
        let mut hists = Vec::with_capacity(n_hists);
        for _ in 0..n_hists {
            hists.push(HistogramState::decode(r)?);
        }
        Ok(FeatureState {
            adds,
            maxes,
            hlls,
            source_cap,
            sources,
            tops,
            hists,
        })
    }
}

/// One tracked key inside a [`TopKState`]: the Space-Saving counter pair
/// plus the key's feature accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKEntry {
    /// Rendered key (the canonical cross-collector identity).
    pub key: String,
    /// Space-Saving count: an upper bound on the key's true count.
    pub count: u64,
    /// Space-Saving error: `count - error` lower-bounds the true count.
    pub error: u64,
    /// Virtual time the key (re-)entered the tracker — min-merged, and
    /// used by the residency rule when rendering a window.
    pub inserted_at: f64,
    /// The key's per-window feature accumulator state.
    pub features: FeatureState,
}

impl TopKEntry {
    /// Encode into `out` (public so the pub/sub delta codec can frame
    /// individual entries without re-stating the layout).
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_string(&self.key, out);
        write_varint(self.count, out);
        write_varint(self.error, out);
        write_f64(self.inserted_at, out);
        self.features.encode(out);
    }

    /// Decode and validate one entry.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TopKEntry, FeedError> {
        let key = read_string(r, MAX_KEY_BYTES, "topk key")?;
        let count = r.varint()?;
        let error = r.varint()?;
        if error > count {
            return Err(FeedError::Invalid("entry error exceeds count"));
        }
        let inserted_at = r.f64("entry inserted_at")?;
        if !(inserted_at.is_finite() && inserted_at >= 0.0) {
            return Err(FeedError::Invalid("entry inserted_at out of range"));
        }
        let features = FeatureState::decode(r)?;
        Ok(TopKEntry {
            key,
            count,
            error,
            inserted_at,
            features,
        })
    }
}

/// The Space-Saving admission-gate bloom filter, serialized bit-exact.
///
/// The gate decides whether an unmonitored key may displace a monitored
/// one, so it is live tracker state: a resumed `--store DIR` run that
/// rebuilt the gate empty would admit keys the original would have
/// filtered, and its exports would diverge from an uncrashed run's.
/// Hashing is deterministic (fixed xxh64 seeds), so carrying the raw
/// words reproduces every future gate answer exactly. Merged states
/// (cross-collector) drop the gate — a merge output is an aggregate,
/// not a resumable live tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct GateState {
    /// Bit-array width of the originating filter.
    pub num_bits: u64,
    /// Hash function count.
    pub num_hashes: u32,
    /// Items inserted since the last gate rotation.
    pub inserted: u64,
    /// The bit array, one little-endian word per 64 bits; exactly
    /// `ceil(num_bits / 64)` words, unused tail bits zero.
    pub words: Vec<u64>,
}

impl GateState {
    /// Capture a live filter.
    pub fn from_filter(f: &sketches::BloomFilter) -> GateState {
        GateState {
            num_bits: f.num_bits() as u64,
            num_hashes: f.num_hashes(),
            inserted: f.inserted(),
            words: f.words().to_vec(),
        }
    }

    /// Rebuild a live filter (state is pre-validated by `decode`).
    pub fn to_filter(&self) -> Option<sketches::BloomFilter> {
        sketches::BloomFilter::from_parts(
            self.words.clone(),
            self.num_bits as usize,
            self.num_hashes,
            self.inserted,
        )
    }

    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.num_bits, out);
        write_varint(self.num_hashes as u64, out);
        write_varint(self.inserted, out);
        for &w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<GateState, FeedError> {
        let num_bits = r.varint()?;
        if num_bits == 0 || num_bits > MAX_GATE_BITS {
            return Err(FeedError::Invalid("gate bit count out of range"));
        }
        let num_hashes = r.varint()?;
        if num_hashes == 0 || num_hashes > 64 {
            return Err(FeedError::Invalid("gate hash count out of range"));
        }
        let inserted = r.varint()?;
        let n_words = (num_bits as usize).div_ceil(64);
        let bytes = r.bytes(n_words * 8, "gate words")?;
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        // A real filter never sets a bit at index ≥ num_bits; a set tail
        // bit is corruption, and rejecting it keeps decode canonical.
        let tail = num_bits % 64;
        if tail != 0 {
            let last = words.last().copied().unwrap_or(0);
            if last >> tail != 0 {
                return Err(FeedError::Invalid("gate tail bits set"));
            }
        }
        Ok(GateState {
            num_bits,
            num_hashes: num_hashes as u32,
            inserted,
            words,
        })
    }
}

/// One dataset's Space-Saving tracker state for one window, possibly one
/// chunk of it (large trackers are split so every frame stays under the
/// transport's frame cap; chunks of one source reassemble losslessly).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKState {
    /// Dataset name (`srvip`, `esld`, …).
    pub dataset: String,
    /// Tracker capacity `k`.
    pub capacity: u64,
    /// Total observations folded into the tracker.
    pub observed: u64,
    /// Tracker `min_count`: upper bound on the true count of any key
    /// *absent* from the tracker. Merges add (each input bounds its own
    /// unseen keys independently).
    pub min_count: u64,
    /// Stated error bound: `observed / capacity` at export; merges add,
    /// so a merged state's bound is the sum of its inputs' bounds — the
    /// law the chaos oracle asserts.
    pub error_bound: u64,
    /// Keys evicted from the tracker so far.
    pub evictions: u64,
    /// Transactions folded into tracked keys this window.
    pub kept: u64,
    /// Transactions dropped by eviction churn this window.
    pub dropped: u64,
    /// Transactions skipped by the admission gate this window.
    pub filtered: u64,
    /// Chunk index within `chunks` (0-based).
    pub chunk: u32,
    /// Total chunks this source window was split into (≥ 1).
    pub chunks: u32,
    /// Tracked keys. Distinct; merge output is key-ascending.
    pub entries: Vec<TopKEntry>,
    /// Admission-gate bloom state, present on gated tracker exports so a
    /// `--store DIR` resume is exact even for saturated trackers. `None`
    /// for ungated trackers and for merge outputs. Chunks of one source
    /// all repeat the same gate (it is header state, like the counters).
    pub gate: Option<GateState>,
}

impl TopKState {
    /// Largest per-entry Space-Saving error in this state — for any
    /// well-formed export or merge it stays `≤ error_bound`.
    pub fn max_entry_error(&self) -> u64 {
        self.entries.iter().map(|e| e.error).max().unwrap_or(0)
    }

    /// Split into chunks of at most `max_entries` keys each. Every chunk
    /// repeats the full header (the counters describe the *source
    /// tracker*, not the chunk) so any subset of surviving chunks still
    /// merges with correct bounds.
    pub fn into_chunks(mut self, max_entries: usize) -> Vec<TopKState> {
        let max = max_entries.max(1);
        if self.entries.len() <= max {
            self.chunk = 0;
            self.chunks = 1;
            return vec![self];
        }
        let n_chunks = self.entries.len().div_ceil(max) as u32;
        let mut chunks = Vec::with_capacity(n_chunks as usize);
        let mut rest = std::mem::take(&mut self.entries);
        for i in 0..n_chunks {
            let tail = rest.split_off(rest.len().min(max));
            let mut part = self.clone();
            part.chunk = i;
            part.chunks = n_chunks;
            part.entries = rest;
            chunks.push(part);
            rest = tail;
        }
        chunks
    }

    /// Encode into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_string(&self.dataset, out);
        write_varint(self.capacity, out);
        write_varint(self.observed, out);
        write_varint(self.min_count, out);
        write_varint(self.error_bound, out);
        write_varint(self.evictions, out);
        write_varint(self.kept, out);
        write_varint(self.dropped, out);
        write_varint(self.filtered, out);
        write_varint(self.chunk as u64, out);
        write_varint(self.chunks as u64, out);
        write_varint(self.entries.len() as u64, out);
        for e in &self.entries {
            e.encode(out);
        }
        match &self.gate {
            None => out.push(0),
            Some(g) => {
                out.push(1);
                g.encode(out);
            }
        }
    }

    /// Decode and validate one tracker state.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TopKState, FeedError> {
        let dataset = read_string(r, MAX_DATASET_BYTES, "dataset name")?;
        let capacity = r.varint()?;
        if capacity == 0 {
            return Err(FeedError::Invalid("topk capacity zero"));
        }
        let observed = r.varint()?;
        let min_count = r.varint()?;
        let error_bound = r.varint()?;
        if min_count > error_bound {
            return Err(FeedError::Invalid("min_count exceeds error bound"));
        }
        let evictions = r.varint()?;
        let kept = r.varint()?;
        let dropped = r.varint()?;
        let filtered = r.varint()?;
        let chunk = r.varint()?;
        let chunks = r.varint()?;
        if chunks == 0 || chunks > u32::MAX as u64 || chunk >= chunks {
            return Err(FeedError::Invalid("chunk index out of range"));
        }
        let n = r.count(16, "topk entries")?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let e = TopKEntry::decode(r)?;
            if e.count > observed {
                return Err(FeedError::Invalid("entry count exceeds observed"));
            }
            entries.push(e);
        }
        let mut keys: Vec<&str> = entries.iter().map(|e| e.key.as_str()).collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(FeedError::Invalid("duplicate topk key"));
        }
        let gate = match r.u8("gate presence")? {
            0 => None,
            1 => Some(GateState::decode(r)?),
            _ => return Err(FeedError::Invalid("gate presence flag")),
        };
        Ok(TopKState {
            dataset,
            capacity,
            observed,
            min_count,
            error_bound,
            evictions,
            kept,
            dropped,
            filtered,
            chunk: chunk as u32,
            chunks: chunks as u32,
            entries,
            gate,
        })
    }
}

/// The federation feed item: one upstream collector's tracker state for
/// one dataset in one window (or one chunk of it). Streams of these ride
/// the existing sensor→collector transport unchanged — the aggregation
/// tier inherits its framing, gap/dup ledgers, reconnect backoff and
/// time-ordered merge for free.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowState {
    /// Originating collector id (doubles as the feed sensor id).
    pub upstream: u64,
    /// Window start, seconds of virtual time, aligned to a multiple of
    /// `length` so windows line up across collectors.
    pub start: f64,
    /// Window length, seconds.
    pub length: f64,
    /// The serialized tracker state.
    pub topk: TopKState,
}

impl FeedItem for WindowState {
    const ITEM_VERSION: u8 = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.upstream, out);
        write_f64(self.start, out);
        write_f64(self.length, out);
        self.topk.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<WindowState, FeedError> {
        let upstream = r.varint()?;
        let start = r.f64("window start")?;
        if !(start.is_finite() && start >= 0.0) {
            return Err(FeedError::Invalid("window start out of range"));
        }
        let length = r.f64("window length")?;
        if !(length.is_finite() && length > 0.0) {
            return Err(FeedError::Invalid("window length out of range"));
        }
        let topk = TopKState::decode(r)?;
        Ok(WindowState {
            upstream,
            start,
            length,
            topk,
        })
    }

    fn order_time(&self) -> f64 {
        self.start
    }
}

/// Typed error for merge/aggregation structure conflicts (decode errors
/// stay [`FeedError`]; these arise when two individually valid states
/// cannot be combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// The two states describe different datasets.
    DatasetMismatch,
    /// Sketch shapes disagree (counter counts, HLL precision, top-value
    /// capacity, histogram layout, source cap).
    LayoutMismatch(&'static str),
    /// Chunk reassembly conflict (duplicate index, header disagreement,
    /// overlapping keys, or merging an unassembled chunk).
    ChunkMismatch(&'static str),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::DatasetMismatch => write!(f, "dataset mismatch"),
            StateError::LayoutMismatch(what) => write!(f, "sketch layout mismatch: {what}"),
            StateError::ChunkMismatch(what) => write!(f, "chunk conflict: {what}"),
        }
    }
}

impl std::error::Error for StateError {}
