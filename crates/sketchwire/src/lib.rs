//! Serialized sketch state + the federated aggregation tier.
//!
//! The paper's Observatory terminates at one collector. Production scale
//! needs collectors that merge *upward*: each collector exports its
//! per-window sketch state (Space-Saving counters with error terms, HLL
//! registers, feature accumulators) instead of rendered rows, and an
//! aggregation tier merges N such streams into one global Top-k/feature
//! view with a *stated* error bound.
//!
//! This crate provides the three layers of that tier:
//!
//! * [`state`] — plain-data mirrors of every sketch with a strict,
//!   never-panicking codec; [`WindowState`] implements `feed::FeedItem`,
//!   so state streams ride the existing sensor→collector transport
//!   (framing, CRC, gap/dup ledgers, reconnect backoff) unchanged.
//! * [`record`] — the versioned, CRC-framed, length-prefixed at-rest
//!   record format (files today, historical-store compaction next).
//! * [`merge`] + [`aggregator`] — associative/commutative merge laws and
//!   the sans-io [`AggregatorCore`] that aligns N streams on watermark
//!   frontiers and emits [`GlobalWindow`]s whose error bound is the sum
//!   of the per-input Space-Saving bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod merge;
pub mod record;
pub mod state;

pub use aggregator::{
    AggregatorConfig, AggregatorCore, AggregatorReport, GlobalWindow, UpstreamStats, WindowLineage,
};
pub use merge::{merge_chunks, merge_features, merge_topk};
pub use record::{read_all, write_record, RecordReader, MAX_RECORD, RECORD_MAGIC, RECORD_VERSION};
pub use state::{
    FeatureState, GateState, HistogramState, HllState, StateError, TopKEntry, TopKState,
    TopValuesState, WindowState,
};

#[cfg(test)]
mod tests {
    use super::*;
    use feed::{ByteReader, FeedItem};

    fn tiny_features(seed: u64) -> FeatureState {
        let mut hll = sketches::HyperLogLog::new(4);
        hll.insert(&seed.to_le_bytes());
        FeatureState {
            adds: vec![seed % 7 + 1, seed % 3],
            maxes: vec![seed % 5],
            hlls: vec![HllState::from_sketch(&hll)],
            source_cap: 8,
            sources: vec![(seed % 100) as u16],
            tops: vec![TopValuesState {
                capacity: 4,
                observed: 3,
                slots: vec![(seed % 10, 2), (seed % 10 + 1, 1)],
            }],
            hists: vec![HistogramState::from_sketch(&{
                let mut h = sketches::LogHistogram::new(1.0, 100.0, 5);
                h.record(seed as f64 % 90.0 + 1.0);
                h
            })],
        }
    }

    fn tiny_state(upstream: u64, window: f64, dataset: &str, keys: &[&str]) -> WindowState {
        let entries = keys
            .iter()
            .enumerate()
            .map(|(i, k)| TopKEntry {
                key: k.to_string(),
                count: 10 + i as u64,
                error: i as u64,
                inserted_at: 0.0,
                features: tiny_features(upstream * 31 + i as u64),
            })
            .collect();
        WindowState {
            upstream,
            start: window,
            length: 60.0,
            topk: TopKState {
                dataset: dataset.to_string(),
                capacity: 16,
                observed: 40,
                min_count: 1,
                error_bound: 2,
                evictions: 1,
                kept: 30,
                dropped: 5,
                filtered: 5,
                chunk: 0,
                chunks: 1,
                entries,
                gate: None,
            },
        }
    }

    #[test]
    fn window_state_roundtrip() {
        let ws = tiny_state(3, 120.0, "esld", &["a.example", "b.example"]);
        let mut buf = Vec::new();
        ws.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        let back = WindowState::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(back, ws);
    }

    #[test]
    fn record_roundtrip_and_corruption() {
        let ws = tiny_state(1, 0.0, "srvip", &["198.51.100.7"]);
        let mut buf = Vec::new();
        write_record(&ws, &mut buf);
        write_record(&ws, &mut buf);
        let all = read_all(&buf).expect("read");
        assert_eq!(all, vec![ws.clone(), ws]);

        // Any single flipped byte fails with a typed error, never panics.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xff;
            assert!(read_all(&bad).is_err(), "flip at {i} went undetected");
        }
        // Every mid-record truncation is detected; a cut at a record
        // boundary is simply a shorter valid stream.
        let rec_len = buf.len() / 2;
        for n in 0..buf.len() {
            if n % rec_len == 0 {
                assert_eq!(
                    read_all(&buf[..n]).expect("boundary cut").len(),
                    n / rec_len
                );
            } else {
                assert!(read_all(&buf[..n]).is_err(), "cut at {n} went undetected");
            }
        }
    }

    #[test]
    fn chunk_split_reassembles() {
        let ws = tiny_state(1, 0.0, "esld", &["a", "b", "c", "d", "e"]);
        let chunks = ws.topk.clone().into_chunks(2);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.chunks == 3));
        let back = merge_chunks(&chunks).expect("reassemble");
        let mut want = ws.topk;
        want.entries.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(back, want);

        // Duplicate chunks refuse to merge.
        let dup = vec![chunks[0].clone(), chunks[0].clone()];
        assert_eq!(
            merge_chunks(&dup),
            Err(StateError::ChunkMismatch("duplicate chunk"))
        );
    }

    #[test]
    fn absent_key_gains_min_count_on_both_bounds() {
        let a = tiny_state(1, 0.0, "esld", &["both", "only-a"]).topk;
        let b = tiny_state(2, 0.0, "esld", &["both", "only-b"]).topk;
        let m = merge_topk(&a, &b).expect("merge");
        assert_eq!(m.min_count, a.min_count + b.min_count);
        assert_eq!(m.error_bound, a.error_bound + b.error_bound);
        let only_a = m.entries.iter().find(|e| e.key == "only-a").unwrap();
        let src = a.entries.iter().find(|e| e.key == "only-a").unwrap();
        assert_eq!(only_a.count, src.count + b.min_count);
        assert_eq!(only_a.error, src.error + b.min_count);
        let both = m.entries.iter().find(|e| e.key == "both").unwrap();
        let (sa, sb) = (
            a.entries.iter().find(|e| e.key == "both").unwrap(),
            b.entries.iter().find(|e| e.key == "both").unwrap(),
        );
        assert_eq!(both.count, sa.count + sb.count);
        assert_eq!(both.error, sa.error + sb.error);
        // Stated-bound law: no merged entry's error exceeds the bound.
        assert!(m.max_entry_error() <= m.error_bound);
    }

    #[test]
    fn aggregator_seals_on_frontiers() {
        let cfg = AggregatorConfig::new(2);
        let mut core = AggregatorCore::new(&cfg);
        let mut out = Vec::new();
        core.on_state(tiny_state(1, 0.0, "esld", &["a"])).unwrap();
        core.poll(&mut out);
        assert!(out.is_empty(), "one upstream missing, nothing seals");
        core.on_state(tiny_state(2, 0.0, "esld", &["b"])).unwrap();
        core.poll(&mut out);
        assert!(out.is_empty(), "frontiers still at window end");
        core.on_state(tiny_state(1, 60.0, "esld", &["a"])).unwrap();
        core.on_state(tiny_state(2, 60.0, "esld", &["b"])).unwrap();
        core.poll(&mut out);
        assert_eq!(out.len(), 1, "both frontiers passed window 0");
        assert_eq!(out[0].start, 0.0);
        assert_eq!(out[0].upstreams, vec![1, 2]);
        // A record for the sealed window is late, ledgered, dropped.
        core.on_state(tiny_state(2, 0.0, "qtype", &["c"])).unwrap();
        let report = core.finish(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(report.late_records, 1);
        assert_eq!(report.upstreams[&2].late_records, 1);
        assert_eq!(report.windows_sealed, 2);
    }

    #[test]
    fn aggregator_gap_ledger_counts_missing_windows() {
        let cfg = AggregatorConfig::new(1);
        let mut core = AggregatorCore::new(&cfg);
        core.on_state(tiny_state(1, 0.0, "esld", &["a"])).unwrap();
        // Windows at 60 and 120 never arrive.
        core.on_state(tiny_state(1, 180.0, "esld", &["a"])).unwrap();
        let report = core.report();
        assert_eq!(report.upstreams[&1].windows, 2);
        assert_eq!(report.upstreams[&1].window_gaps, 2);
    }

    #[test]
    fn lineage_and_trace_track_window_provenance() {
        use telemetry::TraceKind;

        let ring = telemetry::TraceRing::new(64);
        let cfg = AggregatorConfig::new(2);
        let mut core = AggregatorCore::new(&cfg).with_trace(ring.clone());
        core.set_now_us(1_000);
        core.on_state(tiny_state(1, 0.0, "esld", &["a"])).unwrap();
        core.set_now_us(2_000);
        core.on_state(tiny_state(2, 0.0, "esld", &["b"])).unwrap();
        core.set_now_us(5_000);
        let mut out = Vec::new();
        core.finish(&mut out);
        assert_eq!(out.len(), 1);

        let lineage = out[0].lineage;
        assert_eq!(lineage.first_seen_us, 1_000);
        assert_eq!(lineage.sealed_us, 5_000);
        assert_eq!(lineage.records, 2);
        assert_eq!(lineage.conflicts, 0);
        assert_eq!(lineage.latency_us(), 4_000);

        let events: Vec<_> = ring.events().into_iter().map(|(_, e)| e).collect();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == TraceKind::Ingest)
                .count(),
            2
        );
        let terminals: Vec<_> = events.iter().filter(|e| e.kind.is_terminal()).collect();
        assert_eq!(terminals.len(), 1, "exactly one terminal per window");
        assert_eq!(terminals[0].kind, TraceKind::Seal);
        assert_eq!(terminals[0].value, 2, "terminal carries the record count");
        assert_eq!(terminals[0].window_us, 0);

        // Lineage is provenance, not payload: equality ignores it.
        let mut other = out[0].clone();
        other.lineage = WindowLineage::default();
        assert_eq!(other, out[0]);
    }

    #[test]
    fn aggregator_metrics_mirror_report() {
        let registry = telemetry::Registry::new();
        let cfg = AggregatorConfig::new(2);
        let mut core = AggregatorCore::with_registry(&cfg, &registry);
        let mut out = Vec::new();
        for w in 0..3 {
            core.on_state(tiny_state(1, w as f64 * 60.0, "esld", &["a", "b"]))
                .unwrap();
            core.on_state(tiny_state(2, w as f64 * 60.0, "esld", &["b", "c"]))
                .unwrap();
            core.poll(&mut out);
        }
        // Duplicate chunk → one reject for upstream 2.
        let dup = tiny_state(2, 120.0, "esld", &["b", "c"]);
        let mut chunked = dup.clone();
        chunked.topk.chunks = 2;
        let mut c2 = chunked.clone();
        c2.topk.chunk = 1;
        c2.topk.entries.clear();
        // Fresh window with declared 2 chunks, then a duplicate of chunk 0.
        let mut fresh = chunked.clone();
        fresh.start = 180.0;
        let mut fresh_dup = fresh.clone();
        fresh_dup.topk.entries.clear();
        core.on_state(fresh).unwrap();
        assert!(core.on_state(fresh_dup).is_err());
        let report = core.finish(&mut out);

        let snapshot = registry.snapshot(0);
        assert_eq!(snapshot.counter("agg_records_total"), report.records);
        assert_eq!(
            snapshot.counter("agg_rejected_records_total"),
            report.rejected
        );
        assert_eq!(
            snapshot.counter("agg_windows_sealed_total"),
            report.windows_sealed
        );
        assert_eq!(
            snapshot.counter("agg_dataset_merges_total"),
            report.dataset_merges
        );
        for (&id, stats) in &report.upstreams {
            let labeled = |base: &str| snapshot.counter(&format!("{base}{{upstream=\"{id}\"}}"));
            assert_eq!(labeled("agg_upstream_records_total"), stats.records);
            assert_eq!(labeled("agg_upstream_rejected_total"), stats.rejected);
            assert_eq!(labeled("agg_upstream_windows_total"), stats.windows);
            assert_eq!(labeled("agg_upstream_window_gaps_total"), stats.window_gaps);
            assert_eq!(
                labeled("agg_upstream_merged_windows_total"),
                stats.merged_windows
            );
        }
    }
}
