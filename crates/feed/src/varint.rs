//! LEB128 unsigned varints: 7 bits per octet, continuation in the high
//! bit, little-endian groups. Small values (counts, sequence numbers,
//! short lengths) cost one byte; the worst case for a `u64` is ten.

/// Append `v` to `out` as an unsigned LEB128 varint.
pub fn write_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `v` in octets (1..=10).
pub fn len_u64(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ByteReader;

    #[test]
    fn roundtrip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u16::MAX as u64,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(v, &mut buf);
            assert_eq!(buf.len(), len_u64(v), "len for {v}");
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn single_byte_values() {
        let mut buf = Vec::new();
        write_u64(5, &mut buf);
        assert_eq!(buf, [5]);
    }
}
