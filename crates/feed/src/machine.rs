//! Sans-io sensor state machine: the [`crate::Sensor`] writer loop as a
//! pure poll/event automaton over an externally owned clock.
//!
//! The threaded [`crate::Sensor`] couples the protocol logic (batching,
//! bounded buffering with drop accounting, HELLO-on-connect, at-least-once
//! retransmission, exponential backoff) to `TcpStream` and wall-clock
//! sleeps. [`SensorMachine`] is the same logic with both dependencies
//! inverted: the caller owns the transport *and* the clock, so the full
//! reconnect/backoff/retransmit behaviour runs deterministically in
//! microseconds of virtual time — the foundation of the `chaos`
//! fault-injection kernel.
//!
//! # Driving contract
//!
//! Call [`SensorMachine::poll`] with the current virtual time; it returns
//! the one thing the transport should do next:
//!
//! * [`SensorOp::Connect`] — attempt a connection, then report the result
//!   via [`SensorMachine::on_connected`] or
//!   [`SensorMachine::on_connect_failed`].
//! * [`SensorOp::Write`] — write the bytes, then report via
//!   [`SensorMachine::on_write_ok`] or [`SensorMachine::on_write_failed`].
//! * [`SensorOp::WaitUntil`] — nothing to do before the given time
//!   (backoff in progress).
//! * [`SensorOp::Idle`] — nothing queued; feed more items or finish.
//! * [`SensorOp::Done`] — the stream is complete (BYE written or the
//!   machine aborted).
//!
//! The machine mirrors the writer thread's semantics exactly: sequence
//! numbers are consumed even by frames dropped at the full buffer, HELLO
//! announces the sequence of the frame about to be (re)sent, a failed
//! write keeps the frame at the front for at-least-once retransmission,
//! and backoff applies only to failed *connects* (a lost established
//! connection retries immediately).

use std::collections::VecDeque;

use telemetry::Registry;

use crate::backoff::{Backoff, BackoffConfig};
use crate::codec::FeedItem;
use crate::metrics::SensorMetrics;
use crate::sensor::{SealedFrame, SensorConfig, SensorEncoder, SensorReport};

/// What the transport should do next for this machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SensorOp {
    /// Attempt a connection to the collector.
    Connect,
    /// Write these bytes on the current connection.
    Write(Vec<u8>),
    /// Nothing to do before this virtual time (microseconds): the machine
    /// is backing off between connect attempts.
    WaitUntil(u64),
    /// Nothing queued; the machine is waiting for more items.
    Idle,
    /// The stream is complete; the connection can be closed.
    Done,
}

/// A batch sealed by [`SensorMachine::push`]/[`SensorMachine::flush`],
/// with its fate at the send buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealEvent {
    /// Frame sequence number (consumed even when dropped).
    pub seq: u64,
    /// Items inside the frame.
    pub items: u64,
    /// True when the full buffer dropped the frame (accounted, never
    /// written).
    pub dropped: bool,
}

/// What a successful write delivered, reported by
/// [`SensorMachine::on_write_ok`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wrote {
    /// The connection's HELLO preamble.
    Hello,
    /// A data batch.
    Batch {
        /// Frame sequence number.
        seq: u64,
        /// Items inside the frame.
        items: u64,
    },
    /// The final BYE frame.
    Bye,
}

#[derive(Debug)]
struct Queued {
    frame: SealedFrame,
    bye: bool,
}

/// Sans-io twin of the [`crate::Sensor`] writer loop.
#[derive(Debug)]
pub struct SensorMachine<T> {
    encoder: SensorEncoder<T>,
    queue: VecDeque<Queued>,
    buffer_frames: usize,
    backoff: Backoff,
    backoff_cfg: BackoffConfig,
    connected: bool,
    hello_pending: bool,
    retry_at: Option<u64>,
    closing: bool,
    aborted: bool,
    connects: u64,
    sent_frames: u64,
    sent_items: u64,
    dropped_frames: u64,
    dropped_items: u64,
    metrics: SensorMetrics,
}

impl<T: FeedItem> SensorMachine<T> {
    /// Machine for `config` (the `backoff` seed drives the deterministic
    /// jitter; `first_seq` resumes a restarted incarnation), reporting
    /// telemetry to the global registry.
    pub fn new(config: SensorConfig) -> SensorMachine<T> {
        SensorMachine::with_registry(config, &Registry::global())
    }

    /// Machine for `config`, reporting telemetry to `registry` (the chaos
    /// harness injects a fresh registry per run to keep seeds isolated).
    pub fn with_registry(config: SensorConfig, registry: &Registry) -> SensorMachine<T> {
        let metrics = SensorMetrics::register(registry, config.sensor_id);
        SensorMachine {
            encoder: SensorEncoder::new(config.sensor_id, config.batch_items, config.first_seq),
            queue: VecDeque::new(),
            buffer_frames: config.buffer_frames.max(1),
            backoff: Backoff::new(config.backoff),
            backoff_cfg: config.backoff,
            connected: false,
            hello_pending: false,
            retry_at: None,
            closing: false,
            aborted: false,
            connects: 0,
            sent_frames: 0,
            sent_items: 0,
            dropped_frames: 0,
            dropped_items: 0,
            metrics,
        }
    }

    /// Sensor identity.
    pub fn sensor(&self) -> u64 {
        self.encoder.sensor()
    }

    /// Frames waiting in the send buffer (including any in-flight front).
    pub fn queued_frames(&self) -> usize {
        self.queue.len()
    }

    /// Queue an item; returns the seal event when the batch fills.
    pub fn push(&mut self, item: T) -> Option<SealEvent> {
        debug_assert!(!self.closing, "push after finish");
        self.metrics.pushed_items.inc(1);
        let sealed = self.encoder.push(item)?;
        Some(self.enqueue(sealed, true, false))
    }

    /// Seal and queue the current partial batch, if any.
    pub fn flush(&mut self) -> Option<SealEvent> {
        let sealed = self.encoder.flush()?;
        Some(self.enqueue(sealed, true, false))
    }

    /// Flush, queue the BYE (which bypasses the drop policy: accounting
    /// must arrive), and mark the stream closing. Returns the final
    /// `next_seq` the BYE carries.
    pub fn finish(&mut self) -> u64 {
        self.flush();
        let bye = self
            .encoder
            .bye_frame(self.dropped_frames, self.dropped_items);
        let next_seq = bye.seq;
        self.enqueue(bye, false, true);
        self.closing = true;
        next_seq
    }

    /// Crash: seal any partial batch (consuming its sequence number, so
    /// the loss stays observable as a gap), discard everything still
    /// queued as dropped, and stop. Returns the final accounting.
    pub fn abort(&mut self) -> SensorReport {
        if let Some(sealed) = self.encoder.flush() {
            self.dropped_frames += 1;
            self.dropped_items += sealed.items;
            self.metrics.dropped_frames.inc(1);
            self.metrics.dropped_items.inc(sealed.items);
        }
        while let Some(q) = self.queue.pop_front() {
            if !q.bye {
                self.dropped_frames += 1;
                self.dropped_items += q.frame.items;
                self.metrics.dropped_frames.inc(1);
                self.metrics.dropped_items.inc(q.frame.items);
            }
        }
        self.metrics.queue_frames.set(0.0);
        self.aborted = true;
        self.closing = true;
        self.report()
    }

    /// What the transport should do next at virtual time `now`
    /// (microseconds).
    pub fn poll(&mut self, now: u64) -> SensorOp {
        if self.aborted {
            return SensorOp::Done;
        }
        if self.queue.is_empty() {
            return if self.closing {
                SensorOp::Done
            } else {
                SensorOp::Idle
            };
        }
        if self.connected {
            if self.hello_pending {
                let seq = self
                    .queue
                    .front()
                    .map(|q| q.frame.seq)
                    .unwrap_or_else(|| self.encoder.next_seq());
                return SensorOp::Write(SensorEncoder::<T>::hello_for(self.sensor(), seq));
            }
            let front = self.queue.front().expect("queue checked non-empty");
            return SensorOp::Write(front.frame.bytes.clone());
        }
        match self.retry_at {
            Some(t) if t > now => SensorOp::WaitUntil(t),
            _ => SensorOp::Connect,
        }
    }

    /// A connect attempt succeeded: reset backoff and schedule the HELLO
    /// announcing the sequence about to be (re)sent.
    pub fn on_connected(&mut self, _now: u64) {
        self.connected = true;
        self.hello_pending = true;
        self.retry_at = None;
        self.backoff.reset();
        self.metrics.backoff_seconds.set(0.0);
    }

    /// A connect attempt failed: back off before the next one.
    pub fn on_connect_failed(&mut self, now: u64) {
        let delay = self.backoff.next_delay();
        self.metrics.connect_failures.inc(1);
        self.metrics.backoff_seconds.set(delay.as_secs_f64());
        self.retry_at = Some(now + delay.as_micros() as u64);
    }

    /// The pending write completed; reports what went out. A completed
    /// batch write pops the frame (delivery is at-least-once from the
    /// collector's point of view: the same frame may arrive again after a
    /// reconnect, deduplicated there by sequence number).
    pub fn on_write_ok(&mut self) -> Wrote {
        if self.hello_pending {
            self.hello_pending = false;
            self.connects += 1;
            self.metrics.connects.inc(1);
            return Wrote::Hello;
        }
        let q = self.queue.pop_front().expect("write_ok without a frame");
        self.sent_frames += 1;
        self.sent_items += q.frame.items;
        self.metrics.sent_frames.inc(1);
        self.metrics.sent_items.inc(q.frame.items);
        self.metrics.queue_frames.set(self.queue.len() as f64);
        if q.bye {
            Wrote::Bye
        } else {
            Wrote::Batch {
                seq: q.frame.seq,
                items: q.frame.items,
            }
        }
    }

    /// The pending write failed: the connection is gone. The frame stays
    /// at the front for retransmission and the machine reconnects
    /// immediately (backoff applies only to failed connects, mirroring
    /// the writer thread).
    pub fn on_write_failed(&mut self, _now: u64) {
        self.connected = false;
        self.hello_pending = false;
        self.retry_at = None;
    }

    /// Backoff parameters this machine runs (for schedule bounds in
    /// tests).
    pub fn backoff_config(&self) -> BackoffConfig {
        // `Backoff` keeps its config private; reconstruct from the same
        // source the machine was built with.
        self.backoff_cfg
    }

    /// Current accounting snapshot (valid at any point).
    pub fn report(&self) -> SensorReport {
        SensorReport {
            sensor: self.encoder.sensor(),
            connects: self.connects,
            sent_frames: self.sent_frames,
            sent_items: self.sent_items,
            dropped_frames: self.dropped_frames,
            dropped_items: self.dropped_items,
            next_seq: self.encoder.next_seq(),
        }
    }

    fn enqueue(&mut self, frame: SealedFrame, droppable: bool, bye: bool) -> SealEvent {
        let event = SealEvent {
            seq: frame.seq,
            items: frame.items,
            dropped: false,
        };
        if droppable && self.queue.len() >= self.buffer_frames {
            // Sequence number stays consumed: the collector observes the
            // loss as a gap.
            self.dropped_frames += 1;
            self.dropped_items += frame.items;
            self.metrics.dropped_frames.inc(1);
            self.metrics.dropped_items.inc(frame.items);
            return SealEvent {
                dropped: true,
                ..event
            };
        }
        self.queue.push_back(Queued { frame, bye });
        self.metrics.queue_frames.set(self.queue.len() as f64);
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameReader};
    use crate::testitem::TestItem;

    fn config() -> SensorConfig {
        let mut c = SensorConfig::new(1);
        c.batch_items = 1;
        c.backoff = BackoffConfig {
            base_ms: 5,
            max_ms: 40,
            seed: 1,
        };
        c
    }

    /// The virtual-time twin of the old wall-clock "retries until the
    /// listener appears" test: connect attempts fail, the machine waits
    /// exactly its backoff schedule, and the first successful connect
    /// delivers HELLO + the frame.
    #[test]
    fn machine_retries_on_backoff_schedule_in_virtual_time() {
        let mut m = SensorMachine::<TestItem>::new(config());
        let mut now = 0u64;
        assert_eq!(m.poll(now), SensorOp::Idle);
        m.push(TestItem::new(42));

        // Replay the schedule independently to know the exact delays.
        let mut reference = Backoff::new(config().backoff);
        for _ in 0..3 {
            assert_eq!(m.poll(now), SensorOp::Connect);
            m.on_connect_failed(now);
            let expect = now + reference.next_delay().as_micros() as u64;
            match m.poll(now) {
                SensorOp::WaitUntil(t) => {
                    assert_eq!(t, expect, "backoff deviates from schedule");
                    now = t;
                }
                op => panic!("expected WaitUntil, got {op:?}"),
            }
        }

        // Listener appears: connect, HELLO for seq 0, then the batch.
        assert_eq!(m.poll(now), SensorOp::Connect);
        m.on_connected(now);
        let hello = match m.poll(now) {
            SensorOp::Write(bytes) => bytes,
            op => panic!("expected HELLO write, got {op:?}"),
        };
        assert_eq!(m.on_write_ok(), Wrote::Hello);
        let batch = match m.poll(now) {
            SensorOp::Write(bytes) => bytes,
            op => panic!("expected batch write, got {op:?}"),
        };
        assert_eq!(m.on_write_ok(), Wrote::Batch { seq: 0, items: 1 });
        assert_eq!(m.poll(now), SensorOp::Idle);

        let mut reader = FrameReader::<TestItem>::new();
        reader.push(&hello);
        reader.push(&batch);
        assert!(matches!(
            reader.next_frame().unwrap(),
            Some(Frame::Hello {
                sensor: 1,
                next_seq: 0,
                ..
            })
        ));
        assert!(matches!(
            reader.next_frame().unwrap(),
            Some(Frame::Batch { seq: 0, .. })
        ));

        let r = m.report();
        assert_eq!((r.connects, r.sent_frames, r.sent_items), (1, 1, 1));
        assert_eq!(r.dropped_frames, 0);
    }

    /// A failed write keeps the frame at the front; the reconnect HELLO
    /// announces that frame's sequence, and the frame goes out again
    /// (at-least-once).
    #[test]
    fn failed_write_retransmits_same_frame_after_immediate_reconnect() {
        let mut m = SensorMachine::<TestItem>::new(config());
        m.push(TestItem::new(1)); // seq 0
        m.push(TestItem::new(2)); // seq 1
        m.on_connected(0);
        assert_eq!(m.on_write_ok(), Wrote::Hello);
        assert_eq!(m.on_write_ok(), Wrote::Batch { seq: 0, items: 1 });
        // seq 1's write dies mid-flight.
        m.on_write_failed(10);
        // Reconnect is immediate (no backoff for lost connections).
        assert_eq!(m.poll(10), SensorOp::Connect);
        m.on_connected(10);
        let hello = match m.poll(10) {
            SensorOp::Write(bytes) => bytes,
            op => panic!("expected HELLO, got {op:?}"),
        };
        let mut reader = FrameReader::<TestItem>::new();
        reader.push(&hello);
        assert!(matches!(
            reader.next_frame().unwrap(),
            Some(Frame::Hello { next_seq: 1, .. })
        ));
        assert_eq!(m.on_write_ok(), Wrote::Hello);
        assert_eq!(m.on_write_ok(), Wrote::Batch { seq: 1, items: 1 });
        assert_eq!(m.report().connects, 2);
    }

    /// The bounded buffer drops (and accounts) whole frames, consuming
    /// their sequence numbers; BYE bypasses the drop policy.
    #[test]
    fn full_buffer_drops_are_accounted_and_bye_bypasses() {
        let mut c = config();
        c.buffer_frames = 2;
        let mut m = SensorMachine::<TestItem>::new(c);
        let mut dropped = 0;
        for v in 0..5u64 {
            let e = m.push(TestItem::new(v)).expect("batch_items=1 seals");
            assert_eq!(e.seq, v);
            if e.dropped {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3);
        let next_seq = m.finish();
        assert_eq!(next_seq, 5, "dropped frames still consume seqs");
        assert_eq!(m.queued_frames(), 3, "2 batches + BYE");
        let r = m.report();
        assert_eq!((r.dropped_frames, r.dropped_items), (3, 3));
    }

    /// Abort seals the partial batch so its loss is gap-visible, and
    /// counts everything still queued as dropped.
    #[test]
    fn abort_accounts_partial_batch_and_queue() {
        let mut c = config();
        c.batch_items = 4;
        let mut m = SensorMachine::<TestItem>::new(c);
        for v in 0..6u64 {
            m.push(TestItem::new(v)); // seals seq 0 (4 items), 2 pending
        }
        let r = m.abort();
        assert_eq!(r.next_seq, 2, "partial batch consumed seq 1");
        assert_eq!(r.dropped_frames, 2);
        assert_eq!(r.dropped_items, 6);
        assert!(matches!(m.poll(0), SensorOp::Done));
    }

    /// Finish drains the queue then reports Done; the BYE carries the
    /// drop tally.
    #[test]
    fn finish_writes_bye_then_done() {
        let mut m = SensorMachine::<TestItem>::new(config());
        m.push(TestItem::new(7));
        m.finish();
        m.on_connected(0);
        assert_eq!(m.on_write_ok(), Wrote::Hello);
        assert_eq!(m.on_write_ok(), Wrote::Batch { seq: 0, items: 1 });
        match m.poll(0) {
            SensorOp::Write(bytes) => {
                let mut reader = FrameReader::<TestItem>::new();
                reader.push(&bytes);
                assert!(matches!(
                    reader.next_frame().unwrap(),
                    Some(Frame::Bye {
                        next_seq: 1,
                        dropped_frames: 0,
                        ..
                    })
                ));
            }
            op => panic!("expected BYE write, got {op:?}"),
        }
        assert_eq!(m.on_write_ok(), Wrote::Bye);
        assert_eq!(m.poll(0), SensorOp::Done);
        assert_eq!(m.report().sent_frames, 2);
    }
}
