//! Telemetry handles for the feed: one struct per side, registered once
//! (cold path) and bumped with lock-free counters on the hot path.
//!
//! The collector side deliberately does *not* bump counters inline in the
//! ledger logic — gap accounting moves in non-monotone ways (a gap can be
//! recorded and later filled). Instead [`CollectorMetrics::sync`]
//! recomputes the monotone aggregate totals from the ledgers after each
//! event and advances the counters by the positive difference against a
//! mirror, so the exported totals are byte-exact mirrors of the
//! [`crate::CollectorReport`] at all times — the invariant the chaos
//! reconciliation tests pin.

use telemetry::{Counter, Gauge, Registry};

/// Sensor-side metric handles, labelled by sensor id.
#[derive(Debug, Clone)]
pub struct SensorMetrics {
    /// Items handed to the encoder (`feed_sensor_pushed_items_total`).
    pub pushed_items: Counter,
    /// Frames written to the wire, HELLOs excluded.
    pub sent_frames: Counter,
    /// Items inside those frames.
    pub sent_items: Counter,
    /// Frames dropped at the full send buffer (aborts included).
    pub dropped_frames: Counter,
    /// Items inside the dropped frames.
    pub dropped_items: Counter,
    /// Successful connections (HELLO delivered).
    pub connects: Counter,
    /// Failed connect attempts (each one starts a backoff wait).
    pub connect_failures: Counter,
    /// Frames currently waiting in the send buffer.
    pub queue_frames: Gauge,
    /// Current reconnect backoff delay, seconds (0 when connected).
    pub backoff_seconds: Gauge,
}

impl SensorMetrics {
    /// Register (or re-attach to) the sensor series for `sensor` in
    /// `registry`.
    pub fn register(registry: &Registry, sensor: u64) -> SensorMetrics {
        let id = sensor.to_string();
        let labels: &[(&str, &str)] = &[("sensor", id.as_str())];
        SensorMetrics {
            pushed_items: registry.counter_with("feed_sensor_pushed_items_total", labels),
            sent_frames: registry.counter_with("feed_sensor_sent_frames_total", labels),
            sent_items: registry.counter_with("feed_sensor_sent_items_total", labels),
            dropped_frames: registry
                .counter_with("feed_sensor_buffer_dropped_frames_total", labels),
            dropped_items: registry.counter_with("feed_sensor_buffer_dropped_items_total", labels),
            connects: registry.counter_with("feed_sensor_connects_total", labels),
            connect_failures: registry.counter_with("feed_sensor_connect_failures_total", labels),
            queue_frames: registry.gauge_with("feed_sensor_queue_frames", labels),
            backoff_seconds: registry.gauge_with("feed_sensor_backoff_seconds", labels),
        }
    }
}

/// The monotone aggregate totals mirrored into counters by
/// [`CollectorMetrics::sync`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorTotals {
    /// Fresh BATCH frames accepted.
    pub frames: u64,
    /// Items those frames carried.
    pub items: u64,
    /// Retransmitted duplicates discarded.
    pub duplicate_frames: u64,
    /// Frames ever recorded missing (`gap_frames + gap_filled`: filling a
    /// gap moves a frame between the two, so the sum only grows).
    pub gap_recorded_frames: u64,
    /// Missing frames that later surfaced and filled their gap.
    pub gap_filled_frames: u64,
    /// CRC failures.
    pub crc_errors: u64,
    /// Payload decode failures after a clean CRC.
    pub decode_errors: u64,
    /// Items discarded behind the merge watermark.
    pub late_items: u64,
    /// HELLO frames seen.
    pub connects: u64,
    /// BYE frames seen.
    pub byes: u64,
    /// Items released into the merged output.
    pub items_merged: u64,
    /// Errors on never-heralded connections.
    pub unattributed_errors: u64,
    /// Data frames rejected for lack of a valid HELLO.
    pub unheralded_frames: u64,
    /// Connections lost before completing a HELLO.
    pub anonymous_disconnects: u64,
}

/// Collector-side metric handles (aggregate over all sensors — the
/// per-sensor split stays in the [`crate::CollectorReport`]).
#[derive(Debug, Clone)]
pub struct CollectorMetrics {
    frames: Counter,
    items: Counter,
    duplicate_frames: Counter,
    gap_recorded_frames: Counter,
    gap_filled_frames: Counter,
    crc_errors: Counter,
    decode_errors: Counter,
    late_items: Counter,
    connects: Counter,
    byes: Counter,
    items_merged: Counter,
    unattributed_errors: Counter,
    unheralded_frames: Counter,
    anonymous_disconnects: Counter,
    /// Every processed event (frame, bad frame, disconnect) — the
    /// collector's liveness heartbeat for the stall watchdog.
    pub events: Counter,
    open_gap_frames: Gauge,
    sensors: Gauge,
    mirror: CollectorTotals,
}

impl CollectorMetrics {
    /// Register (or re-attach to) the collector series in `registry`.
    pub fn register(registry: &Registry) -> CollectorMetrics {
        CollectorMetrics {
            frames: registry.counter("feed_collector_frames_total"),
            items: registry.counter("feed_collector_items_total"),
            duplicate_frames: registry.counter("feed_collector_duplicate_frames_total"),
            gap_recorded_frames: registry.counter("feed_collector_gap_recorded_frames_total"),
            gap_filled_frames: registry.counter("feed_collector_gap_filled_frames_total"),
            crc_errors: registry.counter("feed_collector_crc_errors_total"),
            decode_errors: registry.counter("feed_collector_decode_errors_total"),
            late_items: registry.counter("feed_collector_late_items_total"),
            connects: registry.counter("feed_collector_connects_total"),
            byes: registry.counter("feed_collector_byes_total"),
            items_merged: registry.counter("feed_collector_items_merged_total"),
            unattributed_errors: registry.counter("feed_collector_unattributed_errors_total"),
            unheralded_frames: registry.counter("feed_collector_unheralded_frames_total"),
            anonymous_disconnects: registry.counter("feed_collector_anonymous_disconnects_total"),
            events: registry.counter("feed_collector_events_total"),
            open_gap_frames: registry.gauge("feed_collector_open_gap_frames"),
            sensors: registry.gauge("feed_collector_sensors"),
            mirror: CollectorTotals::default(),
        }
    }

    /// Advance every counter to `totals` (by the positive difference
    /// against the last sync) and set the level gauges. `open_gaps` is
    /// the current number of unfilled missing frames; `sensors` the
    /// number of known ledgers.
    pub fn sync(&mut self, totals: CollectorTotals, open_gaps: u64, sensors: u64) {
        fn advance(counter: &Counter, old: u64, new: u64) {
            if new > old {
                counter.inc(new - old);
            }
        }
        let m = &self.mirror;
        advance(&self.frames, m.frames, totals.frames);
        advance(&self.items, m.items, totals.items);
        advance(
            &self.duplicate_frames,
            m.duplicate_frames,
            totals.duplicate_frames,
        );
        advance(
            &self.gap_recorded_frames,
            m.gap_recorded_frames,
            totals.gap_recorded_frames,
        );
        advance(
            &self.gap_filled_frames,
            m.gap_filled_frames,
            totals.gap_filled_frames,
        );
        advance(&self.crc_errors, m.crc_errors, totals.crc_errors);
        advance(&self.decode_errors, m.decode_errors, totals.decode_errors);
        advance(&self.late_items, m.late_items, totals.late_items);
        advance(&self.connects, m.connects, totals.connects);
        advance(&self.byes, m.byes, totals.byes);
        advance(&self.items_merged, m.items_merged, totals.items_merged);
        advance(
            &self.unattributed_errors,
            m.unattributed_errors,
            totals.unattributed_errors,
        );
        advance(
            &self.unheralded_frames,
            m.unheralded_frames,
            totals.unheralded_frames,
        );
        advance(
            &self.anonymous_disconnects,
            m.anonymous_disconnects,
            totals.anonymous_disconnects,
        );
        self.open_gap_frames.set(open_gaps as f64);
        self.sensors.set(sensors as f64);
        self.mirror = totals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_advances_by_positive_diffs_only() {
        let registry = Registry::new();
        let mut metrics = CollectorMetrics::register(&registry);
        let mut totals = CollectorTotals {
            frames: 3,
            items: 30,
            ..CollectorTotals::default()
        };
        metrics.sync(totals, 2, 1);
        totals.frames = 5;
        totals.items = 50;
        metrics.sync(totals, 0, 1);
        let snap = registry.snapshot(0);
        assert_eq!(snap.counter("feed_collector_frames_total"), 5);
        assert_eq!(snap.counter("feed_collector_items_total"), 50);
        assert_eq!(snap.gauge("feed_collector_open_gap_frames"), 0.0);
        // Re-syncing identical totals is a no-op.
        metrics.sync(totals, 0, 1);
        assert_eq!(
            registry.snapshot(0).counter("feed_collector_frames_total"),
            5
        );
    }

    #[test]
    fn sensor_metrics_are_labelled_per_sensor() {
        let registry = Registry::new();
        let a = SensorMetrics::register(&registry, 1);
        let b = SensorMetrics::register(&registry, 2);
        a.sent_items.inc(5);
        b.sent_items.inc(7);
        let snap = registry.snapshot(0);
        assert_eq!(
            snap.counter("feed_sensor_sent_items_total{sensor=\"1\"}"),
            5
        );
        assert_eq!(
            snap.counter("feed_sensor_sent_items_total{sensor=\"2\"}"),
            7
        );
        assert_eq!(snap.counter_sum("feed_sensor_sent_items_total{"), 12);
    }
}
