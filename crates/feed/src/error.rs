//! Error type for feed framing and item decoding.

use std::fmt;

/// Errors produced while decoding feed frames and items.
///
/// Transport-level I/O errors stay with `std::io`; this type covers only
/// the byte-level protocol, so the codec is fully testable without
/// sockets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// The stream-framing layer failed (oversized frame prefix).
    Framing(dnswire::WireError),
    /// A frame payload ended before a complete field could be read.
    Truncated(&'static str),
    /// The frame checksum did not match its content.
    Crc {
        /// CRC carried in the frame trailer.
        expected: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// A HELLO frame did not start with the protocol magic.
    BadMagic([u8; 4]),
    /// The peer speaks an incompatible protocol revision.
    BadProtocolVersion {
        /// Version in the HELLO frame.
        got: u8,
        /// Version this build implements.
        want: u8,
    },
    /// The peer encodes items with an incompatible codec revision.
    BadItemVersion {
        /// Item-codec version in the HELLO frame.
        got: u8,
        /// Version this build implements.
        want: u8,
    },
    /// Unknown frame type octet.
    BadFrameType(u8),
    /// A decoded field was structurally invalid (bad enum code, malformed
    /// name, non-UTF-8 string, …).
    Invalid(&'static str),
    /// A frame decoded cleanly but left unconsumed bytes before the CRC.
    TrailingBytes(usize),
    /// A varint ran past 10 octets (would overflow 64 bits).
    VarintOverflow,
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Framing(e) => write!(f, "stream framing: {e}"),
            FeedError::Truncated(what) => write!(f, "frame truncated while reading {what}"),
            FeedError::Crc { expected, computed } => {
                write!(
                    f,
                    "crc mismatch: frame says {expected:#010x}, computed {computed:#010x}"
                )
            }
            FeedError::BadMagic(m) => write!(f, "bad hello magic {m:02x?}"),
            FeedError::BadProtocolVersion { got, want } => {
                write!(f, "protocol version {got} (this build speaks {want})")
            }
            FeedError::BadItemVersion { got, want } => {
                write!(f, "item codec version {got} (this build speaks {want})")
            }
            FeedError::BadFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            FeedError::Invalid(what) => write!(f, "invalid field: {what}"),
            FeedError::TrailingBytes(n) => write!(f, "{n} unconsumed bytes in frame"),
            FeedError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
        }
    }
}

impl std::error::Error for FeedError {}

impl From<dnswire::WireError> for FeedError {
    fn from(e: dnswire::WireError) -> Self {
        FeedError::Framing(e)
    }
}
