//! A minimal [`FeedItem`] used by the crate's own tests: one `u64` value
//! and an `f64` time, encoded fixed-width.

use crate::codec::{ByteReader, FeedItem};
use crate::error::FeedError;

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TestItem {
    pub value: u64,
    pub time: f64,
}

impl TestItem {
    pub fn new(value: u64) -> TestItem {
        TestItem {
            value,
            time: value as f64,
        }
    }

    pub fn at(value: u64, time: f64) -> TestItem {
        TestItem { value, time }
    }
}

impl FeedItem for TestItem {
    const ITEM_VERSION: u8 = 7;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.value.to_le_bytes());
        out.extend_from_slice(&self.time.to_bits().to_le_bytes());
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, FeedError> {
        Ok(TestItem {
            value: r.u64("test value")?,
            time: r.f64("test time")?,
        })
    }

    fn order_time(&self) -> f64 {
        self.time
    }
}
