//! Item-level codec plumbing: the [`FeedItem`] trait the transport is
//! generic over, and a bounds-checked [`ByteReader`] for decoding.
//!
//! The transport moves opaque items; what an item *is* (the Observatory's
//! `TxSummary`) is defined by the crate that owns the type. Encoders
//! append to a `Vec<u8>`; decoders pull from a `ByteReader` and must
//! return a clean [`FeedError`] on any malformed input — never panic,
//! never read out of bounds.

use crate::error::FeedError;
use crate::varint;

/// A value that can ride the feed.
pub trait FeedItem: Sized + Send + 'static {
    /// Item-codec revision; carried in HELLO so an incompatible sensor is
    /// rejected up front instead of feeding garbage through the CRC.
    const ITEM_VERSION: u8;

    /// Append the item's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one item. Implementations must consume exactly the bytes
    /// they wrote and validate every field.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, FeedError>;

    /// Stream time of the item, seconds — the key the collector merges
    /// concurrent sensor streams by.
    fn order_time(&self) -> f64;
}

/// A cursor over a frame payload with bounds-checked primitive reads.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` bytes as a slice.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FeedError> {
        if self.remaining() < n {
            return Err(FeedError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next octet.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, FeedError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Next two octets, little-endian.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, FeedError> {
        let b = self.bytes(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Next four octets, little-endian.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, FeedError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next eight octets, little-endian.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, FeedError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Next eight octets as an `f64` (IEEE bits, little-endian).
    pub fn f64(&mut self, what: &'static str) -> Result<f64, FeedError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// An unsigned LEB128 varint (≤10 octets).
    pub fn varint(&mut self) -> Result<u64, FeedError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8("varint")?;
            let bits = (byte & 0x7f) as u64;
            // The tenth octet may only carry the top bit of a u64.
            if shift == 63 && bits > 1 {
                return Err(FeedError::VarintOverflow);
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(FeedError::VarintOverflow)
    }

    /// A varint that must fit a `usize` count bounded by the bytes left
    /// in the frame (each counted element costs ≥ `min_elem_bytes`), so a
    /// corrupted count cannot trigger a huge allocation.
    pub fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, FeedError> {
        let n = self.varint()?;
        let bound = self.remaining() / min_elem_bytes.max(1);
        if n > bound as u64 {
            return Err(FeedError::Truncated(what));
        }
        Ok(n as usize)
    }
}

/// Append a `u64` varint (re-exported next to the reader for symmetry).
pub fn write_varint(v: u64, out: &mut Vec<u8>) {
    varint::write_u64(v, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reads() {
        let buf = [1u8, 2, 3];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 1);
        assert_eq!(r.u16("b").unwrap(), u16::from_le_bytes([2, 3]));
        assert!(r.is_empty());
        assert_eq!(r.u8("end"), Err(FeedError::Truncated("end")));
    }

    #[test]
    fn varint_overflow_detected() {
        // Eleven continuation octets can never be a valid u64.
        let buf = [0xffu8; 11];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.varint(), Err(FeedError::VarintOverflow));
    }

    #[test]
    fn count_bounded_by_remaining() {
        let mut buf = Vec::new();
        write_varint(1_000_000, &mut buf);
        buf.extend_from_slice(&[0u8; 4]);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.count(4, "elems"), Err(FeedError::Truncated(_))));
    }
}
