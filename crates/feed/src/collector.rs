//! Collector side of the feed: a TCP server that accepts many sensor
//! connections, decodes each stream on its own thread, audits per-sensor
//! sequence numbers, and merges the concurrent streams into one
//! time-ordered feed.
//!
//! Structure (mirroring the core pipeline's std-thread + crossbeam
//! style):
//!
//! ```text
//! accept thread ──spawns──▶ reader thread per connection
//!                                │  decoded frames / errors
//!                                ▼
//!                          merge thread ──▶ output channel (merged items)
//! ```
//!
//! The merge thread owns the [`TimeMerger`] and one [`SensorLedger`] per
//! sensor; it releases items only when every live sensor has something to
//! compare against, so the merged order is deterministic regardless of
//! how the network interleaves the streams. It stops once the configured
//! number of BYE frames has arrived (or every connection is gone).

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, Sender};

use crate::codec::FeedItem;
use crate::error::FeedError;
use crate::frame::{Frame, FrameReader};
use crate::merge::TimeMerger;

/// Per-sensor accounting kept by the collector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensorStats {
    /// Connections this sensor made (HELLO frames seen).
    pub connects: u64,
    /// Fresh BATCH frames accepted.
    pub frames: u64,
    /// BATCH frames discarded as retransmitted duplicates.
    pub duplicate_frames: u64,
    /// Items delivered into the merge.
    pub items: u64,
    /// Observed sequence gaps, as inclusive `(first, last)` missing
    /// frame numbers.
    pub gaps: Vec<(u64, u64)>,
    /// Total frames missing across all gaps.
    pub gap_frames: u64,
    /// Frames that failed their CRC on this sensor's connections.
    pub crc_errors: u64,
    /// Frames whose payload failed to decode after a clean CRC.
    pub decode_errors: u64,
    /// BYE frames received.
    pub byes: u64,
    /// Frames the sensor itself reported dropping (from BYE).
    pub reported_dropped_frames: u64,
    /// Items the sensor itself reported dropping (from BYE).
    pub reported_dropped_items: u64,
}

/// Sans-io per-sensor sequence auditor: feed it the frames of one sensor
/// (across any number of connections) and it tracks gaps, duplicates,
/// and the sensor's self-reported losses.
#[derive(Debug, Default)]
pub struct SensorLedger {
    expected: Option<u64>,
    /// Accumulated statistics.
    pub stats: SensorStats,
}

impl SensorLedger {
    /// Fresh ledger.
    pub fn new() -> SensorLedger {
        SensorLedger::default()
    }

    /// Sequence number the next fresh batch should carry.
    pub fn expected_seq(&self) -> Option<u64> {
        self.expected
    }

    fn advance_to(&mut self, seq: u64) {
        match self.expected {
            None => self.expected = Some(seq),
            Some(e) if seq > e => {
                self.stats.gaps.push((e, seq - 1));
                self.stats.gap_frames += seq - e;
                self.expected = Some(seq);
            }
            Some(_) => {}
        }
    }

    /// A HELLO announced the stream (re)starts at `next_seq`. A value
    /// above the expected sequence means frames were lost while the
    /// sensor was away; below means the sensor is retransmitting and the
    /// duplicates will be discarded batch by batch.
    pub fn on_hello(&mut self, next_seq: u64) {
        self.stats.connects += 1;
        self.advance_to(next_seq);
    }

    /// A BATCH with `seq` holding `items` items arrived. Returns true
    /// when the batch is fresh (its items should be delivered), false for
    /// a duplicate.
    pub fn on_batch(&mut self, seq: u64, items: u64) -> bool {
        if let Some(e) = self.expected {
            if seq < e {
                self.stats.duplicate_frames += 1;
                return false;
            }
        }
        self.advance_to(seq);
        self.expected = Some(seq + 1);
        self.stats.frames += 1;
        self.stats.items += items;
        true
    }

    /// A BYE closed the stream at `next_seq` with the sensor's own drop
    /// tally. A `next_seq` above expectation exposes frames dropped at
    /// the very tail of the stream.
    pub fn on_bye(&mut self, next_seq: u64, dropped_frames: u64, dropped_items: u64) {
        self.advance_to(next_seq);
        self.stats.byes += 1;
        self.stats.reported_dropped_frames += dropped_frames;
        self.stats.reported_dropped_items += dropped_items;
    }
}

/// Collector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorConfig {
    /// BYE frames to wait for before the merged output ends (normally
    /// the number of sensors in the deployment).
    pub expected_byes: u64,
    /// Distinct sensors that must say HELLO before any item is released:
    /// an early sensor must not drain ahead of peers that are still
    /// connecting, or the merged order would depend on connect timing.
    pub expected_sensors: u64,
    /// Socket read timeout (also the readers' stop-poll interval).
    pub read_timeout: Duration,
    /// Accept-loop poll interval.
    pub poll_interval: Duration,
}

impl CollectorConfig {
    /// Defaults for a deployment of `expected_byes` sensors.
    pub fn new(expected_byes: u64) -> CollectorConfig {
        CollectorConfig {
            expected_byes,
            expected_sensors: expected_byes,
            read_timeout: Duration::from_millis(25),
            poll_interval: Duration::from_millis(2),
        }
    }
}

/// Final collector accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectorReport {
    /// Per-sensor statistics, keyed by sensor id.
    pub sensors: BTreeMap<u64, SensorStats>,
    /// Items released into the merged output.
    pub items_merged: u64,
    /// Protocol errors on connections that never completed a HELLO.
    pub unattributed_errors: u64,
}

impl CollectorReport {
    /// Total frames lost across all sensors (collector-observed gaps).
    pub fn total_gap_frames(&self) -> u64 {
        self.sensors.values().map(|s| s.gap_frames).sum()
    }
}

enum Event<T> {
    Frame { conn: u64, frame: Frame<T> },
    BadFrame { conn: u64, error: FeedError },
    Disconnect { conn: u64 },
}

/// TCP feed server: accepts sensors, merges their streams, and hands the
/// merged items out through a channel.
pub struct Collector<T> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    output: Option<Receiver<T>>,
    accept: Option<JoinHandle<()>>,
    merge: Option<JoinHandle<CollectorReport>>,
}

impl<T: FeedItem> Collector<T> {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting sensors.
    pub fn bind(addr: &str, config: CollectorConfig) -> std::io::Result<Collector<T>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (event_tx, event_rx) = unbounded::<Event<T>>();
        let (out_tx, out_rx) = unbounded::<T>();

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("feed-accept".into())
                .spawn(move || accept_loop(listener, event_tx, stop, config))
                .expect("spawn collector accept thread")
        };
        let merge = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("feed-merge".into())
                .spawn(move || merge_loop(event_rx, out_tx, &stop, config))
                .expect("spawn collector merge thread")
        };

        Ok(Collector {
            addr: local,
            stop,
            output: Some(out_rx),
            accept: Some(accept),
            merge: Some(merge),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Take the merged output channel. Iterate it to drive the pipeline;
    /// it ends when the expected number of BYEs has arrived.
    pub fn take_output(&mut self) -> Receiver<T> {
        self.output.take().expect("collector output already taken")
    }

    /// Wait for the feed to complete and return the accounting. Call
    /// after draining (or dropping) the output channel.
    pub fn finish(mut self) -> CollectorReport {
        let report = self
            .merge
            .take()
            .map(|h| h.join().expect("collector merge thread panicked"))
            .unwrap_or_default();
        // The merge thread set `stop` on its way out; the accept loop and
        // readers notice within a poll interval.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        report
    }
}

impl<T> Drop for Collector<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.merge.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop<T: FeedItem>(
    listener: TcpListener,
    events: Sender<Event<T>>,
    stop: Arc<AtomicBool>,
    config: CollectorConfig,
) {
    let mut readers = Vec::new();
    let mut next_conn = 0u64;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = next_conn;
                next_conn += 1;
                let events = events.clone();
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name(format!("feed-reader-{conn}"))
                    .spawn(move || reader_loop(stream, conn, events, stop, config))
                    .expect("spawn collector reader thread");
                readers.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval);
            }
            Err(_) => std::thread::sleep(config.poll_interval),
        }
    }
    drop(events);
    for h in readers {
        let _ = h.join();
    }
}

fn reader_loop<T: FeedItem>(
    mut stream: TcpStream,
    conn: u64,
    events: Sender<Event<T>>,
    stop: Arc<AtomicBool>,
    config: CollectorConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut reader = FrameReader::<T>::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        reader.push(&buf[..n]);
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    if events.send(Event::Frame { conn, frame }).is_err() {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    let fatal = matches!(error, FeedError::Framing(_));
                    if events.send(Event::BadFrame { conn, error }).is_err() {
                        break 'conn;
                    }
                    if fatal {
                        // A corrupt length prefix poisons the stream;
                        // drop the connection, the sensor will reconnect.
                        break 'conn;
                    }
                }
            }
        }
    }
    let _ = events.send(Event::Disconnect { conn });
}

fn merge_loop<T: FeedItem>(
    events: Receiver<Event<T>>,
    output: Sender<T>,
    stop: &AtomicBool,
    config: CollectorConfig,
) -> CollectorReport {
    let mut merger = TimeMerger::<T>::new();
    let mut ledgers: BTreeMap<u64, SensorLedger> = BTreeMap::new();
    // conn → sensor identity (learned from HELLO), and per-sensor latest
    // conn so a stale disconnect cannot close a reconnected stream.
    let mut conn_sensor: BTreeMap<u64, u64> = BTreeMap::new();
    let mut latest_conn: BTreeMap<u64, u64> = BTreeMap::new();
    let mut report = CollectorReport::default();
    let mut byes = 0u64;

    for event in events.iter() {
        match event {
            Event::Frame { conn, frame } => match frame {
                Frame::Hello {
                    sensor, next_seq, ..
                } => {
                    conn_sensor.insert(conn, sensor);
                    latest_conn.insert(sensor, conn);
                    ledgers.entry(sensor).or_default().on_hello(next_seq);
                    merger.open(sensor);
                }
                Frame::Batch { sensor, seq, items } => {
                    let ledger = ledgers.entry(sensor).or_default();
                    if ledger.on_batch(seq, items.len() as u64) {
                        merger.push(sensor, items);
                    }
                }
                Frame::Bye {
                    sensor,
                    next_seq,
                    dropped_frames,
                    dropped_items,
                } => {
                    ledgers.entry(sensor).or_default().on_bye(
                        next_seq,
                        dropped_frames,
                        dropped_items,
                    );
                    merger.close(sensor);
                    byes += 1;
                }
            },
            Event::BadFrame { conn, error } => {
                match conn_sensor.get(&conn) {
                    Some(&sensor) => {
                        let stats = &mut ledgers.entry(sensor).or_default().stats;
                        if matches!(error, FeedError::Crc { .. }) {
                            stats.crc_errors += 1;
                        } else {
                            stats.decode_errors += 1;
                        }
                    }
                    None => report.unattributed_errors += 1,
                }
            }
            Event::Disconnect { conn } => {
                if let Some(&sensor) = conn_sensor.get(&conn) {
                    if latest_conn.get(&sensor) == Some(&conn) {
                        // The sensor's live connection died without BYE:
                        // stop letting its silence gate the merge.
                        merger.close(sensor);
                    }
                }
            }
        }
        if ledgers.len() as u64 >= config.expected_sensors {
            for item in merger.drain_ready() {
                report.items_merged += 1;
                if output.send(item).is_err() {
                    break;
                }
            }
        }
        if config.expected_byes > 0 && byes >= config.expected_byes {
            break;
        }
    }

    // Everything still buffered belongs to closed or abandoned streams.
    for (&sensor, _) in &ledgers {
        merger.close(sensor);
    }
    for item in merger.drain_ready() {
        report.items_merged += 1;
        if output.send(item).is_err() {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    report.sensors = ledgers.into_iter().map(|(id, l)| (id, l.stats)).collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{Sensor, SensorConfig};
    use crate::testitem::TestItem;

    #[test]
    fn ledger_tracks_gaps_duplicates_and_byes() {
        let mut l = SensorLedger::new();
        l.on_hello(0);
        assert!(l.on_batch(0, 10));
        assert!(l.on_batch(1, 10));
        // Frames 2..=4 lost at the sensor's full buffer.
        assert!(l.on_batch(5, 10));
        // A retransmit of frame 1 after reconnect is a duplicate.
        assert!(!l.on_batch(1, 10));
        // BYE says next would have been 8: frames 6..=7 lost at the tail.
        l.on_bye(8, 5, 50);
        let s = &l.stats;
        assert_eq!(s.frames, 3);
        assert_eq!(s.items, 30);
        assert_eq!(s.duplicate_frames, 1);
        assert_eq!(s.gaps, vec![(2, 4), (6, 7)]);
        assert_eq!(s.gap_frames, 5);
        assert_eq!(s.byes, 1);
        assert_eq!(s.reported_dropped_frames, 5);
        assert_eq!(s.reported_dropped_items, 50);
    }

    #[test]
    fn ledger_gap_on_reconnect_hello() {
        let mut l = SensorLedger::new();
        l.on_hello(0);
        assert!(l.on_batch(0, 1));
        // Reconnect announcing seq 4: frames 1..=3 were lost offline.
        l.on_hello(4);
        assert!(l.on_batch(4, 1));
        assert_eq!(l.stats.gaps, vec![(1, 3)]);
        assert_eq!(l.stats.connects, 2);
    }

    #[test]
    fn collector_merges_sensors_in_time_order() {
        let mut collector =
            Collector::<TestItem>::bind("127.0.0.1:0", CollectorConfig::new(3)).unwrap();
        let addr = collector.local_addr().to_string();
        let output = collector.take_output();

        let mut handles = Vec::new();
        for sensor_id in 0..3u64 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut config = SensorConfig::new(sensor_id);
                config.batch_items = 4;
                let sensor = Sensor::connect(addr, config);
                // Sensor k owns times k, k+3, k+6, ... so the merged
                // stream must be exactly 0,1,2,...,29.
                for i in 0..10u64 {
                    let t = (sensor_id + 3 * i) as f64;
                    sensor.send(TestItem::at(sensor_id + 3 * i, t));
                }
                sensor.finish()
            }));
        }
        let merged: Vec<TestItem> = output.iter().collect();
        let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let report = collector.finish();

        let times: Vec<f64> = merged.iter().map(|i| i.time).collect();
        let want: Vec<f64> = (0..30).map(|v| v as f64).collect();
        assert_eq!(times, want);
        assert_eq!(report.items_merged, 30);
        assert_eq!(report.total_gap_frames(), 0);
        for r in &reports {
            assert_eq!(r.dropped_frames, 0);
            let stats = &report.sensors[&r.sensor];
            assert_eq!(stats.items, 10);
            assert_eq!(stats.byes, 1);
            assert_eq!(stats.crc_errors, 0);
        }
    }

    #[test]
    fn collector_reports_restart_gap() {
        let mut collector =
            Collector::<TestItem>::bind("127.0.0.1:0", CollectorConfig::new(1)).unwrap();
        let addr = collector.local_addr().to_string();
        let output = collector.take_output();

        // Incarnation 1: frames 0..=1, then crash (no BYE).
        let mut config = SensorConfig::new(5);
        config.batch_items = 1;
        let sensor = Sensor::connect(addr.clone(), config);
        sensor.send(TestItem::at(0, 0.0));
        sensor.send(TestItem::at(1, 1.0));
        sensor.wait_drained();
        let r1 = sensor.abort();
        assert_eq!(r1.next_seq, 2);

        // Incarnation 2 lost 3 frames before restarting: resume at 5.
        let mut config = SensorConfig::new(5);
        config.batch_items = 1;
        config.first_seq = r1.next_seq + 3;
        let sensor = Sensor::connect(addr, config);
        sensor.send(TestItem::at(5, 5.0));
        let r2 = sensor.finish();
        assert_eq!(r2.next_seq, 6);

        let merged: Vec<TestItem> = output.iter().collect();
        let report = collector.finish();
        assert_eq!(merged.len(), 3);
        let stats = &report.sensors[&5];
        assert_eq!(stats.gaps, vec![(2, 4)]);
        assert_eq!(stats.gap_frames, 3);
        assert_eq!(stats.connects, 2);
        assert_eq!(stats.byes, 1);
    }
}
