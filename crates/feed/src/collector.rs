//! Collector side of the feed: a TCP server that accepts many sensor
//! connections, decodes each stream on its own thread, audits per-sensor
//! sequence numbers, and merges the concurrent streams into one
//! time-ordered feed.
//!
//! Structure (mirroring the core pipeline's std-thread + crossbeam
//! style):
//!
//! ```text
//! accept thread ──spawns──▶ reader thread per connection
//!                                │  decoded frames / errors
//!                                ▼
//!                          merge thread ──▶ output channel (merged items)
//! ```
//!
//! The merge thread owns the [`TimeMerger`] and one [`SensorLedger`] per
//! sensor; it releases items only when every live sensor has something to
//! compare against, so the merged order is deterministic regardless of
//! how the network interleaves the streams. It stops once the configured
//! number of BYE frames has arrived (or every connection is gone).

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, Sender};
use telemetry::trace::{TraceEvent, TraceKind, TraceRing};
use telemetry::{Clock, FlightRecorder, RateLimiter, Registry, SystemClock};

use crate::codec::FeedItem;
use crate::error::FeedError;
use crate::frame::{Frame, FrameReader};
use crate::merge::TimeMerger;
use crate::metrics::{CollectorMetrics, CollectorTotals};

/// Per-sensor accounting kept by the collector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensorStats {
    /// Connections this sensor made (HELLO frames seen).
    pub connects: u64,
    /// Fresh BATCH frames accepted.
    pub frames: u64,
    /// BATCH frames discarded as retransmitted duplicates.
    pub duplicate_frames: u64,
    /// Items delivered into the merge.
    pub items: u64,
    /// Observed sequence gaps, as inclusive `(first, last)` missing
    /// frame numbers.
    pub gaps: Vec<(u64, u64)>,
    /// Total frames missing across all gaps.
    pub gap_frames: u64,
    /// Frames that arrived *after* having been recorded as missing — an
    /// overtaken connection's in-flight data surfacing late. The gap
    /// entry is removed again; this counts how often that happened.
    pub gap_filled: u64,
    /// Frames that failed their CRC on this sensor's connections.
    pub crc_errors: u64,
    /// Frames whose payload failed to decode after a clean CRC.
    pub decode_errors: u64,
    /// BYE frames received.
    pub byes: u64,
    /// Frames the sensor itself reported dropping (from BYE).
    pub reported_dropped_frames: u64,
    /// Items the sensor itself reported dropping (from BYE).
    pub reported_dropped_items: u64,
    /// Items from accepted frames discarded because they arrived behind
    /// the merge watermark (a reconnecting sensor delivering data older
    /// than what was already released; see [`TimeMerger`]).
    pub late_items: u64,
    /// Sequence number the ledger expected next when the feed ended —
    /// frames at or beyond it that never arrived are invisible to the
    /// collector unless a BYE advanced past them.
    pub final_expected_seq: Option<u64>,
    /// The ledger's first baseline (the first valid HELLO's `next_seq`,
    /// or the first accepted batch for streams whose HELLO never made
    /// it). Frames before it are attributable only to a poisoned
    /// connection, never to silent loss.
    pub first_expected_seq: Option<u64>,
}

/// Sans-io per-sensor sequence auditor: feed it the frames of one sensor
/// (across any number of connections) and it tracks gaps, duplicates,
/// and the sensor's self-reported losses.
#[derive(Debug, Default)]
pub struct SensorLedger {
    expected: Option<u64>,
    /// Accumulated statistics.
    pub stats: SensorStats,
}

impl SensorLedger {
    /// Fresh ledger.
    pub fn new() -> SensorLedger {
        SensorLedger::default()
    }

    /// Sequence number the next fresh batch should carry.
    pub fn expected_seq(&self) -> Option<u64> {
        self.expected
    }

    fn advance_to(&mut self, seq: u64) {
        match self.expected {
            None => {
                self.expected = Some(seq);
                self.stats.first_expected_seq = Some(seq);
            }
            Some(e) if seq > e => {
                self.stats.gaps.push((e, seq - 1));
                self.stats.gap_frames += seq - e;
                self.expected = Some(seq);
            }
            Some(_) => {}
        }
    }

    /// A HELLO announced the stream (re)starts at `next_seq`. A value
    /// above the expected sequence means frames were lost while the
    /// sensor was away; below means the sensor is retransmitting and the
    /// duplicates will be discarded batch by batch.
    ///
    /// A `next_seq` below the ledger's *baseline* is a different story:
    /// the stream has positions this ledger has never heard of, because
    /// a newer connection's HELLO overtook an older connection whose
    /// data is still in flight (a stalled link, reordered reader
    /// threads). Those frames must not be mistaken for retransmits —
    /// the baseline is lowered and the unknown range recorded as a gap,
    /// which the old connection's frames then fill as they surface
    /// ([`SensorLedger::on_batch`]). Whatever never surfaces stays a
    /// gap: visible loss, never silent.
    pub fn on_hello(&mut self, next_seq: u64) {
        self.stats.connects += 1;
        match self.stats.first_expected_seq {
            Some(first) if next_seq < first => {
                self.stats.gaps.insert(0, (next_seq, first - 1));
                self.stats.gap_frames += first - next_seq;
                self.stats.first_expected_seq = Some(next_seq);
            }
            _ => self.advance_to(next_seq),
        }
    }

    /// Remove `seq` from the recorded gaps if present (splitting the
    /// range it sat in). Returns true when a gap was filled.
    fn fill_gap(&mut self, seq: u64) -> bool {
        let Some(idx) = self
            .stats
            .gaps
            .iter()
            .position(|&(a, b)| a <= seq && seq <= b)
        else {
            return false;
        };
        let (a, b) = self.stats.gaps.remove(idx);
        if seq < b {
            self.stats.gaps.insert(idx, (seq + 1, b));
        }
        if a < seq {
            self.stats.gaps.insert(idx, (a, seq - 1));
        }
        self.stats.gap_frames -= 1;
        self.stats.gap_filled += 1;
        true
    }

    /// A BATCH with `seq` holding `items` items arrived. Returns true
    /// when the batch is fresh (its items should be delivered), false for
    /// a duplicate. A below-expectation sequence that matches a recorded
    /// gap is *not* a duplicate — it is missing data surfacing late from
    /// an overtaken connection, and fills the gap.
    pub fn on_batch(&mut self, seq: u64, items: u64) -> bool {
        if let Some(e) = self.expected {
            if seq < e {
                if !self.fill_gap(seq) {
                    self.stats.duplicate_frames += 1;
                    return false;
                }
                self.stats.frames += 1;
                self.stats.items += items;
                return true;
            }
        }
        self.advance_to(seq);
        self.expected = Some(seq + 1);
        self.stats.frames += 1;
        self.stats.items += items;
        true
    }

    /// A BYE closed the stream at `next_seq` with the sensor's own drop
    /// tally. A `next_seq` above expectation exposes frames dropped at
    /// the very tail of the stream.
    pub fn on_bye(&mut self, next_seq: u64, dropped_frames: u64, dropped_items: u64) {
        self.advance_to(next_seq);
        self.stats.byes += 1;
        self.stats.reported_dropped_frames += dropped_frames;
        self.stats.reported_dropped_items += dropped_items;
    }
}

/// Collector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorConfig {
    /// BYE frames to wait for before the merged output ends (normally
    /// the number of sensors in the deployment).
    pub expected_byes: u64,
    /// Distinct sensors that must say HELLO before any item is released:
    /// an early sensor must not drain ahead of peers that are still
    /// connecting, or the merged order would depend on connect timing.
    pub expected_sensors: u64,
    /// Socket read timeout (also the readers' stop-poll interval).
    pub read_timeout: Duration,
    /// Accept-loop poll interval.
    pub poll_interval: Duration,
}

impl CollectorConfig {
    /// Defaults for a deployment of `expected_byes` sensors.
    pub fn new(expected_byes: u64) -> CollectorConfig {
        CollectorConfig {
            expected_byes,
            expected_sensors: expected_byes,
            read_timeout: Duration::from_millis(25),
            poll_interval: Duration::from_millis(2),
        }
    }
}

/// Final collector accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectorReport {
    /// Per-sensor statistics, keyed by sensor id.
    pub sensors: BTreeMap<u64, SensorStats>,
    /// Items released into the merged output.
    pub items_merged: u64,
    /// Protocol errors on connections that never completed a HELLO.
    pub unattributed_errors: u64,
    /// Data frames rejected because their connection never completed a
    /// valid HELLO (e.g. the HELLO was corrupted in flight). Such a
    /// connection is poisoned and must be dropped so the sensor
    /// reconnects and re-announces its position — otherwise frames lost
    /// before the first accepted batch would vanish without a gap entry.
    pub unheralded_frames: u64,
    /// Connections that disconnected before completing a valid HELLO —
    /// they arrived, possibly carried data (a HELLO and frames that
    /// never made it out of the network), and vanished without ever
    /// identifying a sensor. The collector cannot attribute such a
    /// connection, but it *can* record that it happened: any frames a
    /// sensor wrote there before its reconnect re-baselined the ledger
    /// are attributable only to these, never to silent loss.
    pub anonymous_disconnects: u64,
}

impl CollectorReport {
    /// Total frames lost across all sensors (collector-observed gaps).
    pub fn total_gap_frames(&self) -> u64 {
        self.sensors.values().map(|s| s.gap_frames).sum()
    }
}

enum Event<T> {
    Frame { conn: u64, frame: Frame<T> },
    BadFrame { conn: u64, error: FeedError },
    Disconnect { conn: u64 },
}

/// Stage name on collector trace events.
const STAGE: &str = "collector";

/// Io-edge thread stack size: explicit and bounded, so the collector's
/// one-reader-per-sensor fan-out cannot exhaust a small container's
/// address space (the thread-spawn ENOMEM seen at 10k top-k caps).
pub(crate) const IO_STACK_BYTES: usize = telemetry::IO_THREAD_STACK_BYTES;

/// What [`CollectorCore::on_frame`] did with a frame — the observability
/// hook the chaos differential oracle audits frame-by-frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// A HELLO (re)opened the sensor's stream.
    Hello {
        /// Announcing sensor.
        sensor: u64,
    },
    /// A fresh batch was accepted and entered the merge.
    Accepted {
        /// Originating sensor.
        sensor: u64,
        /// Frame sequence number.
        seq: u64,
        /// Items the frame carried.
        items: u64,
        /// Of those, items discarded as behind the merge watermark
        /// (accounted in [`SensorStats::late_items`]).
        late: u64,
    },
    /// A retransmitted duplicate was discarded.
    Duplicate {
        /// Originating sensor.
        sensor: u64,
        /// Duplicate sequence number.
        seq: u64,
    },
    /// A BYE closed the sensor's stream.
    Bye {
        /// Closing sensor.
        sensor: u64,
    },
    /// A data frame arrived on a connection with no valid HELLO (or for a
    /// different sensor than the HELLO announced). The frame is rejected
    /// and the connection must be dropped: only a reconnect HELLO can
    /// re-establish where the stream stands.
    Unheralded,
}

impl FrameOutcome {
    /// True when the connection that produced this frame is poisoned and
    /// should be closed by the transport.
    pub fn is_fatal(&self) -> bool {
        matches!(self, FrameOutcome::Unheralded)
    }
}

/// Sans-io heart of the collector: per-sensor ledgers, connection→sensor
/// attribution, and the gap-free time merge — everything the merge
/// thread does, minus the sockets and channels.
///
/// The TCP [`Collector`] drives one instance from its event loop; the
/// `chaos` fault-injection harness drives another through a scripted
/// virtual transport. Both paths share *this* accounting code, so an
/// invariant proven under chaos holds for the real server.
#[derive(Debug)]
pub struct CollectorCore<T> {
    merger: TimeMerger<T>,
    ledgers: BTreeMap<u64, SensorLedger>,
    /// conn → sensor identity (learned from HELLO), and per-sensor latest
    /// conn so a stale disconnect cannot close a reconnected stream.
    conn_sensor: BTreeMap<u64, u64>,
    latest_conn: BTreeMap<u64, u64>,
    items_merged: u64,
    unattributed_errors: u64,
    unheralded_frames: u64,
    anonymous_disconnects: u64,
    byes: u64,
    expected_sensors: u64,
    expected_byes: u64,
    metrics: CollectorMetrics,
    trace: TraceRing,
    now_us: u64,
}

impl<T: FeedItem> CollectorCore<T> {
    /// Core expecting `config.expected_sensors` distinct sensors before
    /// releasing items and `config.expected_byes` BYEs before
    /// [`CollectorCore::done`] reports completion. Telemetry goes to the
    /// global registry.
    pub fn new(config: &CollectorConfig) -> CollectorCore<T> {
        CollectorCore::with_registry(config, &Registry::global())
    }

    /// Core reporting telemetry to `registry` (the chaos harness injects
    /// a fresh registry per run to keep seeds isolated).
    pub fn with_registry(config: &CollectorConfig, registry: &Registry) -> CollectorCore<T> {
        let metrics = CollectorMetrics::register(registry);
        CollectorCore {
            merger: TimeMerger::new(),
            ledgers: BTreeMap::new(),
            conn_sensor: BTreeMap::new(),
            latest_conn: BTreeMap::new(),
            items_merged: 0,
            unattributed_errors: 0,
            unheralded_frames: 0,
            anonymous_disconnects: 0,
            byes: 0,
            expected_sensors: config.expected_sensors,
            expected_byes: config.expected_byes,
            metrics,
            trace: TraceRing::disabled(),
            now_us: 0,
        }
    }

    /// Record frame-level provenance events into `ring` (see
    /// [`telemetry::trace`]). Disabled by default; the TCP collector
    /// attaches the global flight recorder's `feed/collector` ring.
    pub fn with_trace(mut self, ring: TraceRing) -> CollectorCore<T> {
        self.trace = ring;
        self
    }

    /// Clock reading stamped onto subsequent trace events. The io driver
    /// forwards its wall clock; sans-io tests pass virtual time.
    pub fn set_now_us(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    /// Leave the outcome of one frame on the trace: Open for HELLO,
    /// Ingest (+ a Drop for watermark-late items) for accepted batches,
    /// Mark for duplicates and unheralded frames, Close for BYE.
    fn trace_outcome(&self, outcome: FrameOutcome) {
        if !self.trace.is_enabled() {
            return;
        }
        let event = match outcome {
            FrameOutcome::Hello { sensor } => {
                TraceEvent::new(self.now_us, STAGE, TraceKind::Open).source(sensor)
            }
            FrameOutcome::Accepted {
                sensor,
                items,
                late,
                ..
            } => {
                if late > 0 {
                    self.trace.record(
                        TraceEvent::new(self.now_us, STAGE, TraceKind::Drop)
                            .source(sensor)
                            .value(late),
                    );
                }
                TraceEvent::new(self.now_us, STAGE, TraceKind::Ingest)
                    .source(sensor)
                    .value(items)
            }
            FrameOutcome::Duplicate { sensor, seq } => {
                TraceEvent::new(self.now_us, STAGE, TraceKind::Mark)
                    .source(sensor)
                    .value(seq)
            }
            FrameOutcome::Bye { sensor } => {
                TraceEvent::new(self.now_us, STAGE, TraceKind::Close).source(sensor)
            }
            FrameOutcome::Unheralded => {
                TraceEvent::new(self.now_us, STAGE, TraceKind::Mark).value(1)
            }
        };
        self.trace.record(event);
    }

    /// Aggregate totals over every ledger plus the core's own counts —
    /// the exact numbers mirrored into the telemetry counters.
    pub fn totals(&self) -> CollectorTotals {
        let mut t = CollectorTotals {
            items_merged: self.items_merged,
            unattributed_errors: self.unattributed_errors,
            unheralded_frames: self.unheralded_frames,
            anonymous_disconnects: self.anonymous_disconnects,
            ..CollectorTotals::default()
        };
        for ledger in self.ledgers.values() {
            let s = &ledger.stats;
            t.frames += s.frames;
            t.items += s.items;
            t.duplicate_frames += s.duplicate_frames;
            t.gap_recorded_frames += s.gap_frames + s.gap_filled;
            t.gap_filled_frames += s.gap_filled;
            t.crc_errors += s.crc_errors;
            t.decode_errors += s.decode_errors;
            t.late_items += s.late_items;
            t.connects += s.connects;
            t.byes += s.byes;
        }
        t
    }

    /// Frames currently recorded missing (unfilled gaps, all sensors).
    pub fn open_gap_frames(&self) -> u64 {
        self.ledgers.values().map(|l| l.stats.gap_frames).sum()
    }

    /// Frames ever recorded missing, filled or not — the monotone number
    /// the collector's gap-growth warning watches.
    pub fn total_gap_recorded(&self) -> u64 {
        self.ledgers
            .values()
            .map(|l| l.stats.gap_frames + l.stats.gap_filled)
            .sum()
    }

    fn sync_metrics(&mut self) {
        self.metrics.events.inc(1);
        let totals = self.totals();
        let open = self.open_gap_frames();
        self.metrics.sync(totals, open, self.ledgers.len() as u64);
    }

    /// A decoded frame arrived on `conn`. Releasable items are appended
    /// to `out` in merged time order; the returned outcome says what the
    /// frame did (and whether the connection is now poisoned).
    pub fn on_frame(&mut self, conn: u64, frame: Frame<T>, out: &mut Vec<T>) -> FrameOutcome {
        let outcome = match frame {
            Frame::Hello {
                sensor, next_seq, ..
            } => {
                self.conn_sensor.insert(conn, sensor);
                self.latest_conn.insert(sensor, conn);
                self.ledgers.entry(sensor).or_default().on_hello(next_seq);
                self.merger.open(sensor);
                FrameOutcome::Hello { sensor }
            }
            Frame::Batch { sensor, seq, items } => {
                if self.conn_sensor.get(&conn) != Some(&sensor) {
                    self.unheralded_frames += 1;
                    self.sync_metrics();
                    self.trace_outcome(FrameOutcome::Unheralded);
                    return FrameOutcome::Unheralded;
                }
                let ledger = self.ledgers.entry(sensor).or_default();
                let count = items.len() as u64;
                if ledger.on_batch(seq, count) {
                    let late = self.merger.push(sensor, items);
                    self.ledgers.entry(sensor).or_default().stats.late_items += late;
                    FrameOutcome::Accepted {
                        sensor,
                        seq,
                        items: count,
                        late,
                    }
                } else {
                    FrameOutcome::Duplicate { sensor, seq }
                }
            }
            Frame::Bye {
                sensor,
                next_seq,
                dropped_frames,
                dropped_items,
            } => {
                if self.conn_sensor.get(&conn) != Some(&sensor) {
                    self.unheralded_frames += 1;
                    self.sync_metrics();
                    self.trace_outcome(FrameOutcome::Unheralded);
                    return FrameOutcome::Unheralded;
                }
                self.ledgers.entry(sensor).or_default().on_bye(
                    next_seq,
                    dropped_frames,
                    dropped_items,
                );
                self.merger.close(sensor);
                self.byes += 1;
                FrameOutcome::Bye { sensor }
            }
        };
        self.drain_into(out);
        self.sync_metrics();
        self.trace_outcome(outcome);
        outcome
    }

    /// A frame on `conn` failed its CRC or its decode.
    pub fn on_bad_frame(&mut self, conn: u64, error: &FeedError) {
        match self.conn_sensor.get(&conn) {
            Some(&sensor) => {
                let stats = &mut self.ledgers.entry(sensor).or_default().stats;
                if matches!(error, FeedError::Crc { .. }) {
                    stats.crc_errors += 1;
                } else {
                    stats.decode_errors += 1;
                }
            }
            None => self.unattributed_errors += 1,
        }
        self.sync_metrics();
    }

    /// `conn` is gone. If it was the sensor's live connection, its
    /// silence stops gating the merge; releasable items drain into `out`.
    /// A connection that vanishes before completing a HELLO is counted —
    /// it may have swallowed a sensor's in-flight frames (written to a
    /// socket that died before delivering a byte), and that count is the
    /// only evidence of such pre-baseline loss the collector can record.
    pub fn on_disconnect(&mut self, conn: u64, out: &mut Vec<T>) {
        match self.conn_sensor.get(&conn) {
            Some(&sensor) => {
                if self.latest_conn.get(&sensor) == Some(&conn) {
                    self.merger.close(sensor);
                }
            }
            None => self.anonymous_disconnects += 1,
        }
        self.drain_into(out);
        self.sync_metrics();
    }

    /// True once the expected number of BYEs has arrived.
    pub fn done(&self) -> bool {
        self.expected_byes > 0 && self.byes >= self.expected_byes
    }

    /// Close every stream, drain the remainder into `out`, and return
    /// the final accounting.
    pub fn finish(mut self, out: &mut Vec<T>) -> CollectorReport {
        let sensors: Vec<u64> = self.ledgers.keys().copied().collect();
        for sensor in sensors {
            self.merger.close(sensor);
        }
        let drained = self.merger.drain_ready();
        self.items_merged += drained.len() as u64;
        out.extend(drained);
        self.sync_metrics();
        let mut report = CollectorReport {
            sensors: BTreeMap::new(),
            items_merged: self.items_merged,
            unattributed_errors: self.unattributed_errors,
            unheralded_frames: self.unheralded_frames,
            anonymous_disconnects: self.anonymous_disconnects,
        };
        report.sensors = self
            .ledgers
            .into_iter()
            .map(|(id, l)| {
                let mut stats = l.stats;
                stats.final_expected_seq = l.expected;
                (id, stats)
            })
            .collect();
        report
    }

    fn drain_into(&mut self, out: &mut Vec<T>) {
        // An early sensor must not drain ahead of peers still connecting,
        // or the merged order would depend on connect timing.
        if (self.ledgers.len() as u64) < self.expected_sensors {
            return;
        }
        let drained = self.merger.drain_ready();
        self.items_merged += drained.len() as u64;
        out.extend(drained);
    }
}

/// TCP feed server: accepts sensors, merges their streams, and hands the
/// merged items out through a channel.
pub struct Collector<T> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    output: Option<Receiver<T>>,
    accept: Option<JoinHandle<()>>,
    merge: Option<JoinHandle<CollectorReport>>,
}

impl<T: FeedItem> Collector<T> {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting sensors.
    pub fn bind(addr: &str, config: CollectorConfig) -> std::io::Result<Collector<T>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (event_tx, event_rx) = unbounded::<Event<T>>();
        let (out_tx, out_rx) = unbounded::<T>();

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("feed-accept".into())
                .stack_size(IO_STACK_BYTES)
                .spawn(move || accept_loop(listener, event_tx, stop, config))
                .expect("spawn collector accept thread")
        };
        let merge = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("feed-merge".into())
                .stack_size(IO_STACK_BYTES)
                .spawn(move || merge_loop(event_rx, out_tx, &stop, config))
                .expect("spawn collector merge thread")
        };

        Ok(Collector {
            addr: local,
            stop,
            output: Some(out_rx),
            accept: Some(accept),
            merge: Some(merge),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Take the merged output channel. Iterate it to drive the pipeline;
    /// it ends when the expected number of BYEs has arrived.
    pub fn take_output(&mut self) -> Receiver<T> {
        self.output.take().expect("collector output already taken")
    }

    /// Wait for the feed to complete and return the accounting. Call
    /// after draining (or dropping) the output channel.
    pub fn finish(mut self) -> CollectorReport {
        let report = self
            .merge
            .take()
            .map(|h| h.join().expect("collector merge thread panicked"))
            .unwrap_or_default();
        // The merge thread set `stop` on its way out; the accept loop and
        // readers notice within a poll interval.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        report
    }
}

impl<T> Drop for Collector<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.merge.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop<T: FeedItem>(
    listener: TcpListener,
    events: Sender<Event<T>>,
    stop: Arc<AtomicBool>,
    config: CollectorConfig,
) {
    let mut readers = Vec::new();
    let mut next_conn = 0u64;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = next_conn;
                next_conn += 1;
                let events = events.clone();
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name(format!("feed-reader-{conn}"))
                    .stack_size(IO_STACK_BYTES)
                    .spawn(move || reader_loop(stream, conn, events, stop, config))
                    .expect("spawn collector reader thread");
                readers.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval);
            }
            Err(_) => std::thread::sleep(config.poll_interval),
        }
    }
    drop(events);
    for h in readers {
        let _ = h.join();
    }
}

fn reader_loop<T: FeedItem>(
    mut stream: TcpStream,
    conn: u64,
    events: Sender<Event<T>>,
    stop: Arc<AtomicBool>,
    config: CollectorConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut reader = FrameReader::<T>::new();
    let mut buf = [0u8; 16 * 1024];
    let mut heralded = false;
    'conn: loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        reader.push(&buf[..n]);
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    // A data frame before a valid HELLO poisons the
                    // connection: the merge core will reject it (and
                    // count it), and dropping the connection forces the
                    // sensor to reconnect and re-announce its sequence
                    // position so the loss surfaces as a gap.
                    let fatal = !heralded && !matches!(frame, Frame::Hello { .. });
                    heralded = heralded || matches!(frame, Frame::Hello { .. });
                    if events.send(Event::Frame { conn, frame }).is_err() {
                        break 'conn;
                    }
                    if fatal {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    let fatal = matches!(error, FeedError::Framing(_));
                    if events.send(Event::BadFrame { conn, error }).is_err() {
                        break 'conn;
                    }
                    if fatal {
                        // A corrupt length prefix poisons the stream;
                        // drop the connection, the sensor will reconnect.
                        break 'conn;
                    }
                }
            }
        }
    }
    let _ = events.send(Event::Disconnect { conn });
}

fn merge_loop<T: FeedItem>(
    events: Receiver<Event<T>>,
    output: Sender<T>,
    stop: &AtomicBool,
    config: CollectorConfig,
) -> CollectorReport {
    let mut core = CollectorCore::<T>::new(&config)
        .with_trace(FlightRecorder::global().ring("feed/collector"));
    let mut ready = Vec::new();
    // Operator-facing loss warnings: one line when the gap ledger grows,
    // rate-limited so a lossy deployment cannot flood the log. The full
    // totals stay in the telemetry counters.
    let warn_clock = SystemClock::new();
    let mut warn_limit = RateLimiter::new(5_000_000);
    let mut last_gap_recorded = 0u64;

    for event in events.iter() {
        core.set_now_us(warn_clock.now_us());
        match event {
            Event::Frame { conn, frame } => {
                // A fatal outcome (unheralded data frame) was already
                // handled transport-side: the reader drops such a
                // connection on its own.
                let _ = core.on_frame(conn, frame, &mut ready);
            }
            Event::BadFrame { conn, error } => core.on_bad_frame(conn, &error),
            Event::Disconnect { conn } => core.on_disconnect(conn, &mut ready),
        }
        let gap_recorded = core.total_gap_recorded();
        if gap_recorded > last_gap_recorded {
            if let Some(suppressed) = warn_limit.allow(warn_clock.now_us()) {
                eprintln!(
                    "collector: gap ledger grew to {gap_recorded} missing frames \
                     ({} open, {suppressed} earlier warnings suppressed)",
                    core.open_gap_frames()
                );
            }
            last_gap_recorded = gap_recorded;
        }
        for item in ready.drain(..) {
            if output.send(item).is_err() {
                break;
            }
        }
        if core.done() {
            break;
        }
    }

    // Everything still buffered belongs to closed or abandoned streams.
    let report = core.finish(&mut ready);
    for item in ready.drain(..) {
        if output.send(item).is_err() {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{Sensor, SensorConfig};
    use crate::testitem::TestItem;

    #[test]
    fn ledger_tracks_gaps_duplicates_and_byes() {
        let mut l = SensorLedger::new();
        l.on_hello(0);
        assert!(l.on_batch(0, 10));
        assert!(l.on_batch(1, 10));
        // Frames 2..=4 lost at the sensor's full buffer.
        assert!(l.on_batch(5, 10));
        // A retransmit of frame 1 after reconnect is a duplicate.
        assert!(!l.on_batch(1, 10));
        // BYE says next would have been 8: frames 6..=7 lost at the tail.
        l.on_bye(8, 5, 50);
        let s = &l.stats;
        assert_eq!(s.frames, 3);
        assert_eq!(s.items, 30);
        assert_eq!(s.duplicate_frames, 1);
        assert_eq!(s.gaps, vec![(2, 4), (6, 7)]);
        assert_eq!(s.gap_frames, 5);
        assert_eq!(s.byes, 1);
        assert_eq!(s.reported_dropped_frames, 5);
        assert_eq!(s.reported_dropped_items, 50);
    }

    #[test]
    fn ledger_gap_on_reconnect_hello() {
        let mut l = SensorLedger::new();
        l.on_hello(0);
        assert!(l.on_batch(0, 1));
        // Reconnect announcing seq 4: frames 1..=3 were lost offline.
        l.on_hello(4);
        assert!(l.on_batch(4, 1));
        assert_eq!(l.stats.gaps, vec![(1, 3)]);
        assert_eq!(l.stats.connects, 2);
    }

    /// Regression (chaos kernel, minimized from seed 9 of the "flaky"
    /// profile: stall the first connection's deliveries, then reset it):
    /// a reconnect HELLO overtakes the stalled connection's in-flight
    /// frames, so the ledger baselines at `next_seq` above data it has
    /// never seen. When the old frames finally surface they are *not*
    /// retransmits — classifying them as duplicates silently discarded
    /// never-delivered data. The ledger must lower its baseline,
    /// claim the unknown range as a gap, and let the frames fill it;
    /// whatever never surfaces stays a gap (visible loss).
    #[test]
    fn ledger_lowers_baseline_and_fills_gaps_for_overtaken_connection() {
        let mut l = SensorLedger::new();
        l.on_hello(3); // overtaking connection processed first
        assert!(l.on_batch(3, 1));
        l.on_hello(0); // stalled connection's HELLO surfaces late
        assert_eq!(l.stats.gaps, vec![(0, 2)]);
        assert_eq!(l.stats.gap_frames, 3);
        assert!(l.on_batch(1, 1), "gap fill, not a duplicate");
        assert_eq!(l.stats.gaps, vec![(0, 0), (2, 2)]);
        assert!(!l.on_batch(1, 1), "a second arrival IS a duplicate");
        assert!(l.on_batch(0, 1));
        assert_eq!(l.stats.gaps, vec![(2, 2)], "never surfaced: stays visible");
        assert_eq!(l.stats.gap_frames, 1);
        assert_eq!(l.stats.gap_filled, 2);
        assert_eq!(l.stats.duplicate_frames, 1);
        assert_eq!(l.stats.first_expected_seq, Some(0));
    }

    fn batch(sensor: u64, seq: u64, items: &[(u64, f64)]) -> Frame<TestItem> {
        Frame::Batch {
            sensor,
            seq,
            items: items.iter().map(|&(v, t)| TestItem::at(v, t)).collect(),
        }
    }

    fn hello(sensor: u64, next_seq: u64) -> Frame<TestItem> {
        Frame::Hello {
            sensor,
            next_seq,
            item_version: TestItem::ITEM_VERSION,
        }
    }

    /// Regression (chaos seed minimized to this sequence): a connection
    /// whose HELLO was lost to corruption delivers a batch. Accepting it
    /// would baseline the ledger at the batch's own sequence, silently
    /// erasing every frame lost before it. The core must reject the
    /// frame as unheralded (poisoning the connection) so the reconnect
    /// HELLO exposes the loss as a gap.
    #[test]
    fn core_rejects_batch_before_hello_and_gap_surfaces_on_reconnect() {
        let mut core = CollectorCore::<TestItem>::new(&CollectorConfig::new(1));
        let mut out = Vec::new();

        // conn 0: HELLO corrupted in flight → only a CRC error arrives.
        core.on_bad_frame(
            0,
            &FeedError::Crc {
                expected: 1,
                computed: 2,
            },
        );
        // Frame 0 was also corrupted; frame 1 decodes fine but the
        // connection was never heralded.
        let outcome = core.on_frame(0, batch(7, 1, &[(1, 1.0)]), &mut out);
        assert_eq!(outcome, FrameOutcome::Unheralded);
        assert!(outcome.is_fatal());
        assert!(out.is_empty(), "unheralded items must not merge");
        core.on_disconnect(0, &mut out);

        // conn 1: the sensor reconnects and re-announces at frame 1 (its
        // retransmit position after the failed write of frame 2).
        core.on_frame(1, hello(7, 1), &mut out);
        core.on_frame(1, batch(7, 1, &[(1, 1.0)]), &mut out);
        core.on_frame(1, batch(7, 2, &[(2, 2.0)]), &mut out);
        let report = core.finish(&mut out);

        let stats = &report.sensors[&7];
        assert_eq!(report.unheralded_frames, 1);
        assert_eq!(report.unattributed_errors, 1, "pre-HELLO CRC error");
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.items, 2);
        assert_eq!(out.len(), 2);
        // Frame 0 (lost on the poisoned connection) sits before the
        // ledger's first baseline — the report pins that baseline plus
        // the poisoning evidence, so the oracle can attribute the loss
        // instead of it vanishing silently.
        assert_eq!(stats.first_expected_seq, Some(1));
        assert_eq!(stats.final_expected_seq, Some(3));
    }

    /// Regression (chaos seed minimized to this sequence): a connection
    /// dies before its HELLO ever arrives — everything the sensor wrote
    /// into it (HELLO plus early frames) vanished in the network. The
    /// sensor, whose local writes all "succeeded", reconnects announcing
    /// an advanced `next_seq`, so the ledger baselines above frames the
    /// collector never knew existed. The disconnect count is the only
    /// possible record of that loss; silently dropping it would make the
    /// early frames unaccountable.
    #[test]
    fn core_counts_disconnects_of_never_heralded_connections() {
        let mut core = CollectorCore::<TestItem>::new(&CollectorConfig::new(1));
        let mut out = Vec::new();

        // conn 0: accepted by the listener, never delivered a byte.
        core.on_disconnect(0, &mut out);

        // conn 1: the sensor reconnects believing frames 0–2 were
        // delivered (they died in conn 0's buffers).
        core.on_frame(1, hello(7, 3), &mut out);
        core.on_frame(1, batch(7, 3, &[(3, 3.0)]), &mut out);
        // conn 1 disconnecting is attributed — not anonymous.
        core.on_disconnect(1, &mut out);
        let report = core.finish(&mut out);

        assert_eq!(report.anonymous_disconnects, 1);
        assert_eq!(report.sensors[&7].first_expected_seq, Some(3));
        assert_eq!(out.len(), 1);
    }

    /// End-to-end version of the overtaken-connection regression above,
    /// through [`CollectorCore`]: the filled frames' items land behind
    /// the merge watermark and are accounted as late, never reordered in
    /// and never called duplicates.
    #[test]
    fn core_gap_fills_frames_from_overtaken_connection() {
        let mut core = CollectorCore::<TestItem>::new(&CollectorConfig::new(1));
        let mut out = Vec::new();

        // conn 1 (the reconnect) is processed before conn 0 (stalled).
        core.on_frame(1, hello(5, 2), &mut out);
        core.on_frame(1, batch(5, 2, &[(2, 3.0)]), &mut out);
        // conn 0's stalled traffic finally surfaces.
        core.on_frame(0, hello(5, 0), &mut out);
        let a = core.on_frame(0, batch(5, 0, &[(0, 1.0)]), &mut out);
        assert!(
            matches!(
                a,
                FrameOutcome::Accepted {
                    seq: 0,
                    late: 1,
                    ..
                }
            ),
            "gap-filling frame accepted with its item counted late, got {a:?}"
        );
        let b = core.on_frame(0, batch(5, 1, &[(1, 2.0)]), &mut out);
        assert!(matches!(
            b,
            FrameOutcome::Accepted {
                seq: 1,
                late: 1,
                ..
            }
        ));

        let report = core.finish(&mut out);
        let stats = &report.sensors[&5];
        assert_eq!(
            stats.duplicate_frames, 0,
            "in-flight data is not a retransmit"
        );
        assert_eq!(stats.gaps, Vec::<(u64, u64)>::new());
        assert_eq!((stats.gap_frames, stats.gap_filled), (0, 2));
        assert_eq!((stats.frames, stats.items, stats.late_items), (3, 3, 2));
        assert_eq!(stats.first_expected_seq, Some(0));
        assert_eq!(
            out.iter().map(|i| i.time).collect::<Vec<_>>(),
            [3.0],
            "only the overtaking frame's item was still deliverable"
        );
    }

    /// Regression (chaos seed minimized to this sequence): sensor 2's
    /// connection dies, the merge advances past T on the surviving
    /// sensor, then sensor 2 reconnects and retransmits items older than
    /// T. Before the watermark fix those items re-entered the merge out
    /// of time order — downstream output silently diverged. Now they are
    /// dropped and *accounted* as `late_items`.
    #[test]
    fn core_accounts_late_items_after_reconnect_instead_of_reordering() {
        let mut config = CollectorConfig::new(2);
        config.expected_sensors = 2;
        let mut core = CollectorCore::<TestItem>::new(&config);
        let mut out = Vec::new();

        core.on_frame(0, hello(1, 0), &mut out);
        core.on_frame(1, hello(2, 0), &mut out);
        core.on_frame(0, batch(1, 0, &[(10, 1.0), (11, 5.0)]), &mut out);
        // Sensor 2's connection dies before delivering anything.
        core.on_disconnect(1, &mut out);
        assert_eq!(
            out.iter().map(|i| i.time).collect::<Vec<_>>(),
            [1.0, 5.0],
            "merge advances once the dead stream stops gating"
        );

        // Sensor 2 reconnects and delivers items from before the
        // watermark plus one current item.
        core.on_frame(2, hello(2, 0), &mut out);
        let outcome = core.on_frame(2, batch(2, 0, &[(20, 0.5), (21, 2.0), (22, 6.0)]), &mut out);
        assert_eq!(
            outcome,
            FrameOutcome::Accepted {
                sensor: 2,
                seq: 0,
                items: 3,
                late: 2
            }
        );
        let report = core.finish(&mut out);
        assert_eq!(
            out.iter().map(|i| i.time).collect::<Vec<_>>(),
            [1.0, 5.0, 6.0],
            "late items must not reorder the merged stream"
        );
        let stats = &report.sensors[&2];
        assert_eq!(stats.late_items, 2, "every suppressed item is accounted");
        assert_eq!(stats.items, 3, "ledger counts what the frame carried");
        assert_eq!(report.items_merged, 3);
    }

    #[test]
    fn core_matches_threaded_collector_accounting() {
        // Drive the same event sequence through CollectorCore that the
        // ledger unit test runs, and check the report shape end to end.
        let mut core = CollectorCore::<TestItem>::new(&CollectorConfig::new(1));
        let mut out = Vec::new();
        core.on_frame(0, hello(3, 0), &mut out);
        core.on_frame(0, batch(3, 0, &[(0, 0.0)]), &mut out);
        core.on_frame(0, batch(3, 2, &[(2, 2.0)]), &mut out); // frame 1 missing
                                                              // Frame 1 surfaces after all: it fills the recorded gap (its item
                                                              // is behind the watermark by now, so it is counted late, not
                                                              // reordered in), and a second copy is a true duplicate.
        core.on_frame(0, batch(3, 1, &[(1, 1.0)]), &mut out);
        core.on_frame(0, batch(3, 1, &[(1, 1.0)]), &mut out);
        core.on_frame(
            0,
            Frame::Bye {
                sensor: 3,
                next_seq: 4,
                dropped_frames: 1,
                dropped_items: 1,
            },
            &mut out,
        );
        assert!(core.done());
        let report = core.finish(&mut out);
        let stats = &report.sensors[&3];
        assert_eq!(stats.gaps, vec![(3, 3)], "gap (1,1) was filled");
        assert_eq!((stats.gap_frames, stats.gap_filled), (1, 1));
        assert_eq!(stats.duplicate_frames, 1);
        assert_eq!(stats.late_items, 1);
        assert_eq!(stats.byes, 1);
        assert_eq!(stats.final_expected_seq, Some(4));
        assert_eq!(report.items_merged, 2);
    }

    #[test]
    fn collector_merges_sensors_in_time_order() {
        let mut collector =
            Collector::<TestItem>::bind("127.0.0.1:0", CollectorConfig::new(3)).unwrap();
        let addr = collector.local_addr().to_string();
        let output = collector.take_output();

        let mut handles = Vec::new();
        for sensor_id in 0..3u64 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut config = SensorConfig::new(sensor_id);
                config.batch_items = 4;
                let sensor = Sensor::connect(addr, config);
                // Sensor k owns times k, k+3, k+6, ... so the merged
                // stream must be exactly 0,1,2,...,29.
                for i in 0..10u64 {
                    let t = (sensor_id + 3 * i) as f64;
                    sensor.send(TestItem::at(sensor_id + 3 * i, t));
                }
                sensor.finish()
            }));
        }
        let merged: Vec<TestItem> = output.iter().collect();
        let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let report = collector.finish();

        let times: Vec<f64> = merged.iter().map(|i| i.time).collect();
        let want: Vec<f64> = (0..30).map(|v| v as f64).collect();
        assert_eq!(times, want);
        assert_eq!(report.items_merged, 30);
        assert_eq!(report.total_gap_frames(), 0);
        for r in &reports {
            assert_eq!(r.dropped_frames, 0);
            let stats = &report.sensors[&r.sensor];
            assert_eq!(stats.items, 10);
            assert_eq!(stats.byes, 1);
            assert_eq!(stats.crc_errors, 0);
        }
    }

    #[test]
    fn collector_reports_restart_gap() {
        let mut collector =
            Collector::<TestItem>::bind("127.0.0.1:0", CollectorConfig::new(1)).unwrap();
        let addr = collector.local_addr().to_string();
        let output = collector.take_output();

        // Incarnation 1: frames 0..=1, then crash (no BYE).
        let mut config = SensorConfig::new(5);
        config.batch_items = 1;
        let sensor = Sensor::connect(addr.clone(), config);
        sensor.send(TestItem::at(0, 0.0));
        sensor.send(TestItem::at(1, 1.0));
        sensor.wait_drained();
        let r1 = sensor.abort();
        assert_eq!(r1.next_seq, 2);

        // Incarnation 2 lost 3 frames before restarting: resume at 5.
        let mut config = SensorConfig::new(5);
        config.batch_items = 1;
        config.first_seq = r1.next_seq + 3;
        let sensor = Sensor::connect(addr, config);
        sensor.send(TestItem::at(5, 5.0));
        let r2 = sensor.finish();
        assert_eq!(r2.next_seq, 6);

        let merged: Vec<TestItem> = output.iter().collect();
        let report = collector.finish();
        assert_eq!(merged.len(), 3);
        let stats = &report.sensors[&5];
        assert_eq!(stats.gaps, vec![(2, 4)]);
        assert_eq!(stats.gap_frames, 3);
        assert_eq!(stats.connects, 2);
        assert_eq!(stats.byes, 1);
    }
}
