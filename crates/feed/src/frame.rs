//! Frame layer: HELLO / BATCH / BYE payloads inside 32-bit length-prefixed
//! stream frames, each ending in a CRC-32 trailer.
//!
//! The layer is sans-io: [`encode_frame`] appends bytes to a buffer and
//! [`FrameReader`] consumes arbitrary stream chunks, so the whole protocol
//! round-trips in memory (and in CI) without a socket.

use crate::codec::{ByteReader, FeedItem};
use crate::crc32::crc32;
use crate::error::FeedError;
use crate::varint;
use dnswire::framing::{encode_frame_into, Reassembler, U32Prefix};

/// Protocol magic carried in HELLO frames.
pub const MAGIC: [u8; 4] = *b"DOF1";

/// Frame-layer protocol revision.
pub const PROTOCOL_VERSION: u8 = 1;

/// Largest acceptable frame payload. A batch of 4096 worst-case DNS
/// summaries stays well below this; anything larger is a corrupted or
/// hostile length prefix.
pub const MAX_FRAME: usize = 4 << 20;

const TYPE_HELLO: u8 = 1;
const TYPE_BATCH: u8 = 2;
const TYPE_BYE: u8 = 3;

/// One decoded feed frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<T> {
    /// Stream opener: version negotiation plus the sender's identity and
    /// the sequence number its next batch will carry (re-sent on every
    /// reconnect).
    Hello {
        /// Sensor identity (stable across reconnects).
        sensor: u64,
        /// Sequence number of the next BATCH on this connection.
        next_seq: u64,
        /// Item-codec revision the sensor encodes with.
        item_version: u8,
    },
    /// A batch of items with this sensor's monotone frame sequence number.
    Batch {
        /// Sensor identity.
        sensor: u64,
        /// Frame sequence number (consumed even by dropped frames, so
        /// gaps are observable).
        seq: u64,
        /// The decoded items, in sensor emission order.
        items: Vec<T>,
    },
    /// Orderly end of stream with the sensor's own loss accounting.
    Bye {
        /// Sensor identity.
        sensor: u64,
        /// Sequence number the next batch would have carried.
        next_seq: u64,
        /// Frames the sensor dropped at its full send buffer.
        dropped_frames: u64,
        /// Items inside those dropped frames.
        dropped_items: u64,
    },
}

impl<T> Frame<T> {
    /// The sensor identity every frame variant carries.
    pub fn sensor(&self) -> u64 {
        match *self {
            Frame::Hello { sensor, .. }
            | Frame::Batch { sensor, .. }
            | Frame::Bye { sensor, .. } => sensor,
        }
    }
}

/// Append `frame` to `out` as one length-prefixed stream frame.
pub fn encode_frame<T: FeedItem>(frame: &Frame<T>, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(64);
    match frame {
        Frame::Hello {
            sensor,
            next_seq,
            item_version,
        } => {
            payload.push(TYPE_HELLO);
            payload.extend_from_slice(&MAGIC);
            payload.push(PROTOCOL_VERSION);
            payload.push(*item_version);
            varint::write_u64(*sensor, &mut payload);
            varint::write_u64(*next_seq, &mut payload);
        }
        Frame::Batch { sensor, seq, items } => {
            payload.push(TYPE_BATCH);
            varint::write_u64(*sensor, &mut payload);
            varint::write_u64(*seq, &mut payload);
            varint::write_u64(items.len() as u64, &mut payload);
            for item in items {
                item.encode(&mut payload);
            }
        }
        Frame::Bye {
            sensor,
            next_seq,
            dropped_frames,
            dropped_items,
        } => {
            payload.push(TYPE_BYE);
            varint::write_u64(*sensor, &mut payload);
            varint::write_u64(*next_seq, &mut payload);
            varint::write_u64(*dropped_frames, &mut payload);
            varint::write_u64(*dropped_items, &mut payload);
        }
    }
    let crc = crc32(&payload);
    payload.extend_from_slice(&crc.to_le_bytes());
    debug_assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    encode_frame_into::<U32Prefix>(&payload, out);
}

/// Append a BATCH frame whose `count` items are already encoded
/// back-to-back in `items` — the sensor's byte-aware batching path,
/// which sizes batches as it encodes. Wire-identical to
/// [`encode_frame`] with [`Frame::Batch`].
pub(crate) fn encode_batch_preencoded(
    sensor: u64,
    seq: u64,
    count: u64,
    items: &[u8],
    out: &mut Vec<u8>,
) {
    let mut payload = Vec::with_capacity(items.len() + 16);
    payload.push(TYPE_BATCH);
    varint::write_u64(sensor, &mut payload);
    varint::write_u64(seq, &mut payload);
    varint::write_u64(count, &mut payload);
    payload.extend_from_slice(items);
    let crc = crc32(&payload);
    payload.extend_from_slice(&crc.to_le_bytes());
    debug_assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    encode_frame_into::<U32Prefix>(&payload, out);
}

/// Decode one frame payload (the bytes between length prefix and end,
/// CRC trailer included).
pub fn decode_payload<T: FeedItem>(payload: &[u8]) -> Result<Frame<T>, FeedError> {
    if payload.len() < 5 {
        return Err(FeedError::Truncated("frame header"));
    }
    let (body, trailer) = payload.split_at(payload.len() - 4);
    let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(body);
    if expected != computed {
        return Err(FeedError::Crc { expected, computed });
    }
    let mut r = ByteReader::new(body);
    let frame = match r.u8("frame type")? {
        TYPE_HELLO => {
            let magic = r.bytes(4, "hello magic")?;
            if magic != MAGIC {
                return Err(FeedError::BadMagic([
                    magic[0], magic[1], magic[2], magic[3],
                ]));
            }
            let protocol = r.u8("protocol version")?;
            if protocol != PROTOCOL_VERSION {
                return Err(FeedError::BadProtocolVersion {
                    got: protocol,
                    want: PROTOCOL_VERSION,
                });
            }
            let item_version = r.u8("item version")?;
            if item_version != T::ITEM_VERSION {
                return Err(FeedError::BadItemVersion {
                    got: item_version,
                    want: T::ITEM_VERSION,
                });
            }
            Frame::Hello {
                item_version,
                sensor: r.varint()?,
                next_seq: r.varint()?,
            }
        }
        TYPE_BATCH => {
            let sensor = r.varint()?;
            let seq = r.varint()?;
            let count = r.count(1, "batch items")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(T::decode(&mut r)?);
            }
            Frame::Batch { sensor, seq, items }
        }
        TYPE_BYE => Frame::Bye {
            sensor: r.varint()?,
            next_seq: r.varint()?,
            dropped_frames: r.varint()?,
            dropped_items: r.varint()?,
        },
        other => return Err(FeedError::BadFrameType(other)),
    };
    if !r.is_empty() {
        return Err(FeedError::TrailingBytes(r.remaining()));
    }
    Ok(frame)
}

/// Incremental frame decoder over a byte stream.
///
/// Like [`dnswire::tcp::FrameDecoder`] but for feed frames: push arbitrary
/// chunks, pop decoded [`Frame`]s. A payload that fails its CRC or its
/// decode is consumed (the length prefix keeps the stream aligned) and
/// reported as an error; an oversized length prefix is unrecoverable and
/// the connection should be dropped.
#[derive(Debug)]
pub struct FrameReader<T> {
    frames: Reassembler<U32Prefix>,
    decoded: u64,
    _item: std::marker::PhantomData<fn() -> T>,
}

impl<T: FeedItem> Default for FrameReader<T> {
    fn default() -> Self {
        FrameReader {
            frames: Reassembler::new(MAX_FRAME),
            decoded: 0,
            _item: std::marker::PhantomData,
        }
    }
}

impl<T: FeedItem> FrameReader<T> {
    /// Fresh reader.
    pub fn new() -> FrameReader<T> {
        FrameReader::default()
    }

    /// Append stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.frames.push(bytes);
    }

    /// Bytes buffered towards an incomplete frame.
    pub fn buffered(&self) -> usize {
        self.frames.buffered()
    }

    /// Frames decoded successfully over the reader's lifetime.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Try to decode the next complete frame; `Ok(None)` means more bytes
    /// are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame<T>>, FeedError> {
        let Some(payload) = self.frames.next_frame()? else {
            return Ok(None);
        };
        let frame = decode_payload(&payload)?;
        self.decoded += 1;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testitem::TestItem;

    fn batch(seq: u64, vals: &[u64]) -> Frame<TestItem> {
        Frame::Batch {
            sensor: 9,
            seq,
            items: vals.iter().map(|&v| TestItem::new(v)).collect(),
        }
    }

    #[test]
    fn roundtrip_all_frame_types() {
        let frames = vec![
            Frame::Hello {
                sensor: 9,
                next_seq: 0,
                item_version: TestItem::ITEM_VERSION,
            },
            batch(0, &[1, 2, 3]),
            batch(1, &[]),
            Frame::Bye {
                sensor: 9,
                next_seq: 2,
                dropped_frames: 1,
                dropped_items: 4,
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            encode_frame(f, &mut stream);
        }
        // Byte-at-a-time segmentation: the hard case of TCP reassembly.
        let mut reader = FrameReader::<TestItem>::new();
        let mut got = Vec::new();
        for &b in &stream {
            reader.push(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(reader.decoded(), 4);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn preencoded_batch_is_wire_identical() {
        let items = vec![TestItem::new(1), TestItem::new(2), TestItem::new(3)];
        let mut encoded = Vec::new();
        for item in &items {
            item.encode(&mut encoded);
        }
        let mut direct = Vec::new();
        encode_batch_preencoded(9, 42, items.len() as u64, &encoded, &mut direct);
        let mut reference = Vec::new();
        encode_frame(
            &Frame::Batch {
                sensor: 9,
                seq: 42,
                items,
            },
            &mut reference,
        );
        assert_eq!(direct, reference);
    }

    #[test]
    fn corrupt_payload_byte_fails_crc_and_keeps_alignment() {
        let mut stream = Vec::new();
        encode_frame(&batch(0, &[7]), &mut stream);
        let first_len = stream.len();
        encode_frame(&batch(1, &[8]), &mut stream);
        // Flip one byte inside the first frame's payload (past the 4-byte
        // length prefix).
        stream[5] ^= 0xff;
        let mut reader = FrameReader::<TestItem>::new();
        reader.push(&stream);
        assert!(matches!(reader.next_frame(), Err(FeedError::Crc { .. })));
        // The second frame still decodes: alignment survived.
        assert_eq!(reader.next_frame().unwrap(), Some(batch(1, &[8])));
        let _ = first_len;
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut stream = Vec::new();
        encode_frame::<TestItem>(
            &Frame::Hello {
                sensor: 1,
                next_seq: 0,
                item_version: TestItem::ITEM_VERSION + 1,
            },
            &mut stream,
        );
        let mut reader = FrameReader::<TestItem>::new();
        reader.push(&stream);
        assert!(matches!(
            reader.next_frame(),
            Err(FeedError::BadItemVersion { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut reader = FrameReader::<TestItem>::new();
        reader.push(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(matches!(reader.next_frame(), Err(FeedError::Framing(_))));
    }
}
