//! Deterministic k-way merge of per-sensor item streams by time.
//!
//! Each sensor delivers its items in emission order, but the collector
//! receives the streams interleaved arbitrarily by the network. The
//! merger releases the globally smallest-time head only when every *open*
//! stream has a head to compare against — otherwise an early-arriving
//! stream could overtake a slow one and break determinism. A stream that
//! is closed (sensor said BYE or its connection dropped) no longer blocks
//! the merge; whatever it already delivered still drains in order.
//!
//! Ties on time break by sensor id, so the merged order is a pure
//! function of the input streams.
//!
//! # Late items
//!
//! A closed stream stops gating the merge, so its peers may legitimately
//! advance past time T while a sensor is disconnected. If that sensor
//! later reconnects and delivers items *older* than what has already been
//! released, emitting them would silently reorder the merged feed — the
//! downstream pipeline would produce different output than a single-
//! process run with no record of why. The merger therefore tracks the
//! release watermark `(time, sensor)` and refuses such items at
//! [`TimeMerger::push`], returning the count so the caller can account
//! the loss (the collector records it per sensor as `late_items`).
//!
//! The same rule applies *within* a stream: a gap-filling frame that
//! arrives after newer frames were already queued (an overtaken
//! connection's data surfacing late) may carry items older than the
//! stream's own tail. Queuing them would break the stream's FIFO order,
//! so they are refused and counted too. Every released stream is thus
//! `(time, sensor)`-monotone by construction.

use std::collections::{BTreeMap, VecDeque};

#[derive(Debug)]
struct Stream<T> {
    queue: VecDeque<T>,
    open: bool,
}

/// Watermark-style merger of per-sensor time-ordered streams.
#[derive(Debug)]
pub struct TimeMerger<T> {
    streams: BTreeMap<u64, Stream<T>>,
    /// `(time, sensor)` of the most recently released item.
    watermark: Option<(f64, u64)>,
}

impl<T> Default for TimeMerger<T> {
    fn default() -> Self {
        TimeMerger {
            streams: BTreeMap::new(),
            watermark: None,
        }
    }
}

impl<T: crate::codec::FeedItem> TimeMerger<T> {
    /// Empty merger; streams appear via [`TimeMerger::open`].
    pub fn new() -> TimeMerger<T> {
        TimeMerger::default()
    }

    /// Declare `sensor` live: its stream now gates the merge until it is
    /// closed. Reopening after a close (sensor reconnect) is fine.
    pub fn open(&mut self, sensor: u64) {
        self.streams
            .entry(sensor)
            .or_insert_with(|| Stream {
                queue: VecDeque::new(),
                open: true,
            })
            .open = true;
    }

    /// Append items (in emission order) to `sensor`'s stream. Items that
    /// would release behind the merge watermark — a reconnecting sensor
    /// delivering data older than what already went out — are discarded
    /// to keep the output order deterministic; the count of such late
    /// items is returned so the caller can account the divergence.
    pub fn push(&mut self, sensor: u64, items: impl IntoIterator<Item = T>) -> u64 {
        let stream = self.streams.entry(sensor).or_insert_with(|| Stream {
            queue: VecDeque::new(),
            open: false,
        });
        let mut late = 0u64;
        for item in items {
            let t = item.order_time();
            let behind_watermark = match self.watermark {
                Some((wt, ws)) => t < wt || (t == wt && sensor < ws),
                None => false,
            };
            let behind_tail = match stream.queue.back() {
                Some(tail) => t < tail.order_time(),
                None => false,
            };
            if behind_watermark || behind_tail {
                late += 1;
                continue;
            }
            stream.queue.push_back(item);
        }
        late
    }

    /// Mark `sensor` finished: an empty queue no longer blocks the merge.
    pub fn close(&mut self, sensor: u64) {
        if let Some(s) = self.streams.get_mut(&sensor) {
            s.open = false;
        }
    }

    /// Number of streams currently gating the merge.
    pub fn open_streams(&self) -> usize {
        self.streams.values().filter(|s| s.open).count()
    }

    /// Items buffered across all streams.
    pub fn buffered(&self) -> usize {
        self.streams.values().map(|s| s.queue.len()).sum()
    }

    /// Pop the next item in merged time order, or `None` when an open
    /// stream is empty (more input needed) or everything has drained.
    pub fn pop_ready(&mut self) -> Option<T> {
        let mut best: Option<(f64, u64)> = None;
        for (&sensor, stream) in &self.streams {
            match stream.queue.front() {
                None => {
                    if stream.open {
                        // A live stream with no head: releasing anything
                        // now could reorder against its next item.
                        return None;
                    }
                }
                Some(head) => {
                    let t = head.order_time();
                    // BTreeMap iterates sensors ascending, so strict `<`
                    // keeps the lowest sensor id on time ties.
                    let better = match best {
                        None => true,
                        Some((bt, _)) => t < bt,
                    };
                    if better {
                        best = Some((t, sensor));
                    }
                }
            }
        }
        let (time, sensor) = best?;
        self.watermark = Some((time, sensor));
        let stream = self.streams.get_mut(&sensor)?;
        let item = stream.queue.pop_front();
        if stream.queue.is_empty() && !stream.open {
            self.streams.remove(&sensor);
        }
        item
    }

    /// Drain everything currently releasable, in merged order.
    pub fn drain_ready(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.pop_ready() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testitem::TestItem;

    fn times(items: &[TestItem]) -> Vec<f64> {
        items.iter().map(|i| i.time).collect()
    }

    #[test]
    fn merges_two_streams_by_time() {
        let mut m = TimeMerger::new();
        m.open(1);
        m.open(2);
        m.push(1, [TestItem::at(1, 1.0), TestItem::at(3, 3.0)]);
        m.push(2, [TestItem::at(2, 2.0), TestItem::at(4, 4.0)]);
        m.close(1);
        m.close(2);
        assert_eq!(times(&m.drain_ready()), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn open_empty_stream_blocks_release() {
        let mut m = TimeMerger::new();
        m.open(1);
        m.open(2);
        m.push(1, [TestItem::at(1, 1.0)]);
        // Sensor 2 is live but silent: nothing may be released yet.
        assert!(m.pop_ready().is_none());
        m.push(2, [TestItem::at(2, 0.5)]);
        // Now sensor 2's earlier item correctly comes out first.
        assert_eq!(m.pop_ready().unwrap().time, 0.5);
        assert_eq!(m.pop_ready(), None); // sensor 2 drained, still open
        m.close(2);
        assert_eq!(m.pop_ready().unwrap().time, 1.0);
    }

    #[test]
    fn closed_stream_does_not_block() {
        let mut m = TimeMerger::new();
        m.open(1);
        m.open(2);
        m.push(1, [TestItem::at(1, 1.0)]);
        m.close(2); // sensor 2 died without delivering anything
        assert_eq!(m.pop_ready().unwrap().time, 1.0);
    }

    #[test]
    fn time_ties_break_by_sensor_id() {
        let mut m = TimeMerger::new();
        m.open(2);
        m.open(1);
        m.push(2, [TestItem::at(20, 5.0)]);
        m.push(1, [TestItem::at(10, 5.0)]);
        m.close(1);
        m.close(2);
        let got: Vec<u64> = m.drain_ready().into_iter().map(|i| i.value).collect();
        assert_eq!(got, [10, 20]);
    }

    #[test]
    fn late_items_behind_watermark_are_dropped_and_counted() {
        let mut m = TimeMerger::new();
        m.open(1);
        m.open(2);
        m.push(1, [TestItem::at(1, 1.0), TestItem::at(2, 4.0)]);
        // Sensor 2 dies before delivering; the merge advances without it.
        m.close(2);
        assert_eq!(times(&m.drain_ready()), [1.0, 4.0]);
        // Sensor 2 reconnects and delivers items from before the
        // watermark: they must be dropped, not reordered in.
        m.open(2);
        let late = m.push(
            2,
            [
                TestItem::at(9, 0.5),
                TestItem::at(10, 2.0),
                TestItem::at(11, 5.0),
            ],
        );
        assert_eq!(late, 2, "items at 0.5 and 2.0 are behind watermark 4.0");
        m.close(1);
        m.close(2);
        assert_eq!(times(&m.drain_ready()), [5.0]);
    }

    #[test]
    fn watermark_tie_keeps_higher_sensor_and_drops_lower() {
        let mut m = TimeMerger::new();
        m.open(1);
        m.push(1, [TestItem::at(1, 3.0)]);
        m.close(1);
        assert_eq!(times(&m.drain_ready()), [3.0]);
        // Same time, higher sensor id: would release after (3.0, 1), OK.
        assert_eq!(m.push(2, [TestItem::at(2, 3.0)]), 0);
        // Same time, lower sensor id: would have had to release first.
        assert_eq!(m.push(0, [TestItem::at(3, 3.0)]), 1);
        m.close(0);
        m.close(2);
        assert_eq!(times(&m.drain_ready()), [3.0]);
    }

    /// A gap-filling frame surfaces behind frames already queued for the
    /// same stream: queueing its older items would break the stream's
    /// FIFO order, so they are refused and counted even though the
    /// global watermark has not passed them yet.
    #[test]
    fn items_behind_own_stream_tail_are_late() {
        let mut m = TimeMerger::new();
        m.open(1);
        m.push(1, [TestItem::at(1, 5.0)]);
        // Nothing released yet (no watermark), but 2.0 < queued tail 5.0.
        let late = m.push(1, [TestItem::at(2, 2.0), TestItem::at(3, 6.0)]);
        assert_eq!(late, 1);
        m.close(1);
        assert_eq!(times(&m.drain_ready()), [5.0, 6.0]);
    }

    #[test]
    fn reopen_after_close_gates_again() {
        let mut m = TimeMerger::new();
        m.open(1);
        m.open(2);
        m.push(2, [TestItem::at(2, 2.0)]);
        m.close(1);
        assert_eq!(m.pop_ready().unwrap().time, 2.0);
        m.open(1); // reconnect
        m.push(2, [TestItem::at(3, 3.0)]);
        assert!(m.pop_ready().is_none());
        m.push(1, [TestItem::at(1, 2.5)]);
        assert_eq!(m.pop_ready().unwrap().time, 2.5);
    }
}
