//! `feed` — the sensor→collector transport of the Observatory.
//!
//! The paper's platform does not run inside the resolvers: hundreds of
//! sensor-equipped recursive resolvers summarize their cache-miss traffic
//! and *relay it over the network* to a central collector (the Farsight
//! SIE feed, paper §2.1). This crate reproduces that A→B boundary of
//! Figure 1 as a real transport:
//!
//! * a versioned, length-prefixed binary **frame codec** — compact
//!   varint/fixed encoding, per-frame batches, CRC-32 integrity, and
//!   per-sensor monotone sequence numbers — usable over any
//!   [`std::io::Read`]/[`std::io::Write`], so every path is testable
//!   in-memory ([`frame`], [`codec`]);
//! * a [`Sensor`] client with a bounded send buffer (drop accounting when
//!   full, like a real tap that must never stall the resolver) and
//!   reconnect with exponential backoff plus jitter ([`sensor`],
//!   [`backoff`]);
//! * a [`Collector`] TCP server (std::net + threads + crossbeam channels,
//!   matching the core pipeline's threading style) that accepts many
//!   sensor connections, detects sequence gaps and CRC failures per
//!   sensor, and merges the concurrent streams back into one
//!   time-ordered feed ([`collector`], [`merge`]).
//!
//! The crate is deliberately generic over the item type via [`FeedItem`]:
//! the Observatory's `TxSummary` codec lives in `dns-observatory` (which
//! depends on this crate), keeping the transport reusable and the
//! dependency graph acyclic.
//!
//! # Wire format
//!
//! Every frame is a 32-bit big-endian length prefix (reusing
//! [`dnswire::framing`]) followed by a payload that always ends in a
//! CRC-32 of everything before it:
//!
//! ```text
//! | u32 len | type u8 | body ... | crc32 u32 LE |
//!
//! HELLO body:  magic "DOF1" | protocol u8 | item version u8
//!              | sensor varint | next_seq varint
//! BATCH body:  sensor varint | seq varint | count varint | count × item
//! BYE body:    sensor varint | next_seq varint
//!              | dropped_frames varint | dropped_items varint
//! ```
//!
//! Sequence numbers count *frames* per sensor and are consumed even when
//! a frame is dropped at the sensor's full send buffer, so the collector
//! can report the exact loss as a sequence gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod codec;
pub mod collector;
pub mod crc32;
pub mod error;
pub mod frame;
pub mod machine;
pub mod merge;
pub mod metrics;
pub mod sensor;
#[cfg(test)]
pub(crate) mod testitem;
pub mod varint;

pub use backoff::{Backoff, BackoffConfig};
pub use codec::{ByteReader, FeedItem};
pub use collector::{
    Collector, CollectorConfig, CollectorCore, CollectorReport, FrameOutcome, SensorLedger,
    SensorStats,
};
pub use error::FeedError;
pub use frame::{Frame, FrameReader, MAGIC, MAX_FRAME, PROTOCOL_VERSION};
pub use machine::{SealEvent, SensorMachine, SensorOp, Wrote};
pub use merge::TimeMerger;
pub use metrics::{CollectorMetrics, CollectorTotals, SensorMetrics};
pub use sensor::{SealedFrame, Sensor, SensorConfig, SensorEncoder, SensorReport};
