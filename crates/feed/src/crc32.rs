//! CRC-32 (IEEE 802.3 / zlib polynomial), table-driven, dependency-free.
//!
//! The feed puts a CRC over every frame payload so that corruption
//! anywhere — including a mis-framed stream after a damaged length
//! prefix — is detected instead of silently producing a wrong summary.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xedb8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `0xffffffff`, final xor `0xffffffff`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard check input for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        let a = crc32(b"hello feed");
        let b = crc32(b"hello feeD");
        assert_ne!(a, b);
    }
}
