//! Sensor side of the feed: batch items into frames, buffer a bounded
//! number of frames, and push them to the collector over TCP with
//! reconnect-and-backoff.
//!
//! The codec half ([`SensorEncoder`]) is sans-io and independently
//! testable; the [`Sensor`] wraps it with a writer thread so the caller
//! (the resolver tap) never blocks on the network: when the send buffer
//! is full, whole frames are dropped and *accounted* — their sequence
//! numbers are still consumed, so the collector sees the exact gap, and
//! the BYE frame reports the sensor's own tally.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use telemetry::trace::{TraceEvent, TraceKind, TraceRing};
use telemetry::{Clock, FlightRecorder, RateLimiter, Registry, SystemClock};

use crate::backoff::{Backoff, BackoffConfig};
use crate::codec::FeedItem;
use crate::collector::IO_STACK_BYTES;
use crate::frame::{encode_batch_preencoded, encode_frame, Frame};
use crate::metrics::SensorMetrics;

/// Tuning for a [`Sensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorConfig {
    /// Identity reported in every frame; stable across reconnects and
    /// restarts.
    pub sensor_id: u64,
    /// Items per BATCH frame.
    pub batch_items: usize,
    /// Frames the send buffer holds before new frames are dropped.
    pub buffer_frames: usize,
    /// Sequence number of the first batch (a restarted sensor resumes
    /// from where its previous incarnation reported stopping).
    pub first_seq: u64,
    /// Reconnect schedule.
    pub backoff: BackoffConfig,
}

impl SensorConfig {
    /// Defaults for `sensor_id`: 256-item batches, 64-frame buffer,
    /// sequence numbers from zero.
    pub fn new(sensor_id: u64) -> SensorConfig {
        SensorConfig {
            sensor_id,
            batch_items: 256,
            buffer_frames: 64,
            first_seq: 0,
            backoff: BackoffConfig {
                seed: sensor_id,
                ..BackoffConfig::default()
            },
        }
    }
}

/// An encoded frame ready for the wire, with the metadata the buffer and
/// the loss accounting need.
#[derive(Debug, Clone)]
pub struct SealedFrame {
    /// Wire bytes (length prefix included).
    pub bytes: Vec<u8>,
    /// Frame sequence number (for BYE frames: the final `next_seq`).
    pub seq: u64,
    /// Items inside the frame.
    pub items: u64,
}

/// Soft byte budget for one BATCH: headroom under
/// [`crate::frame::MAX_FRAME`] for the batch header and CRC trailer.
/// Item counts alone can't bound frame size — one chunked sketch-state
/// record is orders of magnitude larger than a DNS summary — so the
/// encoder also seals when the next item would cross this line.
const MAX_BATCH_BYTES: usize = crate::frame::MAX_FRAME - 1024;

/// Sans-io encoder: accumulates items, seals them into BATCH frames with
/// monotone sequence numbers, and builds the HELLO/BYE envelopes.
///
/// Items are encoded as they arrive (batch-payload order), so batching
/// is byte-aware: a batch seals at `batch_items` items *or* just before
/// it would overflow the frame cap, whichever comes first.
#[derive(Debug)]
pub struct SensorEncoder<T> {
    sensor: u64,
    batch_items: usize,
    next_seq: u64,
    /// Pending items, already encoded back-to-back.
    pending: Vec<u8>,
    pending_items: u64,
    _item: std::marker::PhantomData<fn(T)>,
}

impl<T: FeedItem> SensorEncoder<T> {
    /// Encoder for `sensor`, sealing every `batch_items` items, starting
    /// at sequence `first_seq`.
    pub fn new(sensor: u64, batch_items: usize, first_seq: u64) -> SensorEncoder<T> {
        SensorEncoder {
            sensor,
            batch_items: batch_items.max(1),
            next_seq: first_seq,
            pending: Vec::new(),
            pending_items: 0,
            _item: std::marker::PhantomData,
        }
    }

    /// Sensor identity.
    pub fn sensor(&self) -> u64 {
        self.sensor
    }

    /// Sequence number the next sealed batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Items buffered towards the next batch.
    pub fn pending(&self) -> usize {
        self.pending_items as usize
    }

    /// HELLO announcing `sensor` will continue at `next_seq`.
    pub fn hello_for(sensor: u64, next_seq: u64) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame::<T>(
            &Frame::Hello {
                sensor,
                next_seq,
                item_version: T::ITEM_VERSION,
            },
            &mut out,
        );
        out
    }

    /// HELLO for this encoder's current position.
    pub fn hello_frame(&self) -> Vec<u8> {
        Self::hello_for(self.sensor, self.next_seq)
    }

    /// Add an item; returns a sealed frame when the batch fills — by
    /// item count, or early when the item would push the frame past
    /// [`crate::frame::MAX_FRAME`] (the item then opens the next
    /// batch). A *single* item must still fit a frame on its own; that
    /// is the chunking layer's contract, not the encoder's.
    pub fn push(&mut self, item: T) -> Option<SealedFrame> {
        let start = self.pending.len();
        item.encode(&mut self.pending);
        if self.pending_items > 0 && self.pending.len() > MAX_BATCH_BYTES {
            let tail = self.pending.split_off(start);
            let sealed = self.flush();
            self.pending = tail;
            self.pending_items = 1;
            return sealed;
        }
        self.pending_items += 1;
        if self.pending_items as usize >= self.batch_items {
            self.flush()
        } else {
            None
        }
    }

    /// Seal the partial batch, if any.
    pub fn flush(&mut self) -> Option<SealedFrame> {
        if self.pending_items == 0 {
            return None;
        }
        let encoded = std::mem::take(&mut self.pending);
        let items = std::mem::replace(&mut self.pending_items, 0);
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut bytes = Vec::with_capacity(encoded.len() + 32);
        encode_batch_preencoded(self.sensor, seq, items, &encoded, &mut bytes);
        Some(SealedFrame { bytes, seq, items })
    }

    /// BYE carrying this sensor's own loss accounting.
    pub fn bye_frame(&self, dropped_frames: u64, dropped_items: u64) -> SealedFrame {
        let mut bytes = Vec::new();
        encode_frame::<T>(
            &Frame::Bye {
                sensor: self.sensor,
                next_seq: self.next_seq,
                dropped_frames,
                dropped_items,
            },
            &mut bytes,
        );
        SealedFrame {
            bytes,
            seq: self.next_seq,
            items: 0,
        }
    }
}

/// Final accounting from a finished or aborted [`Sensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorReport {
    /// Sensor identity.
    pub sensor: u64,
    /// Successful TCP connections made.
    pub connects: u64,
    /// Frames written to the wire (HELLOs excluded).
    pub sent_frames: u64,
    /// Items inside those frames.
    pub sent_items: u64,
    /// Frames dropped at the full send buffer.
    pub dropped_frames: u64,
    /// Items inside the dropped frames.
    pub dropped_items: u64,
    /// Sequence number a restarted incarnation should resume from.
    pub next_seq: u64,
}

#[derive(Debug, Default)]
struct Queue {
    frames: VecDeque<SealedFrame>,
    in_flight: bool,
    closing: bool,
    abort: bool,
    sent_frames: u64,
    sent_items: u64,
    dropped_frames: u64,
    dropped_items: u64,
    connects: u64,
}

struct Shared<T> {
    queue: Mutex<Queue>,
    cond: Condvar,
    encoder: Mutex<SensorEncoder<T>>,
}

/// TCP feed client: a resolver tap calls [`Sensor::send`] and never
/// blocks on the network; a writer thread owns the connection.
pub struct Sensor<T> {
    shared: Arc<Shared<T>>,
    buffer_frames: usize,
    writer: Option<JoinHandle<()>>,
    metrics: SensorMetrics,
    warn_limit: Mutex<RateLimiter>,
    warn_clock: SystemClock,
    trace: TraceRing,
}

/// Stage name on sensor trace events.
const STAGE: &str = "sensor";

impl<T: FeedItem> Sensor<T> {
    /// Start a sensor pushing to `addr`. Connection (and reconnection) is
    /// handled by the writer thread; this call never blocks on the
    /// network. Telemetry goes to the global registry.
    pub fn connect(addr: impl Into<String>, config: SensorConfig) -> Sensor<T> {
        Sensor::connect_with_registry(addr, config, &Registry::global())
    }

    /// Start a sensor reporting telemetry to `registry`.
    pub fn connect_with_registry(
        addr: impl Into<String>,
        config: SensorConfig,
        registry: &Registry,
    ) -> Sensor<T> {
        let addr = addr.into();
        let metrics = SensorMetrics::register(registry, config.sensor_id);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            cond: Condvar::new(),
            encoder: Mutex::new(SensorEncoder::new(
                config.sensor_id,
                config.batch_items,
                config.first_seq,
            )),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            let backoff = config.backoff;
            let sensor_id = config.sensor_id;
            let metrics = metrics.clone();
            std::thread::Builder::new()
                .name(format!("feed-sensor-{sensor_id}"))
                .stack_size(IO_STACK_BYTES)
                .spawn(move || writer_loop::<T>(&addr, &shared, backoff, sensor_id, &metrics))
                .expect("spawn sensor writer")
        };
        Sensor {
            shared,
            buffer_frames: config.buffer_frames.max(1),
            writer: Some(writer),
            metrics,
            // One drop warning per 5s of wall time; the counters carry
            // the full tally.
            warn_limit: Mutex::new(RateLimiter::new(5_000_000)),
            warn_clock: SystemClock::new(),
            trace: FlightRecorder::global().ring("feed/sensor"),
        }
    }

    /// Queue an item. When the batch fills, the sealed frame enters the
    /// send buffer — or is dropped (and accounted) if the buffer is full.
    pub fn send(&self, item: T) {
        self.metrics.pushed_items.inc(1);
        let sealed = self.shared.encoder.lock().unwrap().push(item);
        if let Some(frame) = sealed {
            self.enqueue(frame, true);
        }
    }

    /// Seal and queue the current partial batch.
    pub fn flush(&self) {
        let sealed = self.shared.encoder.lock().unwrap().flush();
        if let Some(frame) = sealed {
            self.enqueue(frame, true);
        }
    }

    /// Block until the send buffer has fully drained onto the wire.
    pub fn wait_drained(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        while !q.frames.is_empty() || q.in_flight {
            q = self.shared.cond.wait(q).unwrap();
        }
    }

    /// Flush, send BYE, drain, and return the final accounting.
    pub fn finish(mut self) -> SensorReport {
        self.flush();
        let bye = {
            let q = self.shared.queue.lock().unwrap();
            let enc = self.shared.encoder.lock().unwrap();
            enc.bye_frame(q.dropped_frames, q.dropped_items)
        };
        // Control frames bypass the drop policy: accounting must arrive.
        self.enqueue(bye, false);
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.closing = true;
            self.shared.cond.notify_all();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        self.report()
    }

    /// Tear the connection down *without* BYE — simulates (or reacts to)
    /// a crash. The partial batch is sealed (consuming its sequence
    /// number, so its loss stays gap-visible) and everything queued is
    /// discarded and counted as dropped. The report's `next_seq` is what
    /// a restarted incarnation should resume from.
    pub fn abort(mut self) -> SensorReport {
        {
            let pending = self.shared.encoder.lock().unwrap().flush();
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(f) = pending {
                q.dropped_frames += 1;
                q.dropped_items += f.items;
                self.metrics.dropped_frames.inc(1);
                self.metrics.dropped_items.inc(f.items);
            }
            while let Some(f) = q.frames.pop_front() {
                q.dropped_frames += 1;
                q.dropped_items += f.items;
                self.metrics.dropped_frames.inc(1);
                self.metrics.dropped_items.inc(f.items);
            }
            self.metrics.queue_frames.set(0.0);
            q.abort = true;
            self.shared.cond.notify_all();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        self.report()
    }

    fn report(&self) -> SensorReport {
        let q = self.shared.queue.lock().unwrap();
        let enc = self.shared.encoder.lock().unwrap();
        SensorReport {
            sensor: enc.sensor(),
            connects: q.connects,
            sent_frames: q.sent_frames,
            sent_items: q.sent_items,
            dropped_frames: q.dropped_frames,
            dropped_items: q.dropped_items,
            next_seq: enc.next_seq(),
        }
    }

    fn enqueue(&self, frame: SealedFrame, droppable: bool) {
        let mut q = self.shared.queue.lock().unwrap();
        if droppable && q.frames.len() >= self.buffer_frames {
            // The frame's sequence number stays consumed, so the
            // collector observes this exact loss as a gap.
            q.dropped_frames += 1;
            q.dropped_items += frame.items;
            let total = (q.dropped_frames, q.dropped_items);
            drop(q);
            self.metrics.dropped_frames.inc(1);
            self.metrics.dropped_items.inc(frame.items);
            if self.trace.is_enabled() {
                self.trace.record(
                    TraceEvent::new(self.warn_clock.now_us(), STAGE, TraceKind::Drop)
                        .source(self.metrics_sensor_id())
                        .value(frame.items),
                );
            }
            if let Some(suppressed) = self
                .warn_limit
                .lock()
                .unwrap()
                .allow(self.warn_clock.now_us())
            {
                eprintln!(
                    "sensor {}: send buffer full, dropped frame seq {} \
                     ({} frames / {} items total, {suppressed} earlier warnings suppressed)",
                    self.metrics_sensor_id(),
                    frame.seq,
                    total.0,
                    total.1,
                );
            }
            return;
        }
        q.frames.push_back(frame);
        self.metrics.queue_frames.set(q.frames.len() as f64);
        self.shared.cond.notify_all();
    }

    fn metrics_sensor_id(&self) -> u64 {
        self.shared.encoder.lock().unwrap().sensor()
    }
}

impl<T> Drop for Sensor<T> {
    fn drop(&mut self) {
        if let Some(h) = self.writer.take() {
            {
                let mut q = self.shared.queue.lock().unwrap();
                q.abort = true;
                self.shared.cond.notify_all();
            }
            let _ = h.join();
        }
    }
}

fn writer_loop<T: FeedItem>(
    addr: &str,
    shared: &Shared<T>,
    backoff: BackoffConfig,
    sensor_id: u64,
    metrics: &SensorMetrics,
) {
    let mut backoff = Backoff::new(backoff);
    let mut conn: Option<TcpStream> = None;
    // Connection lifecycle provenance: (re)connects announce the resume
    // position, write failures mark the retransmit about to happen.
    let trace = FlightRecorder::global().ring("feed/sensor");
    let trace_clock = SystemClock::new();
    'frames: loop {
        // Wait for something to send (or a shutdown signal).
        let frame = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if q.abort {
                    return;
                }
                if let Some(f) = q.frames.pop_front() {
                    q.in_flight = true;
                    break f;
                }
                if q.closing {
                    return;
                }
                q = shared.cond.wait(q).unwrap();
            }
        };
        // Write it, reconnecting as needed. At-least-once: a frame whose
        // write failed midway may reach the collector twice; the
        // sequence number lets the collector discard the duplicate.
        loop {
            if conn.is_none() {
                match TcpStream::connect(addr) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        backoff.reset();
                        // Announce where this connection resumes: the
                        // frame about to be (re)sent.
                        let hello = SensorEncoder::<T>::hello_for(sensor_id, frame.seq);
                        let mut stream = stream;
                        if std::io::Write::write_all(&mut stream, &hello).is_err() {
                            continue;
                        }
                        {
                            let mut q = shared.queue.lock().unwrap();
                            q.connects += 1;
                        }
                        metrics.connects.inc(1);
                        metrics.backoff_seconds.set(0.0);
                        if trace.is_enabled() {
                            trace.record(
                                TraceEvent::new(trace_clock.now_us(), STAGE, TraceKind::Open)
                                    .source(sensor_id)
                                    .value(frame.seq),
                            );
                        }
                        conn = Some(stream);
                    }
                    Err(_) => {
                        let delay = backoff.next_delay();
                        metrics.connect_failures.inc(1);
                        metrics.backoff_seconds.set(delay.as_secs_f64());
                        if sleep_or_abort(shared, delay) {
                            return;
                        }
                        continue;
                    }
                }
            }
            let stream = conn.as_mut().expect("connection present");
            match std::io::Write::write_all(stream, &frame.bytes) {
                Ok(()) => {
                    let queued = {
                        let mut q = shared.queue.lock().unwrap();
                        q.in_flight = false;
                        q.sent_frames += 1;
                        q.sent_items += frame.items;
                        shared.cond.notify_all();
                        q.frames.len()
                    };
                    metrics.sent_frames.inc(1);
                    metrics.sent_items.inc(frame.items);
                    metrics.queue_frames.set(queued as f64);
                    continue 'frames;
                }
                Err(_) => {
                    conn = None;
                    if trace.is_enabled() {
                        trace.record(
                            TraceEvent::new(trace_clock.now_us(), STAGE, TraceKind::Mark)
                                .source(sensor_id)
                                .value(frame.seq),
                        );
                    }
                    if shared.queue.lock().unwrap().abort {
                        return;
                    }
                }
            }
        }
    }
}

/// Sleep `delay` but wake early on abort; returns true when aborting.
fn sleep_or_abort<T>(shared: &Shared<T>, delay: Duration) -> bool {
    let q = shared.queue.lock().unwrap();
    let (q, _timeout) = shared
        .cond
        .wait_timeout_while(q, delay, |q| !q.abort && !q.closing)
        .unwrap();
    // `closing` with frames still queued must keep trying to deliver
    // them; only a hard abort stops the writer mid-backoff.
    q.abort
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameReader;
    use crate::testitem::TestItem;
    use std::io::Read;
    use std::net::TcpListener;

    fn read_frames(stream: &mut TcpStream) -> Vec<Frame<TestItem>> {
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 4096];
        let mut out = Vec::new();
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            reader.push(&buf[..n]);
            while let Some(f) = reader.next_frame().unwrap() {
                out.push(f);
            }
        }
        out
    }

    #[test]
    fn encoder_seals_batches_with_monotone_seq() {
        let mut enc = SensorEncoder::<TestItem>::new(3, 2, 10);
        assert!(enc.push(TestItem::new(1)).is_none());
        let f = enc.push(TestItem::new(2)).expect("batch sealed");
        assert_eq!((f.seq, f.items), (10, 2));
        assert!(enc.push(TestItem::new(3)).is_none());
        let f = enc.flush().expect("partial flushed");
        assert_eq!((f.seq, f.items), (11, 1));
        assert!(enc.flush().is_none());
        let bye = enc.bye_frame(4, 9);
        assert_eq!(bye.seq, 12);
        // Everything decodes back.
        let mut reader = FrameReader::<TestItem>::new();
        reader.push(&enc.hello_frame());
        reader.push(&bye.bytes);
        assert!(matches!(
            reader.next_frame().unwrap(),
            Some(Frame::Hello {
                sensor: 3,
                next_seq: 12,
                ..
            })
        ));
        assert!(matches!(
            reader.next_frame().unwrap(),
            Some(Frame::Bye {
                sensor: 3,
                next_seq: 12,
                dropped_frames: 4,
                dropped_items: 9,
            })
        ));
    }

    #[test]
    fn encoder_seals_early_before_frame_cap() {
        // Items are 16 bytes each; with an effectively unbounded item
        // count the byte budget alone must seal each batch under the
        // frame cap, and every item must still arrive exactly once, in
        // order.
        let total = 300_000u64;
        let mut enc = SensorEncoder::<TestItem>::new(5, usize::MAX, 0);
        let mut frames = Vec::new();
        for v in 0..total {
            frames.extend(enc.push(TestItem::new(v)));
        }
        frames.extend(enc.flush());
        assert!(frames.len() >= 2, "byte budget never sealed a frame");
        let mut reader = FrameReader::<TestItem>::new();
        let mut got = 0u64;
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64, "monotone seqs across early seals");
            assert!(
                f.bytes.len() <= crate::frame::MAX_FRAME,
                "sealed frame exceeds the cap: {} bytes",
                f.bytes.len()
            );
            reader.push(&f.bytes);
            while let Some(frame) = reader.next_frame().unwrap() {
                match frame {
                    Frame::Batch {
                        sensor: 5, items, ..
                    } => {
                        for item in items {
                            assert_eq!(item.value, got);
                            got += 1;
                        }
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        }
        assert_eq!(got, total, "every item delivered exactly once");
    }

    #[test]
    fn sensor_delivers_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frames(&mut stream)
        });

        let mut config = SensorConfig::new(7);
        config.batch_items = 3;
        let sensor = Sensor::connect(addr.to_string(), config);
        for v in 0..7u64 {
            sensor.send(TestItem::new(v));
        }
        let report = sensor.finish();
        assert_eq!(report.sent_frames, 4); // 2 full + 1 partial + BYE
        assert_eq!(report.sent_items, 7);
        assert_eq!(report.dropped_frames, 0);
        assert_eq!(report.next_seq, 3);
        assert_eq!(report.connects, 1);

        let frames = server.join().unwrap();
        assert!(matches!(
            frames[0],
            Frame::Hello {
                sensor: 7,
                next_seq: 0,
                ..
            }
        ));
        let seqs: Vec<u64> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::Batch { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, [0, 1, 2]);
        assert!(matches!(
            frames.last().unwrap(),
            Frame::Bye {
                next_seq: 3,
                dropped_frames: 0,
                ..
            }
        ));
    }

    #[test]
    fn sensor_retries_until_listener_appears() {
        // Bind to learn a free port, then close it so the first connect
        // attempts fail and the backoff path runs.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let mut config = SensorConfig::new(1);
        config.batch_items = 1;
        config.backoff = BackoffConfig {
            base_ms: 5,
            max_ms: 40,
            seed: 1,
        };
        let sensor = Sensor::<TestItem>::connect(addr.to_string(), config);
        sensor.send(TestItem::new(42));

        // No wall-clock wait: the first attempt races our rebind and the
        // deterministic backoff schedule itself is covered sans-io (and
        // in virtual time) by `machine::tests`.
        let listener = TcpListener::bind(addr).unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_frames(&mut stream)
        });

        let report = sensor.finish();
        assert_eq!(report.sent_items, 1);
        assert_eq!(report.connects, 1);
        let frames = server.join().unwrap();
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Batch { seq: 0, .. })));
    }

    #[test]
    fn full_buffer_drops_and_accounts() {
        // No listener at all: every sealed frame beyond the buffer bound
        // must be dropped with its items counted and its seq consumed.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let mut config = SensorConfig::new(2);
        config.batch_items = 1;
        config.buffer_frames = 2;
        config.backoff = BackoffConfig {
            base_ms: 1_000,
            max_ms: 1_000,
            seed: 2,
        };
        let sensor = Sensor::<TestItem>::connect(addr.to_string(), config);
        for v in 0..10u64 {
            sensor.send(TestItem::new(v));
        }
        let report = sensor.abort();
        // One frame may be in flight with the writer; the rest split
        // between the 2-slot buffer and the drop counter.
        assert!(
            report.dropped_frames >= 7,
            "dropped {}",
            report.dropped_frames
        );
        assert_eq!(report.dropped_items, report.dropped_frames);
        assert_eq!(report.next_seq, 10); // seqs consumed even for drops
        assert_eq!(report.sent_frames, 0);
    }
}
