//! Exponential backoff with deterministic jitter for sensor reconnects.
//!
//! The schedule is `min(base << attempt, max)` scaled into the 50–100%
//! band by a seeded splitmix-style generator, so thundering herds are
//! broken up but every schedule is reproducible in tests.

use std::time::Duration;

/// Backoff parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First delay, milliseconds.
    pub base_ms: u64,
    /// Ceiling for the un-jittered delay, milliseconds.
    pub max_ms: u64,
    /// Jitter seed; give each sensor its own.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ms: 50,
            max_ms: 5_000,
            seed: 0,
        }
    }
}

/// Stateful backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    config: BackoffConfig,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// Schedule starting at attempt zero.
    pub fn new(config: BackoffConfig) -> Backoff {
        Backoff {
            config,
            attempt: 0,
            state: config.seed,
        }
    }

    /// Failed attempts so far (delays handed out).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Forget the failure history after a successful connect.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Delay to sleep before the next attempt; advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(32);
        let raw = self
            .config
            .base_ms
            .saturating_shl(shift)
            .min(self.config.max_ms);
        self.attempt = self.attempt.saturating_add(1);
        // Jitter into [raw/2, raw]: never below half the nominal delay, so
        // upper bounds on reconnect counts stay provable in tests.
        let jitter = self.next_rand() % (raw / 2 + 1);
        Duration::from_millis(raw - jitter)
    }

    /// Largest delay `next_delay` can return for a given attempt number —
    /// lets tests bound total reconnect latency.
    pub fn max_delay_for_attempt(config: &BackoffConfig, attempt: u32) -> Duration {
        let raw = config
            .base_ms
            .saturating_shl(attempt.min(32))
            .min(config.max_ms);
        Duration::from_millis(raw)
    }

    fn next_rand(&mut self) -> u64 {
        // splitmix64 step: cheap, stateless-seedable, good enough for
        // decorrelating reconnect times.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            0
        } else if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_then_cap() {
        let config = BackoffConfig {
            base_ms: 100,
            max_ms: 1_000,
            seed: 42,
        };
        let mut b = Backoff::new(config);
        let mut prev_nominal = 0;
        for attempt in 0..8u32 {
            let d = b.next_delay().as_millis() as u64;
            let nominal = (100u64 << attempt.min(32)).min(1_000);
            assert!(d >= nominal / 2 && d <= nominal, "attempt {attempt}: {d}ms");
            assert!(nominal >= prev_nominal);
            prev_nominal = nominal;
        }
        assert_eq!(b.attempts(), 8);
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay().as_millis() as u64;
        assert!((50..=100).contains(&d));
    }

    #[test]
    fn deterministic_per_seed() {
        let config = BackoffConfig::default();
        let a: Vec<_> = {
            let mut b = Backoff::new(config);
            (0..5).map(|_| b.next_delay()).collect()
        };
        let b_: Vec<_> = {
            let mut b = Backoff::new(config);
            (0..5).map(|_| b.next_delay()).collect()
        };
        assert_eq!(a, b_);
    }

    #[test]
    fn shift_saturates() {
        let config = BackoffConfig {
            base_ms: u64::MAX / 2,
            max_ms: u64::MAX,
            seed: 1,
        };
        let mut b = Backoff::new(config);
        for _ in 0..70 {
            let _ = b.next_delay();
        }
    }
}
