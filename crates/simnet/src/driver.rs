//! The simulation driver: arrival process, recursive resolution against
//! the delegation tree, cache-miss transaction emission.

use crate::addressing::{mix, NsInfo};
use crate::clients::{pick_intent, QueryIntent};
use crate::config::SimConfig;
use crate::domains::DomainId;
use crate::rescache::{CacheKey, CacheOutcome};
use crate::resolver::ResolverState;
use crate::scenario::Scenario;
use crate::servers::{self, AnswerContext};
use crate::transaction::Transaction;
use crate::world::World;
use crate::zipf::Zipf;
use dnswire::{Edns, Message, Name, Rcode, RecordType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// TTL for cached TLD delegations (root zone NS TTL is 2 days).
const TLD_DELEGATION_TTL: u32 = 172_800;
/// Negative TTL used by root/TLD zones.
const UPSTREAM_NEG_TTL: u32 = 900;
/// Per-resolver cache entry cap.
const CACHE_CAPACITY: usize = 200_000;

/// What a single resolution is aimed at.
#[derive(Debug, Clone)]
enum Target {
    /// A name under an existing registered domain.
    Domain {
        id: DomainId,
        fqdn_idx: usize,
        exists: bool,
    },
    /// A name under a non-existent SLD of an existing TLD (botnet, PRSD).
    MissingDomain { tld: usize },
    /// A name whose TLD does not exist (junk hitting the root).
    BadTld,
    /// A reverse-DNS name.
    Reverse { exists: bool },
}

/// The discrete-event simulation: owns the world, the resolver
/// population, and the clock.
#[derive(Debug)]
pub struct Simulation {
    world: World,
    resolvers: Vec<ResolverState>,
    rng: StdRng,
    now: f64,
    domain_zipf: Zipf,
    /// Popular domains operating TXT-over-DNS services.
    txt_domains: Vec<DomainId>,
    transactions_emitted: u64,
    arrivals: u64,
    /// `simnet_transactions_total` / `simnet_arrivals_total` /
    /// `simnet_stream_seconds` in the global telemetry registry: the
    /// load-generation side of the Observatory's self-report.
    tx_metric: telemetry::Counter,
    arrival_metric: telemetry::Counter,
    stream_seconds: telemetry::Gauge,
}

impl Simulation {
    /// Build a simulation from config and scenario.
    pub fn new(cfg: SimConfig, scenario: Scenario) -> Simulation {
        let world = World::new(cfg, scenario);
        let cfg = &world.cfg;
        let mut resolvers = Vec::with_capacity(cfg.resolvers);
        for r in 0..cfg.resolvers {
            let dnssec_ok = mix(cfg.seed ^ 0xD0 ^ r as u64) % 100 < 35;
            resolvers.push(ResolverState::new(
                r,
                world.plan.resolver_ip(r),
                world.plan.contributor_of(r),
                world.plan.resolver_is_qmin(r, cfg.qmin_fraction),
                dnssec_ok,
                CACHE_CAPACITY,
            ));
        }
        let domain_zipf = Zipf::new(cfg.domains as u64, cfg.zipf_exponent);
        // TXT-service domains: scan the popular head once.
        let txt_domains: Vec<DomainId> = (1..=world.domains.popular_cutoff())
            .filter(|&id| world.domains.props(id).txt_service)
            .collect();
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_c0de);
        let registry = telemetry::Registry::global();
        Simulation {
            world,
            resolvers,
            rng,
            now: 0.0,
            domain_zipf,
            txt_domains,
            transactions_emitted: 0,
            arrivals: 0,
            tx_metric: registry.counter("simnet_transactions_total"),
            arrival_metric: registry.counter("simnet_arrivals_total"),
            stream_seconds: registry.gauge("simnet_stream_seconds"),
        }
    }

    /// Convenience: default scenario.
    pub fn from_config(cfg: SimConfig) -> Simulation {
        Simulation::new(cfg, Scenario::new())
    }

    /// The simulated world (plans, AS database, scenario).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Current stream time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total transactions emitted so far.
    pub fn transactions_emitted(&self) -> u64 {
        self.transactions_emitted
    }

    /// Total client arrivals processed so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Jump the clock forward without generating traffic (lets scenario
    /// events fall between observation windows cheaply).
    pub fn skip_to(&mut self, t: f64) {
        assert!(t >= self.now, "time only moves forward");
        self.now = t;
    }

    /// Run for `duration` simulated seconds, delivering every cache-miss
    /// transaction to `sink`.
    pub fn run(&mut self, duration: f64, sink: &mut dyn FnMut(&Transaction)) {
        let end = self.now + duration;
        loop {
            let rate = self.world.cfg.arrivals_per_sec * self.diurnal_factor();
            let u: f64 = self.rng.gen_range(1e-12..1.0);
            self.now += -u.ln() / rate;
            if self.now >= end {
                self.now = end;
                self.stream_seconds.set(self.now);
                return;
            }
            self.arrival(sink);
        }
    }

    /// Run and collect into a vector (tests and small experiments).
    pub fn collect(&mut self, duration: f64) -> Vec<Transaction> {
        let mut out = Vec::new();
        self.run(duration, &mut |tx| out.push(tx.clone()));
        out
    }

    fn diurnal_factor(&self) -> f64 {
        let a = self.world.cfg.diurnal_amplitude;
        if a == 0.0 {
            return 1.0;
        }
        1.0 + a * (2.0 * std::f64::consts::PI * self.now / 86_400.0).sin()
    }

    /// Process one client arrival.
    fn arrival(&mut self, sink: &mut dyn FnMut(&Transaction)) {
        self.arrivals += 1;
        self.arrival_metric.inc(1);
        let r = self.rng.gen_range(0..self.resolvers.len());
        // Scripted scan floods divert a share of arrivals into junk
        // queries against their target domains (query rate up, response
        // rate flat — see Scenario::push_flood).
        let floods: Vec<(DomainId, f64)> = self
            .world
            .scenario
            .active_floods(self.now)
            .map(|f| (f.domain, f.rate))
            .collect();
        if !floods.is_empty() {
            let total: f64 = floods.iter().map(|(_, rate)| rate).sum();
            let p = (total / self.world.cfg.arrivals_per_sec).min(0.5);
            if self.rng.gen::<f64>() < p {
                let mut pick = self.rng.gen::<f64>() * total;
                let mut target = floods[0].0;
                for &(id, rate) in &floods {
                    pick -= rate;
                    if pick <= 0.0 {
                        target = id;
                        break;
                    }
                }
                let (props, _, _) = self.world.domain_at(target, self.now);
                let name = props
                    .esld
                    .prepend(format!("flood{}", self.rng.gen_range(0..100_000_000u64)).as_bytes())
                    .expect("label fits");
                self.resolve(
                    r,
                    name,
                    RecordType::A,
                    Target::Domain {
                        id: target,
                        fqdn_idx: 0,
                        exists: false,
                    },
                    sink,
                );
                return;
            }
        }
        let intent = pick_intent(&self.world.cfg, self.rng.gen());
        match intent {
            QueryIntent::WebDualstack => {
                let (name, target) = self.web_name();
                if self.world.cfg.remedy_joint_query {
                    // §5.4 remedy 1: one joint A+AAAA query (modelled as
                    // an address-limited ANY) instead of the pair.
                    self.resolve(r, name, RecordType::Any, target, sink);
                } else {
                    self.resolve(r, name.clone(), RecordType::A, target.clone(), sink);
                    self.resolve(r, name, RecordType::Aaaa, target, sink);
                }
            }
            QueryIntent::WebV4Only => {
                let (name, target) = self.web_name();
                self.resolve(r, name, RecordType::A, target, sink);
            }
            QueryIntent::Ptr => {
                let exists = self.rng.gen::<f64>() > 0.29;
                let name = self.reverse_name();
                self.resolve(r, name, RecordType::Ptr, Target::Reverse { exists }, sink);
            }
            QueryIntent::Txt => {
                if self.txt_domains.is_empty() {
                    return;
                }
                let id = self.txt_domains[self.rng.gen_range(0..self.txt_domains.len())];
                let (props, _, _) = self.world.domain_at(id, self.now);
                // Encoded lookups: many distinct multi-label FQDNs per SLD.
                let nonce: u64 = self.rng.gen();
                let name = Name::from_ascii(&format!(
                    "x{:012x}.sig{}.db.{}",
                    nonce & 0xffff_ffff_ffff,
                    nonce % 16,
                    props.esld
                ))
                .expect("valid txt name");
                self.resolve(
                    r,
                    name,
                    RecordType::Txt,
                    Target::Domain {
                        id,
                        fqdn_idx: (nonce % 1_000_000) as usize,
                        exists: true,
                    },
                    sink,
                );
            }
            QueryIntent::Mx => {
                let id = self.zipf_domain();
                let (props, _, _) = self.world.domain_at(id, self.now);
                self.resolve(
                    r,
                    props.esld.clone(),
                    RecordType::Mx,
                    Target::Domain {
                        id,
                        fqdn_idx: 0,
                        exists: true,
                    },
                    sink,
                );
            }
            QueryIntent::Srv => {
                let id = self.zipf_domain();
                let (props, _, _) = self.world.domain_at(id, self.now);
                let name =
                    Name::from_ascii(&format!("_sip._tcp.{}", props.esld)).expect("valid srv name");
                self.resolve(
                    r,
                    name,
                    RecordType::Srv,
                    Target::Domain {
                        id,
                        fqdn_idx: 0,
                        exists: props.has_srv,
                    },
                    sink,
                );
            }
            QueryIntent::Cname => {
                let id = self.zipf_domain();
                let (props, _, _) = self.world.domain_at(id, self.now);
                let exists = self.rng.gen::<f64>() < 0.46;
                let idx = 2; // the alias slot in answer_auth
                let name = if exists {
                    self.world.domains.fqdn(&props, idx)
                } else {
                    props
                        .esld
                        .prepend(format!("alias{}", self.rng.gen_range(0..1_000_000)).as_bytes())
                        .expect("label fits")
                };
                self.resolve(
                    r,
                    name,
                    RecordType::Cname,
                    Target::Domain {
                        id,
                        fqdn_idx: idx,
                        exists,
                    },
                    sink,
                );
            }
            QueryIntent::Soa => {
                let id = self.zipf_domain();
                let (props, _, _) = self.world.domain_at(id, self.now);
                self.resolve(
                    r,
                    props.esld.clone(),
                    RecordType::Soa,
                    Target::Domain {
                        id,
                        fqdn_idx: 0,
                        exists: true,
                    },
                    sink,
                );
            }
            QueryIntent::Ds => {
                let id = self.zipf_domain();
                let (props, _, _) = self.world.domain_at(id, self.now);
                self.resolve(
                    r,
                    props.esld.clone(),
                    RecordType::Ds,
                    Target::Domain {
                        id,
                        fqdn_idx: 0,
                        exists: true,
                    },
                    sink,
                );
            }
            QueryIntent::NsQuery => {
                if self.rng.gen::<f64>() < 0.86 {
                    // PRSD: NS for a non-existent .com SLD, DO set for
                    // maximum amplification.
                    let nonce: u64 = self.rng.gen();
                    let name =
                        Name::from_ascii(&format!("prsd-{:010x}.com", nonce & 0xff_ffff_ffff))
                            .expect("valid prsd name");
                    self.resolve(
                        r,
                        name,
                        RecordType::Ns,
                        Target::MissingDomain { tld: 0 },
                        sink,
                    );
                } else {
                    let id = self.zipf_domain();
                    let (props, _, _) = self.world.domain_at(id, self.now);
                    self.resolve(
                        r,
                        props.esld.clone(),
                        RecordType::Ns,
                        Target::Domain {
                            id,
                            fqdn_idx: 0,
                            exists: true,
                        },
                        sink,
                    );
                }
            }
            QueryIntent::Botnet => {
                // Mylobot-style DGA: unique FQDNs under a few thousand
                // non-existent .com SLDs.
                let sld = self.rng.gen_range(0..4_000u32);
                let nonce: u64 = self.rng.gen();
                let name =
                    Name::from_ascii(&format!("m{:08x}.dga-{sld:04}.com", nonce & 0xffff_ffff))
                        .expect("valid dga name");
                self.resolve(
                    r,
                    name,
                    RecordType::A,
                    Target::MissingDomain { tld: 0 },
                    sink,
                );
            }
            QueryIntent::Scanner => {
                if self.rng.gen::<f64>() < 0.5 {
                    // Non-existent host under an existing domain.
                    let id = self.zipf_domain();
                    let (props, _, _) = self.world.domain_at(id, self.now);
                    let name = props
                        .esld
                        .prepend(format!("scan{}", self.rng.gen_range(0..10_000_000)).as_bytes())
                        .expect("label fits");
                    self.resolve(
                        r,
                        name,
                        RecordType::A,
                        Target::Domain {
                            id,
                            fqdn_idx: 0,
                            exists: false,
                        },
                        sink,
                    );
                } else {
                    // Junk TLD hitting the root (wpad.localdomain etc.).
                    let nonce: u64 = self.rng.gen();
                    let name = Name::from_ascii(&format!("wpad.junk{:06x}", nonce & 0xff_ffff))
                        .expect("valid junk name");
                    self.resolve(r, name, RecordType::A, Target::BadTld, sink);
                }
            }
        }
    }

    /// Pick a web FQDN: Zipf domain, popularity-skewed FQDN index, with a
    /// chance of an ephemeral one-shot name.
    fn web_name(&mut self) -> (Name, Target) {
        let id = self.zipf_domain();
        let (props, _, _) = self.world.domain_at(id, self.now);
        if self.rng.gen::<f64>() < self.world.cfg.ephemeral_fqdn_prob {
            let nonce: u64 = self.rng.gen();
            let name = props
                .esld
                .prepend(format!("s{:010x}", nonce & 0xff_ffff_ffff).as_bytes())
                .expect("label fits");
            return (
                name,
                Target::Domain {
                    id,
                    fqdn_idx: (nonce % 1_000_000) as usize,
                    exists: true,
                },
            );
        }
        // Square a uniform to skew toward index 0 ("www").
        let u: f64 = self.rng.gen();
        let idx = ((u * u) * props.fqdn_count as f64) as usize;
        let name = self.world.domains.fqdn(&props, idx);
        (
            name,
            Target::Domain {
                id,
                fqdn_idx: idx,
                exists: true,
            },
        )
    }

    fn zipf_domain(&mut self) -> DomainId {
        self.domain_zipf.rank_for(self.rng.gen())
    }

    /// A reverse name for a random address, weighted toward real content
    /// space (203.x, mirroring `fqdn_v4`).
    fn reverse_name(&mut self) -> Name {
        if self.rng.gen::<f64>() < 0.97 {
            let (b, c, d) = (
                self.rng.gen_range(0..=255u8),
                self.rng.gen_range(0..=255u8),
                self.rng.gen_range(1..=254u8),
            );
            Name::from_ascii(&format!("{d}.{c}.{b}.203.in-addr.arpa")).expect("valid reverse")
        } else {
            // IPv6 reverse: 34 labels (drives Table 2's qdots for PTR).
            let mut labels: Vec<String> = Vec::with_capacity(34);
            for _ in 0..32 {
                labels.push(format!("{:x}", self.rng.gen_range(0..16)));
            }
            labels.push("ip6".into());
            labels.push("arpa".into());
            Name::from_ascii(&labels.join(".")).expect("valid v6 reverse")
        }
    }

    /// Full recursive resolution of `(qname, qtype)` for resolver `r`,
    /// emitting one transaction per cache-miss hop.
    fn resolve(
        &mut self,
        r: usize,
        qname: Name,
        qtype: RecordType,
        target: Target,
        sink: &mut dyn FnMut(&Transaction),
    ) {
        // 1. Final-answer caches.
        let now = self.now;
        {
            let cache = &mut self.resolvers[r].cache;
            if cache.probe(&CacheKey::Answer(qname.clone(), qtype), now) == CacheOutcome::Hit
                || cache.probe(&CacheKey::NxDomain(qname.clone()), now) == CacheOutcome::Hit
                || cache.probe(&CacheKey::NoData(qname.clone(), qtype), now) == CacheOutcome::Hit
            {
                return;
            }
        }

        match target {
            Target::BadTld => {
                // One root transaction, NXDOMAIN, negative-cache it.
                // A qmin resolver only exposes the (non-existent) TLD.
                let probe = if self.resolvers[r].qmin {
                    qname.suffix(1)
                } else {
                    qname.clone()
                };
                let q = self.build_query(r, &probe, qtype, false);
                let server = self.world.root_server(self.rng.gen());
                let resp = servers::answer_root(self.actx(), &q, None);
                if self.emit(r, &server, q, resp, sink) {
                    self.resolvers[r]
                        .cache
                        .store(CacheKey::NxDomain(qname), now, UPSTREAM_NEG_TTL);
                }
            }
            Target::Reverse { exists } => {
                let q = self.build_query(r, &qname, qtype, false);
                // Key the reverse zone off the queried name, not the
                // resolver: hash the name into a synthetic address so
                // each reverse zone has a stable server.
                let h = mix(hash_name(&qname));
                let zone_addr = std::net::IpAddr::V4(std::net::Ipv4Addr::from((h as u32) | 1));
                let server = self.world.reverse_server(zone_addr);
                let resp = servers::answer_reverse(self.actx(), &q, exists);
                if self.emit(r, &server, q, resp, sink) {
                    let key = if exists {
                        CacheKey::Answer(qname, qtype)
                    } else {
                        CacheKey::NxDomain(qname)
                    };
                    self.resolvers[r].cache.store(key, now, 3_600);
                }
            }
            Target::MissingDomain { tld } => {
                if !self.ensure_tld_delegation(r, tld, &qname, qtype, sink) {
                    return;
                }
                // TLD query → NXDOMAIN (large if DO). A qmin resolver
                // only exposes the (non-existent) SLD.
                let dnssec = qtype == RecordType::Ns || self.resolvers[r].dnssec_ok;
                let probe = if self.resolvers[r].qmin {
                    qname.suffix(2)
                } else {
                    qname.clone()
                };
                let q = self.build_query_full(r, &probe, qtype, dnssec, tld, None);
                let server = self.world.tld_server(tld, self.rng.gen());
                let resp = servers::answer_tld(self.actx(), &q, tld, None);
                if self.emit(r, &server, q, resp, sink) {
                    self.resolvers[r]
                        .cache
                        .store(CacheKey::NxDomain(qname), now, UPSTREAM_NEG_TTL);
                }
            }
            Target::Domain {
                id,
                fqdn_idx,
                exists,
            } => {
                let (props, addr_epoch, ns_epoch) = self.world.domain_at(id, now);
                if !self.ensure_tld_delegation(r, props.tld, &qname, qtype, sink) {
                    return;
                }
                // DS is answered by the parent registry.
                if qtype == RecordType::Ds {
                    let q = self.build_query(r, &qname, qtype, true);
                    let server = self.world.tld_server(props.tld, self.rng.gen());
                    let resp =
                        servers::answer_tld(self.actx(), &q, props.tld, Some((&props, ns_epoch)));
                    if self.emit(r, &server, q, resp, sink) {
                        let key = if props.dnssec {
                            CacheKey::Answer(qname, qtype)
                        } else {
                            CacheKey::NoData(qname, qtype)
                        };
                        self.resolvers[r].cache.store(key, now, 3_600);
                    }
                    return;
                }
                // Domain delegation from the TLD.
                if self.resolvers[r]
                    .cache
                    .probe(&CacheKey::DomainDelegation(id), now)
                    == CacheOutcome::Miss
                {
                    let qmin = self.resolvers[r].qmin;
                    let q = if qmin {
                        self.build_query(r, &props.esld, RecordType::A, false)
                    } else {
                        self.build_query(r, &qname, qtype, self.resolvers[r].dnssec_ok)
                    };
                    let server = self.world.tld_server(props.tld, self.rng.gen());
                    let resp =
                        servers::answer_tld(self.actx(), &q, props.tld, Some((&props, ns_epoch)));
                    if !self.emit(r, &server, q, resp, sink) {
                        return;
                    }
                    self.resolvers[r].cache.store(
                        CacheKey::DomainDelegation(id),
                        now,
                        self.world.cfg.ttl_ns,
                    );
                }
                // Authoritative query: always the full name.
                let q = self.build_query(r, &qname, qtype, self.resolvers[r].dnssec_ok);
                let j = self.rng.gen_range(0..props.ns_count);
                let server = self.world.domain_ns(&props, j, ns_epoch);
                let resp = servers::answer_auth(
                    self.actx(),
                    &q,
                    &props,
                    exists,
                    fqdn_idx,
                    (addr_epoch, ns_epoch),
                );
                if self.emit(r, &server, q, resp.clone(), sink) {
                    let cache = &mut self.resolvers[r].cache;
                    // RFC 2308: the negative-caching TTL is the SOA
                    // minimum advertised in the response's AUTHORITY
                    // section, not zone configuration the resolver cannot
                    // see.
                    let advertised_neg = resp
                        .authorities
                        .iter()
                        .find_map(|rec| match &rec.rdata {
                            dnswire::RData::Soa(soa) => Some(soa.minimum),
                            _ => None,
                        })
                        .unwrap_or(props.neg_ttl);
                    match resp.rcode() {
                        Rcode::NxDomain => {
                            cache.store(CacheKey::NxDomain(qname), now, advertised_neg)
                        }
                        Rcode::NoError if resp.answers.is_empty() => {
                            cache.store(CacheKey::NoData(qname, qtype), now, advertised_neg)
                        }
                        Rcode::NoError => {
                            let ttl = resp.answers[0].ttl;
                            cache.store(CacheKey::Answer(qname, qtype), now, ttl)
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Ensure the TLD delegation is cached, emitting a root transaction if
    /// not. Returns false when the root query was lost (resolution
    /// aborted this round).
    fn ensure_tld_delegation(
        &mut self,
        r: usize,
        tld: usize,
        qname: &Name,
        qtype: RecordType,
        sink: &mut dyn FnMut(&Transaction),
    ) -> bool {
        let now = self.now;
        if self.resolvers[r]
            .cache
            .probe(&CacheKey::TldDelegation(tld), now)
            == CacheOutcome::Hit
        {
            return true;
        }
        let qmin = self.resolvers[r].qmin;
        let q = if qmin {
            let tld_name = Name::from_ascii(self.world.domains.tld_name(tld)).expect("valid tld");
            self.build_query(r, &tld_name, RecordType::A, false)
        } else {
            self.build_query(r, qname, qtype, self.resolvers[r].dnssec_ok)
        };
        let server = self.world.root_server(self.rng.gen());
        let resp = servers::answer_root(self.actx(), &q, Some(tld));
        if !self.emit(r, &server, q, resp, sink) {
            return false;
        }
        self.resolvers[r]
            .cache
            .store(CacheKey::TldDelegation(tld), now, TLD_DELEGATION_TTL);
        true
    }

    fn actx(&self) -> AnswerContext<'_> {
        AnswerContext {
            world: &self.world,
            now: self.now,
            qhash: mix(self.transactions_emitted ^ (self.now.to_bits())),
        }
    }

    fn build_query(&mut self, r: usize, qname: &Name, qtype: RecordType, dnssec: bool) -> Message {
        let id: u16 = self.rng.gen();
        let mut q = Message::query(id, qname.clone(), qtype);
        q.edns = Some(Edns {
            udp_payload_size: 1_232,
            version: 0,
            dnssec_ok: dnssec && (self.resolvers[r].dnssec_ok || qtype == RecordType::Ns),
            options: Vec::new(),
        });
        q
    }

    /// Like `build_query` but allows forcing the DO bit regardless of the
    /// resolver's policy (PRSD attack traffic).
    fn build_query_full(
        &mut self,
        r: usize,
        qname: &Name,
        qtype: RecordType,
        force_do: bool,
        _tld: usize,
        _domain: Option<DomainId>,
    ) -> Message {
        let _ = r;
        let id: u16 = self.rng.gen();
        let mut q = Message::query(id, qname.clone(), qtype);
        q.edns = Some(Edns {
            udp_payload_size: 4_096,
            version: 0,
            dnssec_ok: force_do,
            options: Vec::new(),
        });
        q
    }

    /// Emit one transaction; returns true when it was answered.
    fn emit(
        &mut self,
        r: usize,
        server: &NsInfo,
        query: Message,
        response: Message,
        sink: &mut dyn FnMut(&Transaction),
    ) -> bool {
        self.transactions_emitted += 1;
        self.tx_metric.inc(1);
        let lost = self.rng.gen::<f64>() < self.world.cfg.loss_rate;
        let qhash: u64 = self.rng.gen();
        let delay_ms = self.world.latency.query_delay_ms(r, server, qhash);
        let (response, response_size, ip_ttl) = if lost {
            (None, 0, 0)
        } else {
            let size = response.to_bytes().expect("response serializes").len();
            (
                Some(response),
                size,
                self.world.latency.observed_ip_ttl(r, server),
            )
        };
        let tx = Transaction {
            time: self.now,
            resolver: self.resolvers[r].ip,
            contributor: self.resolvers[r].contributor,
            nameserver: server.ip,
            query,
            response,
            delay_ms,
            ip_ttl_observed: ip_ttl,
            response_size,
        };
        sink(&tx);
        !lost
    }
}

/// Hash a name's lowercase wire form (used to key reverse zones).
fn hash_name(name: &Name) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in name.as_wire() {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulation {
        Simulation::from_config(SimConfig::small())
    }

    #[test]
    fn produces_transactions_deterministically() {
        let mut a = sim();
        let mut b = sim();
        let ta = a.collect(2.0);
        let tb = b.collect(2.0);
        assert!(!ta.is_empty());
        assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(&tb) {
            assert_eq!(x.nameserver, y.nameserver);
            assert_eq!(x.query, y.query);
            assert_eq!(x.response_size, y.response_size);
        }
    }

    #[test]
    fn caching_suppresses_repeats() {
        // With one resolver and no loss, the second wave of arrivals for
        // the same hot domains must produce far fewer transactions.
        let cfg = SimConfig {
            resolvers: 1,
            contributors: 1,
            loss_rate: 0.0,
            domains: 50,
            ephemeral_fqdn_prob: 0.0,
            weight_botnet: 0.0,
            weight_scanner: 0.0,
            weight_ns: 0.0,
            weight_txt: 0.0,
            weight_ptr: 0.0,
            weight_cname: 0.0,
            diurnal_amplitude: 0.0,
            arrivals_per_sec: 500.0,
            ..SimConfig::default()
        };
        let mut s = Simulation::from_config(cfg);
        let first = s.collect(5.0).len();
        let second = s.collect(5.0).len();
        assert!(
            (second as f64) < 0.35 * first as f64,
            "second window {second} vs first {first}"
        );
    }

    #[test]
    fn transactions_have_consistent_fields() {
        let mut s = sim();
        let txs = s.collect(1.0);
        assert!(txs.len() > 100, "only {} transactions", txs.len());
        let mut answered = 0usize;
        for tx in &txs {
            assert!(tx.time >= 0.0 && tx.time <= 1.0);
            assert!(tx.query.questions.len() == 1);
            if let Some(resp) = &tx.response {
                answered += 1;
                assert_eq!(resp.header.id, tx.query.header.id);
                assert_eq!(resp.questions, tx.query.questions);
                assert_eq!(
                    resp.to_bytes().unwrap().len(),
                    tx.response_size,
                    "size mismatch"
                );
                assert!(tx.ip_ttl_observed > 0);
                assert!(dnswire::ip::infer_hops(tx.ip_ttl_observed).is_some());
            }
            assert!(tx.delay_ms > 0.0);
        }
        // Loss rate default 3.5%: answered should dominate.
        assert!(answered as f64 > 0.9 * txs.len() as f64);
    }

    #[test]
    fn observes_all_levels_of_hierarchy() {
        let mut s = sim();
        let txs = s.collect(2.0);
        let mut root = false;
        let mut gtld = false;
        let mut auth = false;
        for tx in &txs {
            match tx.nameserver {
                std::net::IpAddr::V4(v4) if v4.octets()[0] == 198 && v4.octets()[1] == 41 => {
                    root = true
                }
                std::net::IpAddr::V4(v4) if v4.octets()[0] == 192 && v4.octets()[3] == 30 => {
                    gtld = true
                }
                _ => {
                    if tx
                        .response
                        .as_ref()
                        .map(|r| r.header.aa && r.rcode() == Rcode::NoError)
                        .unwrap_or(false)
                    {
                        auth = true;
                    }
                }
            }
        }
        assert!(root, "no root transactions seen");
        assert!(gtld, "no gTLD transactions seen");
        assert!(auth, "no authoritative answers seen");
    }

    #[test]
    fn botnet_traffic_hits_gtld_with_nxdomain() {
        let cfg = SimConfig {
            weight_botnet: 100.0,
            weight_web_dualstack: 0.0,
            weight_web_v4only: 0.0,
            weight_ptr: 0.0,
            weight_txt: 0.0,
            weight_mx: 0.0,
            weight_srv: 0.0,
            weight_cname: 0.0,
            weight_soa: 0.0,
            weight_ds: 0.0,
            weight_ns: 0.0,
            weight_scanner: 0.0,
            arrivals_per_sec: 1000.0,
            loss_rate: 0.0,
            ..SimConfig::small()
        };
        let mut s = Simulation::from_config(cfg);
        let txs = s.collect(1.0);
        assert!(!txs.is_empty());
        // After the root delegation warms up, everything is gTLD NXDOMAIN.
        let nxd = txs
            .iter()
            .filter(|t| {
                t.response
                    .as_ref()
                    .map(|r| r.rcode() == Rcode::NxDomain)
                    .unwrap_or(false)
            })
            .count();
        assert!(
            nxd as f64 > 0.9 * txs.len() as f64,
            "nxd {} of {}",
            nxd,
            txs.len()
        );
    }

    #[test]
    fn qmin_resolvers_minimize_upstream_qnames() {
        let cfg = SimConfig {
            qmin_fraction: 1.0, // every resolver minimizes
            weight_botnet: 0.0,
            weight_scanner: 0.0,
            weight_ns: 0.0,
            weight_ptr: 0.0,
            weight_txt: 0.0,
            ..SimConfig::small()
        };
        let mut s = Simulation::from_config(cfg);
        let txs = s.collect(1.0);
        for tx in &txs {
            let q = tx.query.question().unwrap();
            // Root queries (to 198.41/16) must carry at most 1 label.
            if let std::net::IpAddr::V4(v4) = tx.nameserver {
                if v4.octets()[0] == 198 && v4.octets()[1] == 41 {
                    assert!(
                        q.qname.label_count() <= 1,
                        "qmin resolver leaked {} to root",
                        q.qname
                    );
                }
            }
        }
    }

    #[test]
    fn emits_telemetry_into_global_registry() {
        let registry = telemetry::Registry::global();
        let before = registry.snapshot(0).counter("simnet_transactions_total");
        let mut s = sim();
        let txs = s.collect(0.5);
        let after = registry.snapshot(0).counter("simnet_transactions_total");
        // Other tests share the global registry, so only a lower bound
        // is exact: at least our own transactions were counted.
        assert!(after - before >= txs.len() as u64);
        assert!(registry.snapshot(0).gauge("simnet_stream_seconds") > 0.0);
    }

    #[test]
    fn skip_to_advances_clock() {
        let mut s = sim();
        s.skip_to(500.0);
        assert_eq!(s.now(), 500.0);
        let txs = s.collect(0.5);
        assert!(txs.iter().all(|t| t.time >= 500.0));
    }
}
