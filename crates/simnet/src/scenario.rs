//! Scripted infrastructure changes — the ground truth for the paper's
//! TTL-dynamics experiments (Figures 7/8, Table 4, §5.3).
//!
//! A [`Scenario`] is a set of timed events that override the derived
//! [`DomainProps`] of specific domains from their `at` time onward. The
//! experiment harness schedules events, runs the simulation, and can then
//! verify that the observatory-side detector recovers exactly these
//! changes (a stronger oracle than the paper's manual DNSDB lookups).

use crate::domains::{DomainId, DomainProps};
use std::collections::HashMap;

/// What changes at an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// Set the A-record TTL (Fig. 7: `xmsecu.com` went 600 → 10 s).
    SetATtl(u32),
    /// Set the negative-caching TTL (SOA minimum).
    SetNegTtl(u32),
    /// Publish AAAA records from now on (§5.3 IPv6 turn-up).
    EnableIpv6,
    /// Renumber: all address records change (Table 4 "Renumbering").
    Renumber,
    /// Replace the NS set — hostnames and addresses (Table 4 "Change NS").
    ChangeNs,
    /// Toggle non-conforming variable-TTL behaviour (Table 4 top row).
    SetNonconforming(bool),
}

/// One timed change to one domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioEvent {
    /// Stream time (seconds) the change takes effect.
    pub at: f64,
    /// Affected domain.
    pub domain: DomainId,
    /// The change.
    pub kind: ScenarioKind,
}

/// A scripted scan flood: extra queries for *non-existent* names under a
/// domain, raising its query rate without raising its response rate —
/// the paper's explanation for SLDs whose traffic rose although their
/// TTL went up (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ScanFlood {
    /// Target domain.
    pub domain: DomainId,
    /// Flood active from this stream time…
    pub start: f64,
    /// …until this stream time.
    pub end: f64,
    /// Extra arrivals per second while active.
    pub rate: f64,
}

/// An ordered script of events, indexed per domain.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    by_domain: HashMap<DomainId, Vec<ScenarioEvent>>,
    floods: Vec<ScanFlood>,
}

impl Scenario {
    /// Empty scenario (no overrides).
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Build from a list of events (sorted internally per domain).
    pub fn from_events(events: impl IntoIterator<Item = ScenarioEvent>) -> Scenario {
        let mut s = Scenario::new();
        for e in events {
            s.push(e);
        }
        s
    }

    /// Append one event.
    pub fn push(&mut self, event: ScenarioEvent) {
        let list = self.by_domain.entry(event.domain).or_default();
        list.push(event);
        list.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("no NaN times"));
    }

    /// Convenience: the operational choreography the paper describes for a
    /// planned migration (§4.2) — drop the TTL ahead of the change, make
    /// the change, raise the TTL afterwards.
    pub fn planned_change(
        domain: DomainId,
        change_at: f64,
        lead: f64,
        kind: ScenarioKind,
        low_ttl: u32,
        high_ttl: u32,
    ) -> Vec<ScenarioEvent> {
        vec![
            ScenarioEvent {
                at: change_at - lead,
                domain,
                kind: ScenarioKind::SetATtl(low_ttl),
            },
            ScenarioEvent {
                at: change_at,
                domain,
                kind,
            },
            ScenarioEvent {
                at: change_at + lead,
                domain,
                kind: ScenarioKind::SetATtl(high_ttl),
            },
        ]
    }

    /// Schedule a scan flood.
    pub fn push_flood(&mut self, flood: ScanFlood) {
        assert!(flood.end > flood.start && flood.rate > 0.0);
        self.floods.push(flood);
    }

    /// Floods active at `now`.
    pub fn active_floods(&self, now: f64) -> impl Iterator<Item = &ScanFlood> {
        self.floods
            .iter()
            .filter(move |f| f.start <= now && now < f.end)
    }

    /// Number of domains with scripted events.
    pub fn affected_domains(&self) -> usize {
        self.by_domain.len()
    }

    /// All events scripted for `domain` (any time), in order.
    pub fn events_for(&self, domain: DomainId) -> &[ScenarioEvent] {
        self.by_domain
            .get(&domain)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Apply every event with `at <= now` to `props`, returning
    /// `(addr_epoch, ns_epoch)` — counters that bump on Renumber/ChangeNs
    /// so derived addresses and NS names change.
    pub fn apply(&self, props: &mut DomainProps, now: f64) -> (u32, u32) {
        let mut addr_epoch = 0;
        let mut ns_epoch = 0;
        let Some(events) = self.by_domain.get(&props.id) else {
            return (0, 0);
        };
        for e in events {
            if e.at > now {
                break;
            }
            match &e.kind {
                ScenarioKind::SetATtl(ttl) => props.a_ttl = *ttl,
                ScenarioKind::SetNegTtl(ttl) => props.neg_ttl = *ttl,
                ScenarioKind::EnableIpv6 => props.has_ipv6 = true,
                ScenarioKind::Renumber => addr_epoch += 1,
                ScenarioKind::ChangeNs => {
                    ns_epoch += 1;
                    addr_epoch += 1;
                }
                ScenarioKind::SetNonconforming(v) => props.nonconforming_ttl = *v,
            }
        }
        (addr_epoch, ns_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::domains::DomainPlan;

    fn props(id: DomainId) -> DomainProps {
        DomainPlan::new(&SimConfig::small()).props(id)
    }

    #[test]
    fn empty_scenario_changes_nothing() {
        let s = Scenario::new();
        let mut p = props(5);
        let orig = p.clone();
        assert_eq!(s.apply(&mut p, 1e9), (0, 0));
        assert_eq!(p, orig);
    }

    #[test]
    fn ttl_change_applies_only_after_time() {
        let s = Scenario::from_events([ScenarioEvent {
            at: 100.0,
            domain: 5,
            kind: ScenarioKind::SetATtl(10),
        }]);
        let mut before = props(5);
        s.apply(&mut before, 99.0);
        assert_ne!(before.a_ttl, 10);
        let mut after = props(5);
        s.apply(&mut after, 100.0);
        assert_eq!(after.a_ttl, 10);
    }

    #[test]
    fn events_apply_in_time_order() {
        let s = Scenario::from_events([
            ScenarioEvent {
                at: 200.0,
                domain: 1,
                kind: ScenarioKind::SetATtl(999),
            },
            ScenarioEvent {
                at: 100.0,
                domain: 1,
                kind: ScenarioKind::SetATtl(111),
            },
        ]);
        let mut p = props(1);
        s.apply(&mut p, 150.0);
        assert_eq!(p.a_ttl, 111);
        let mut p = props(1);
        s.apply(&mut p, 250.0);
        assert_eq!(p.a_ttl, 999);
    }

    #[test]
    fn epochs_accumulate() {
        let s = Scenario::from_events([
            ScenarioEvent {
                at: 10.0,
                domain: 3,
                kind: ScenarioKind::Renumber,
            },
            ScenarioEvent {
                at: 20.0,
                domain: 3,
                kind: ScenarioKind::ChangeNs,
            },
        ]);
        let mut p = props(3);
        assert_eq!(s.apply(&mut p, 15.0), (1, 0));
        let mut p = props(3);
        assert_eq!(s.apply(&mut p, 25.0), (2, 1));
    }

    #[test]
    fn ipv6_turnup() {
        // Find a domain without IPv6 and enable it.
        let plan = DomainPlan::new(&SimConfig::small());
        let id = (1..=200).find(|&i| !plan.props(i).has_ipv6).unwrap();
        let s = Scenario::from_events([ScenarioEvent {
            at: 50.0,
            domain: id,
            kind: ScenarioKind::EnableIpv6,
        }]);
        let mut p = plan.props(id);
        s.apply(&mut p, 49.0);
        assert!(!p.has_ipv6);
        let mut p = plan.props(id);
        s.apply(&mut p, 51.0);
        assert!(p.has_ipv6);
    }

    #[test]
    fn floods_are_time_windowed() {
        let mut s = Scenario::new();
        s.push_flood(ScanFlood {
            domain: 4,
            start: 100.0,
            end: 200.0,
            rate: 50.0,
        });
        assert_eq!(s.active_floods(50.0).count(), 0);
        assert_eq!(s.active_floods(150.0).count(), 1);
        assert_eq!(s.active_floods(200.0).count(), 0, "end is exclusive");
    }

    #[test]
    fn flood_raises_query_rate_without_responses() {
        use crate::config::SimConfig;
        use crate::driver::Simulation;
        let mut scenario = Scenario::new();
        scenario.push_flood(ScanFlood {
            domain: 1,
            start: 0.0,
            end: 100.0,
            rate: 500.0,
        });
        let cfg = SimConfig {
            arrivals_per_sec: 1_000.0,
            loss_rate: 0.0,
            ..SimConfig::small()
        };
        let mut sim = Simulation::new(cfg, scenario);
        let mut nxd_dom1 = 0usize;
        let mut total = 0usize;
        sim.run(2.0, &mut |tx| {
            total += 1;
            let q = tx.query.question().unwrap();
            if q.qname.to_ascii().contains("dom1.")
                && tx
                    .response
                    .as_ref()
                    .map(|r| r.rcode() == dnswire::Rcode::NxDomain)
                    .unwrap_or(false)
            {
                nxd_dom1 += 1;
            }
        });
        assert!(
            nxd_dom1 as f64 > 0.15 * total as f64,
            "flood NXD share too small: {nxd_dom1}/{total}"
        );
    }

    #[test]
    fn planned_change_choreography() {
        let events = Scenario::planned_change(9, 1000.0, 300.0, ScenarioKind::Renumber, 30, 86_400);
        assert_eq!(events.len(), 3);
        let s = Scenario::from_events(events);
        let mut p = props(9);
        s.apply(&mut p, 800.0);
        assert_eq!(p.a_ttl, 30); // lowered ahead of the change
        let mut p = props(9);
        let (addr, _) = s.apply(&mut p, 1400.0);
        assert_eq!(addr, 1);
        assert_eq!(p.a_ttl, 86_400); // raised after
        assert_eq!(s.events_for(9).len(), 3);
        assert_eq!(s.affected_domains(), 1);
    }
}
