//! `simnet` — a deterministic, seedable simulation of the global DNS as
//! seen from above recursive resolvers.
//!
//! # Why this exists
//!
//! The paper's data source is the Farsight SIE passive DNS feed: hundreds
//! of sensor-equipped recursive resolvers world-wide, streaming their
//! cache-miss transactions with authoritative nameservers. That feed is
//! proprietary; this crate is the substitution (see DESIGN.md §2). It
//! produces the *same observable*: a stream of
//! `(time, resolver IP, nameserver IP, query, response, delay, IP TTL)`
//! tuples whose statistical structure matches what the paper describes —
//! heavy-tailed domain popularity, shared authoritative infrastructure,
//! anycast root/gTLD letters, resolver caching (positive and negative, so
//! only cache misses surface), Happy-Eyeballs dual-stack clients, botnet
//! DGA floods, PRSD attacks, and scripted infrastructure changes.
//!
//! # Architecture
//!
//! ```text
//! ClientMix ──queries──▶ Resolver (cache, qmin?) ──misses──▶ ZoneWorld
//!      ▲                                                        │
//!   Workload (Zipf, diurnal, attacks)                 answers (dnswire Messages)
//!      │                                                        │
//! Scenario (TTL cuts, renumbering, IPv6 turn-up)                ▼
//!                              Transaction stream → DNS Observatory
//! ```
//!
//! Determinism: all randomness flows from the single `seed` in
//! [`SimConfig`]; two runs with the same config produce identical streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addressing;
mod clients;
mod config;
mod domains;
mod driver;
mod latency;
mod rescache;
mod resolver;
mod scenario;
mod servers;
mod transaction;
mod world;
mod zipf;

pub use addressing::{AddressPlan, OrgSpec, ServerClass};
pub use clients::{ClientProfile, QueryIntent};
pub use config::SimConfig;
pub use domains::{DomainId, DomainPlan, DomainProps};
pub use driver::Simulation;
pub use latency::LatencyModel;
pub use rescache::{CacheKey, CacheOutcome, ResolverCache};
pub use resolver::ResolverState;
pub use scenario::{ScanFlood, Scenario, ScenarioEvent, ScenarioKind};
pub use servers::{AnswerContext, ServerKind};
pub use transaction::Transaction;
pub use world::World;
pub use zipf::Zipf;
