//! The assembled world: configuration, address plan, domain plan,
//! latency model, scenario, and the derived lookup helpers shared by
//! servers and resolvers.

use crate::addressing::{mix, AddressPlan, NsInfo, ORGS};
use crate::config::SimConfig;
use crate::domains::{DomainId, DomainPlan, DomainProps};
use crate::latency::LatencyModel;
use crate::scenario::Scenario;
use asdb::AsDb;
use dnswire::Name;
use std::net::IpAddr;

/// Everything static (or scripted) about the simulated Internet.
#[derive(Debug)]
pub struct World {
    /// The configuration the world was built from.
    pub cfg: SimConfig,
    /// Address and organization plan.
    pub plan: AddressPlan,
    /// Domain universe.
    pub domains: DomainPlan,
    /// Path delay/hops model.
    pub latency: LatencyModel,
    /// Scripted infrastructure changes.
    pub scenario: Scenario,
    /// Routing + AS registry covering the whole plan.
    pub asdb: AsDb,
}

impl World {
    /// Build a world from config and scenario.
    pub fn new(cfg: SimConfig, scenario: Scenario) -> World {
        let plan = AddressPlan::new(
            cfg.seed,
            cfg.resolvers,
            cfg.contributors,
            (cfg.domains as u32).saturating_mul(7) / 4,
        );
        let domains = DomainPlan::new(&cfg);
        let latency = LatencyModel::new(cfg.seed ^ 0x1a7e);
        let asdb = plan.build_asdb();
        World {
            cfg,
            plan,
            domains,
            latency,
            scenario,
            asdb,
        }
    }

    /// Properties of domain `id` at time `now`, with scenario overrides
    /// applied. Returns the props together with the `(addr, ns)` epochs.
    pub fn domain_at(&self, id: DomainId, now: f64) -> (DomainProps, u32, u32) {
        let mut props = self.domains.props(id);
        let (addr_epoch, ns_epoch) = self.scenario.apply(&mut props, now);
        (props, addr_epoch, ns_epoch)
    }

    /// The `j`-th authoritative nameserver of a domain.
    ///
    /// Org-hosted domains use servers from the org pool (so many domains
    /// share nameservers — the paper's traffic-concentration effect);
    /// self-hosted domains get dedicated tail servers. The `ns_epoch`
    /// (bumped by a ChangeNs scenario event) rotates the selection.
    pub fn domain_ns(&self, props: &DomainProps, j: usize, ns_epoch: u32) -> NsInfo {
        let j = j % props.ns_count;
        match props.org {
            Some(org) => {
                let pool = ORGS[org].servers;
                // Popular domains are pinned to the low (well-provisioned,
                // fast) slots of the org's pool; the long tail spreads over
                // the whole pool. This produces the paper's Fig. 3b
                // correlation between popularity rank and response delay.
                let cutoff = self.domains.popular_cutoff() as f64;
                let frac = (props.id as f64 / cutoff).powf(0.7).clamp(0.04, 1.0);
                let limit = ((pool as f64 * frac).ceil() as usize).clamp(2, pool.max(2));
                let slot =
                    mix(props.id ^ ((j as u64) << 32) ^ ((ns_epoch as u64) << 48)) as usize % limit;
                self.plan.org_server(org, slot)
            }
            None => {
                let key =
                    mix(props.id.wrapping_mul(0x9e3779b97f4a7c15) ^ ((ns_epoch as u64) << 40));
                self.plan.tail_server(key ^ j as u64, j)
            }
        }
    }

    /// Hostname of the `j`-th nameserver of a domain, e.g.
    /// `ns1.dom42.com` or `ns1.cloudflare-dns.com` for org-hosted zones.
    pub fn domain_ns_name(&self, props: &DomainProps, j: usize, ns_epoch: u32) -> Name {
        let j = j % props.ns_count;
        match props.org {
            Some(org) => {
                let label = format!("ns{}", j + 1 + ns_epoch as usize * props.ns_count);
                Name::from_ascii(&format!(
                    "{}.{}-dns.com",
                    label,
                    ORGS[org].name.to_ascii_lowercase()
                ))
                .expect("valid ns name")
            }
            None => {
                let label = format!("ns{}", j + 1 + ns_epoch as usize * props.ns_count);
                props.esld.prepend(label.as_bytes()).expect("label fits")
            }
        }
    }

    /// Authoritative servers for TLD `tld`: the 13 gTLD letters for
    /// `.com`/`.net`, two ccTLD servers otherwise.
    pub fn tld_server(&self, tld: usize, pick: u64) -> NsInfo {
        if self.domains.tld_is_gtld(tld) {
            self.plan.gtld_letter(self.weighted_gtld_letter(pick))
        } else {
            self.plan.cctld_server(tld, (pick % 2) as usize)
        }
    }

    /// A root letter, chosen with probability ∝ mirror count (resolvers
    /// prefer well-deployed, nearby letters).
    pub fn root_server(&self, pick: u64) -> NsInfo {
        let total: u32 = crate::addressing::ROOT_MIRRORS
            .iter()
            .map(|&m| m as u32)
            .sum();
        let mut target = (mix(pick) % total as u64) as u32;
        for (i, &m) in crate::addressing::ROOT_MIRRORS.iter().enumerate() {
            if target < m as u32 {
                return self.plan.root_letter(i);
            }
            target -= m as u32;
        }
        self.plan.root_letter(12)
    }

    fn weighted_gtld_letter(&self, pick: u64) -> usize {
        let total: u32 = crate::addressing::GTLD_MIRRORS
            .iter()
            .map(|&m| m as u32)
            .sum();
        let mut target = (mix(pick ^ 0x67) % total as u64) as u32;
        for (i, &m) in crate::addressing::GTLD_MIRRORS.iter().enumerate() {
            if target < m as u32 {
                return i;
            }
            target -= m as u32;
        }
        12
    }

    /// The authoritative server for a reverse (in-addr.arpa / ip6.arpa)
    /// zone covering `addr` — reverse DNS is served by infrastructure
    /// operators, modelled as tail servers keyed by the /16.
    pub fn reverse_server(&self, addr: IpAddr) -> NsInfo {
        let key = match addr {
            IpAddr::V4(v4) => (u32::from(v4) >> 16) as u64 | 0x5e5e_0000_0000,
            IpAddr::V6(v6) => (u128::from(v6) >> 96) as u64 | 0x6e6e_0000_0000,
        };
        let mut ns = self.plan.tail_server(mix(key), 0);
        // Reverse zones are run by ISPs and IXPs, closer to the resolver
        // population than generic tail hosting (paper Table 2: PTR delay
        // ≈2x forward-DNS, not ≈4x).
        ns.median_delay_ms *= 0.55;
        ns
    }

    /// IPv4 address published for FQDN index `i` of a domain; varies with
    /// the address epoch (renumbering support).
    pub fn fqdn_v4(
        &self,
        props: &DomainProps,
        i: usize,
        k: usize,
        addr_epoch: u32,
    ) -> std::net::Ipv4Addr {
        let h =
            mix(props.id ^ ((i as u64) << 24) ^ ((k as u64) << 50) ^ ((addr_epoch as u64) << 56));
        // Web content lives in yet another address space (203.x / 198.x).
        std::net::Ipv4Addr::new(
            203,
            (h >> 8) as u8,
            (h >> 16) as u8,
            ((h >> 24) % 254 + 1) as u8,
        )
    }

    /// IPv6 address published for FQDN index `i` of a domain.
    pub fn fqdn_v6(
        &self,
        props: &DomainProps,
        i: usize,
        k: usize,
        addr_epoch: u32,
    ) -> std::net::Ipv6Addr {
        let h = mix(props.id
            ^ ((i as u64) << 24)
            ^ ((k as u64) << 50)
            ^ ((addr_epoch as u64) << 56)
            ^ 0x6666);
        std::net::Ipv6Addr::new(
            0x2a00,
            0x1450,
            (h >> 16) as u16,
            (h >> 32) as u16,
            0,
            0,
            0,
            (h as u16).max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(SimConfig::small(), Scenario::new())
    }

    #[test]
    fn domain_ns_is_stable_and_shared() {
        let w = world();
        let (p, _, _) = w.domain_at(1, 0.0);
        let a = w.domain_ns(&p, 0, 0);
        let b = w.domain_ns(&p, 0, 0);
        assert_eq!(a, b);
        // Two org-hosted domains on the same org often share servers:
        // check the pool is bounded.
        let mut ips = std::collections::HashSet::new();
        for id in 1..=500u64 {
            let (p, _, ns_epoch) = w.domain_at(id, 0.0);
            if p.org == Some(0) {
                for j in 0..p.ns_count {
                    ips.insert(w.domain_ns(&p, j, ns_epoch).ip);
                }
            }
        }
        assert!(ips.len() <= ORGS[0].servers, "pool exceeded: {}", ips.len());
        assert!(!ips.is_empty());
    }

    #[test]
    fn ns_epoch_changes_servers_for_tail_domains() {
        let w = world();
        let id = (1..=2000)
            .find(|&i| w.domain_at(i, 0.0).0.org.is_none())
            .expect("some tail domain");
        let (p, _, _) = w.domain_at(id, 0.0);
        let before = w.domain_ns(&p, 0, 0);
        let after = w.domain_ns(&p, 0, 1);
        assert_ne!(before.ip, after.ip);
        assert_ne!(w.domain_ns_name(&p, 0, 0), w.domain_ns_name(&p, 0, 1));
    }

    #[test]
    fn root_letters_weighted_by_mirrors() {
        let w = world();
        let mut counts = [0u32; 13];
        for pick in 0..20_000u64 {
            let ns = w.root_server(pick);
            let letter = match ns.ip {
                IpAddr::V4(v4) => v4.octets()[2] as usize,
                _ => unreachable!(),
            };
            counts[letter] += 1;
        }
        // F (index 5, 220 mirrors) must see far more picks than B (6).
        assert!(
            counts[5] > 10 * counts[1],
            "F={} B={}",
            counts[5],
            counts[1]
        );
    }

    #[test]
    fn gtld_vs_cctld_serving() {
        let w = world();
        let g = w.tld_server(0, 1);
        assert_eq!(g.org, Some(1)); // VERISIGN
        let c = w.tld_server(700, 1);
        assert_ne!(c.ip, g.ip);
    }

    #[test]
    fn renumbering_changes_fqdn_addresses() {
        let w = world();
        let (p, _, _) = w.domain_at(10, 0.0);
        assert_ne!(w.fqdn_v4(&p, 0, 0, 0), w.fqdn_v4(&p, 0, 0, 1));
        assert_ne!(w.fqdn_v6(&p, 0, 0, 0), w.fqdn_v6(&p, 0, 0, 1));
        // Same epoch → same address.
        assert_eq!(w.fqdn_v4(&p, 0, 0, 0), w.fqdn_v4(&p, 0, 0, 0));
    }

    #[test]
    fn reverse_server_is_per_slash16() {
        let w = world();
        let a = w.reverse_server("198.51.100.1".parse().unwrap());
        let b = w.reverse_server("198.51.200.9".parse().unwrap());
        let c = w.reverse_server("10.9.0.1".parse().unwrap());
        assert_eq!(a.ip, b.ip); // same /16
        assert_ne!(a.ip, c.ip);
    }

    #[test]
    fn asdb_knows_domain_ns_addresses() {
        let w = world();
        for id in [1u64, 50, 500, 1500] {
            let (p, _, e) = w.domain_at(id, 0.0);
            let ns = w.domain_ns(&p, 0, e);
            assert!(w.asdb.lookup(ns.ip).is_some(), "uncovered ns {:?}", ns.ip);
        }
    }
}
