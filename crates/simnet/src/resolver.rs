//! Per-resolver state: identity, cache, and behavioural flags.

use crate::rescache::ResolverCache;
use std::net::IpAddr;

/// One recursive resolver in the vantage-point population.
#[derive(Debug)]
pub struct ResolverState {
    /// Index in the plan (0-based).
    pub idx: usize,
    /// The resolver's IP address.
    pub ip: IpAddr,
    /// The SIE contributor operating it.
    pub contributor: u16,
    /// Whether it performs QNAME minimization (RFC 7816).
    pub qmin: bool,
    /// Whether it sets the EDNS DO bit (validating resolver).
    pub dnssec_ok: bool,
    /// Its cache.
    pub cache: ResolverCache,
}

impl ResolverState {
    /// Create resolver state with the given cache capacity.
    pub fn new(
        idx: usize,
        ip: IpAddr,
        contributor: u16,
        qmin: bool,
        dnssec_ok: bool,
        cache_capacity: usize,
    ) -> ResolverState {
        ResolverState {
            idx,
            ip,
            contributor,
            qmin,
            dnssec_ok,
            cache: ResolverCache::new(cache_capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn construction() {
        let r = ResolverState::new(
            3,
            IpAddr::V4(Ipv4Addr::new(100, 64, 0, 3)),
            1,
            true,
            false,
            1000,
        );
        assert_eq!(r.idx, 3);
        assert!(r.qmin);
        assert!(!r.dnssec_ok);
        assert!(r.cache.is_empty());
    }
}
