//! Zipf-distributed rank sampling by inverse-CDF approximation.
//!
//! Domain popularity in DNS traffic is heavy-tailed (paper §3.2). We
//! sample ranks `1..=n` with P(rank = k) ∝ k^(−s) using the continuous
//! inverse-CDF approximation, which is O(1) per sample and accurate enough
//! for workload generation (exact normalization does not matter for the
//! shapes we reproduce; what matters is the tail exponent).

/// O(1) approximate Zipf(n, s) sampler over ranks `1..=n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Precomputed for the s≈1 branch.
    ln_n1: f64,
    /// Precomputed for the general branch: 1 − s.
    one_minus_s: f64,
    /// (n+1)^(1−s) − 1, the unnormalized CDF mass for the general branch.
    mass: f64,
}

impl Zipf {
    /// Create a sampler over ranks `1..=n` with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n >= 1, "need at least one rank");
        assert!(s > 0.0, "exponent must be positive");
        let ln_n1 = ((n + 1) as f64).ln();
        let one_minus_s = 1.0 - s;
        let mass = if one_minus_s.abs() < 1e-9 {
            0.0
        } else {
            ((n + 1) as f64).powf(one_minus_s) - 1.0
        };
        Zipf {
            n,
            s,
            ln_n1,
            one_minus_s,
            mass,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Map a uniform `u ∈ [0, 1)` to a rank in `1..=n`.
    ///
    /// Continuous approximation: for s = 1 the CDF is ~ln(1+x)/ln(1+n);
    /// for s ≠ 1 it is ~((1+x)^(1−s) − 1) / ((1+n)^(1−s) − 1). Both invert
    /// in closed form.
    pub fn rank_for(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        let x = if self.one_minus_s.abs() < 1e-9 {
            (u * self.ln_n1).exp() - 1.0
        } else {
            ((u * self.mass + 1.0).powf(1.0 / self.one_minus_s)) - 1.0
        };
        (x.floor() as u64 + 1).min(self.n)
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic uniform sequence for the tests.
    fn uniforms(n: usize) -> impl Iterator<Item = f64> {
        let mut state = 0x853c_49e6_748f_ea9bu64;
        std::iter::repeat_with(move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / (1u64 << 53) as f64
        })
        .take(n)
    }

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(1000, 1.0);
        for u in uniforms(10_000) {
            let r = z.rank_for(u);
            assert!((1..=1000).contains(&r));
        }
        assert_eq!(z.rank_for(0.0), 1);
        assert_eq!(z.rank_for(1.0), 1000);
    }

    #[test]
    fn head_is_heavy() {
        let z = Zipf::new(100_000, 1.0);
        let mut head = 0usize;
        let total = 100_000;
        for u in uniforms(total) {
            if z.rank_for(u) <= 100 {
                head += 1;
            }
        }
        // For s=1, N=1e5: P(rank ≤ 100) ≈ ln(101)/ln(100001) ≈ 0.40.
        let share = head as f64 / total as f64;
        assert!((0.3..0.5).contains(&share), "head share {share}");
    }

    #[test]
    fn tail_exponent_shows() {
        // With s = 1, rank-1 frequency should be ~2x rank-2 frequency.
        let z = Zipf::new(10_000, 1.0);
        let (mut r1, mut r2) = (0u64, 0u64);
        for u in uniforms(2_000_000) {
            match z.rank_for(u) {
                1 => r1 += 1,
                2 => r2 += 1,
                _ => {}
            }
        }
        let ratio = r1 as f64 / r2 as f64;
        assert!((1.5..2.6).contains(&ratio), "r1/r2 = {ratio}");
    }

    #[test]
    fn non_unit_exponent() {
        let z = Zipf::new(1000, 2.0);
        let mut top = 0usize;
        let total = 50_000;
        for u in uniforms(total) {
            if z.rank_for(u) == 1 {
                top += 1;
            }
        }
        // s=2 concentrates hard on rank 1 (>50%).
        assert!(top as f64 / total as f64 > 0.45);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.3);
        for u in uniforms(100) {
            assert_eq!(z.rank_for(u), 1);
        }
    }
}
