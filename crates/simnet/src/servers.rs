//! Authoritative answer synthesis: given a query and its place in the
//! delegation tree, produce the `dnswire::Message` a real server would
//! return — referrals with glue, authoritative answers, NXDOMAIN and
//! NoData with SOA, DNSSEC records when the querier set DO, and the
//! deliberately non-conforming variable TTLs of Table 4.

use crate::addressing::mix;
use crate::domains::DomainProps;
use crate::world::World;
use dnswire::{Edns, Message, Name, RData, Rcode, Record, RecordType, Rrsig, Soa};

/// Which server in the hierarchy is answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// A root letter.
    Root,
    /// A gTLD or ccTLD registry server for TLD index `usize`.
    Tld(usize),
    /// The authoritative server of a registrable domain.
    Auth,
    /// A reverse-DNS (in-addr.arpa) server.
    Reverse,
}

/// Everything the answer synthesizer needs besides the query itself.
#[derive(Debug, Clone, Copy)]
pub struct AnswerContext<'a> {
    /// The world (plans, scenario).
    pub world: &'a World,
    /// Stream time.
    pub now: f64,
    /// Per-query entropy for jittered choices.
    pub qhash: u64,
}

/// TTL of delegation NS records served by root/TLD.
const DELEGATION_TTL: u32 = 86_400;
/// Negative TTL in the root zone SOA.
const ROOT_NEG_TTL: u32 = 900;
/// Negative TTL in TLD zone SOAs.
const TLD_NEG_TTL: u32 = 900;
/// TTL for PTR records.
const PTR_TTL: u32 = 86_400;

fn base_response(query: &Message, rcode: Rcode, aa: bool) -> Message {
    let mut resp = Message::response_to(query, rcode);
    resp.header.aa = aa;
    // Echo EDNS when the querier used it (needed to carry DO + RRSIGs).
    if let Some(edns) = &query.edns {
        resp.edns = Some(Edns {
            udp_payload_size: 1232,
            version: 0,
            dnssec_ok: edns.dnssec_ok,
            options: Vec::new(),
        });
    }
    resp
}

fn wants_dnssec(query: &Message) -> bool {
    query.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false)
}

fn soa_record(zone: Name, mname: Name, neg_ttl: u32, serial: u32) -> Record {
    let rname = mname
        .prepend(b"hostmaster")
        .unwrap_or_else(|_| mname.clone());
    Record::new(
        zone,
        neg_ttl,
        RData::Soa(Soa {
            mname,
            rname,
            serial,
            refresh: 7_200,
            retry: 900,
            expire: 1_209_600,
            minimum: neg_ttl,
        }),
    )
}

/// A fake RRSIG covering `rtype` for `owner`, signed by `signer`.
fn fake_rrsig(owner: Name, rtype: RecordType, ttl: u32, signer: Name, qhash: u64) -> Record {
    Record::new(
        owner,
        ttl,
        RData::Rrsig(Rrsig {
            type_covered: rtype,
            algorithm: 8,
            labels: 2,
            original_ttl: ttl,
            expiration: 1_560_000_000,
            inception: 1_550_000_000,
            key_tag: (qhash % 65_536) as u16,
            signer,
            signature: vec![0xa5; 96],
        }),
    )
}

/// An opaque NSEC3 record used to bulk up signed NXDOMAIN responses.
fn fake_nsec3(zone: &Name, qhash: u64) -> Record {
    let label = format!("{:032x}", qhash as u128 | 0x1);
    let owner = zone
        .prepend(label.as_bytes())
        .unwrap_or_else(|_| zone.clone());
    Record::new(
        owner,
        TLD_NEG_TTL,
        RData::Unknown {
            rtype: 50, // NSEC3
            data: vec![0x01, 0x00, 0x00, 0x05, 0x04, 0xde, 0xad, 0xbe, 0xef, 20]
                .into_iter()
                .chain(std::iter::repeat_n(0x3c, 30))
                .collect(),
        },
    )
}

/// Root server answering `query`. `tld` is the index of the queried
/// name's TLD in the plan, or `None` when the TLD does not exist.
pub fn answer_root(ctx: AnswerContext<'_>, query: &Message, tld: Option<usize>) -> Message {
    let Some(q) = query.question() else {
        return base_response(query, Rcode::FormErr, false);
    };
    match tld {
        Some(tld_idx) => {
            // Referral: NS set for the TLD plus one glue address.
            let mut resp = base_response(query, Rcode::NoError, false);
            let tld_name =
                Name::from_ascii(ctx.world.domains.tld_name(tld_idx)).expect("tld names are valid");
            let servers = if ctx.world.domains.tld_is_gtld(tld_idx) {
                13
            } else {
                2
            };
            for j in 0..servers {
                let ns_name = tld_ns_name(ctx.world, tld_idx, j);
                resp.authorities.push(Record::new(
                    tld_name.clone(),
                    DELEGATION_TTL * 2,
                    RData::Ns(ns_name),
                ));
            }
            // One glue record keeps referral sizes realistic.
            let glue_ns = ctx.world.tld_server(tld_idx, ctx.qhash);
            if let std::net::IpAddr::V4(v4) = glue_ns.ip {
                resp.additionals.push(Record::new(
                    tld_ns_name(ctx.world, tld_idx, 0),
                    DELEGATION_TTL * 2,
                    RData::A(v4),
                ));
            }
            resp
        }
        None => {
            let mut resp = base_response(query, Rcode::NxDomain, true);
            resp.authorities.push(soa_record(
                Name::root(),
                Name::from_ascii("a.root-servers.net").unwrap(),
                ROOT_NEG_TTL,
                2_019_040_100,
            ));
            if wants_dnssec(query) {
                resp.authorities.push(fake_nsec3(&Name::root(), ctx.qhash));
                resp.authorities.push(fake_rrsig(
                    Name::root(),
                    RecordType::Soa,
                    ROOT_NEG_TTL,
                    Name::root(),
                    ctx.qhash,
                ));
            }
            let _ = q;
            resp
        }
    }
}

/// Hostname of TLD server `j`, e.g. `a.gtld-servers.net` / `ns1.nic.de`.
fn tld_ns_name(world: &World, tld: usize, j: usize) -> Name {
    if world.domains.tld_is_gtld(tld) {
        let letter = (b'a' + (j % 13) as u8) as char;
        Name::from_ascii(&format!("{letter}.gtld-servers.net")).unwrap()
    } else {
        Name::from_ascii(&format!("ns{}.nic.{}", j + 1, world.domains.tld_name(tld))).unwrap()
    }
}

/// TLD registry server answering `query` for a name under TLD `tld`.
/// `domain` carries the registered domain's properties when it exists.
pub fn answer_tld(
    ctx: AnswerContext<'_>,
    query: &Message,
    tld: usize,
    domain: Option<(&DomainProps, u32)>,
) -> Message {
    let tld_name = Name::from_ascii(ctx.world.domains.tld_name(tld)).expect("valid tld");
    let Some(q) = query.question() else {
        return base_response(query, Rcode::FormErr, false);
    };
    match domain {
        Some((props, ns_epoch)) => {
            // DS queries are answered *by the parent*, authoritatively.
            if q.qtype == RecordType::Ds {
                return answer_ds(ctx, query, &tld_name, props);
            }
            // Referral to the domain's nameservers, with glue.
            let mut resp = base_response(query, Rcode::NoError, false);
            for j in 0..props.ns_count {
                let ns_name = ctx.world.domain_ns_name(props, j, ns_epoch);
                resp.authorities.push(Record::new(
                    props.esld.clone(),
                    ctx.world.cfg.ttl_ns,
                    RData::Ns(ns_name.clone()),
                ));
                let info = ctx.world.domain_ns(props, j, ns_epoch);
                match info.ip {
                    std::net::IpAddr::V4(v4) => resp.additionals.push(Record::new(
                        ns_name,
                        ctx.world.cfg.ttl_ns,
                        RData::A(v4),
                    )),
                    std::net::IpAddr::V6(v6) => resp.additionals.push(Record::new(
                        ns_name,
                        ctx.world.cfg.ttl_ns,
                        RData::Aaaa(v6),
                    )),
                }
            }
            resp
        }
        None => {
            // NXDOMAIN from the registry; signed zones (.com) return the
            // full NSEC3 + RRSIG proof, which is what makes PRSD NXDOMAIN
            // responses so large (Table 2's 835-byte NS row).
            let mut resp = base_response(query, Rcode::NxDomain, true);
            let mname = tld_ns_name(ctx.world, tld, 0);
            resp.authorities.push(soa_record(
                tld_name.clone(),
                mname,
                TLD_NEG_TTL,
                1_556_000_000,
            ));
            if wants_dnssec(query) && ctx.world.domains.tld_is_gtld(tld) {
                for k in 0..3u64 {
                    resp.authorities.push(fake_nsec3(&tld_name, ctx.qhash ^ k));
                    resp.authorities.push(fake_rrsig(
                        tld_name.clone(),
                        RecordType::Unknown(50),
                        TLD_NEG_TTL,
                        tld_name.clone(),
                        ctx.qhash ^ k,
                    ));
                }
            }
            resp
        }
    }
}

/// DS answer from the parent registry.
fn answer_ds(
    ctx: AnswerContext<'_>,
    query: &Message,
    tld_name: &Name,
    props: &DomainProps,
) -> Message {
    if props.dnssec {
        let mut resp = base_response(query, Rcode::NoError, true);
        resp.answers.push(Record::new(
            props.esld.clone(),
            86_400,
            RData::Ds(dnswire::Ds {
                key_tag: (mix(props.id) % 65_536) as u16,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0x5d; 32],
            }),
        ));
        if wants_dnssec(query) {
            resp.answers.push(fake_rrsig(
                props.esld.clone(),
                RecordType::Ds,
                86_400,
                tld_name.clone(),
                ctx.qhash,
            ));
        }
        resp
    } else {
        // Unsigned child: NoData with the TLD SOA.
        let mut resp = base_response(query, Rcode::NoError, true);
        resp.authorities.push(soa_record(
            tld_name.clone(),
            tld_ns_name(ctx.world, props.tld, 0),
            TLD_NEG_TTL,
            1_556_000_001,
        ));
        resp
    }
}

/// Effective record TTL, honouring the non-conforming servers of Table 4
/// that return a different, decreasing TTL on every query.
fn effective_ttl(props: &DomainProps, base: u32, qhash: u64) -> u32 {
    if props.nonconforming_ttl {
        // A different value on every response, as dns.widhost.net did
        // (decreasing values below 1024). The 1..=255 range keeps the
        // churn visible within minutes of observation.
        1 + (mix(qhash) % 255) as u32
    } else {
        base
    }
}

/// The domain's authoritative server answering `query`.
///
/// * `fqdn_exists` — whether the queried name exists in the zone;
/// * `fqdn_idx` — which stable FQDN it is (drives published addresses);
/// * `epochs` — `(addr_epoch, ns_epoch)` from the scenario.
pub fn answer_auth(
    ctx: AnswerContext<'_>,
    query: &Message,
    props: &DomainProps,
    fqdn_exists: bool,
    fqdn_idx: usize,
    epochs: (u32, u32),
) -> Message {
    let Some(q) = query.question() else {
        return base_response(query, Rcode::FormErr, true);
    };
    let (addr_epoch, ns_epoch) = epochs;
    let qname = q.qname.clone();

    if !fqdn_exists {
        let mut resp = base_response(query, Rcode::NxDomain, true);
        resp.authorities.push(soa_record(
            props.esld.clone(),
            ctx.world.domain_ns_name(props, 0, ns_epoch),
            props.neg_ttl,
            props.id as u32,
        ));
        return resp;
    }

    let mut resp = base_response(query, Rcode::NoError, true);
    let nodata = |ctx: AnswerContext<'_>, mut resp: Message| {
        // §5.4 remedy 2: when zones split negative-caching semantics,
        // NoData advertises a negative TTL aligned with the A TTL while
        // NXDOMAIN (handled above) keeps the short SOA minimum.
        let neg = if ctx.world.cfg.remedy_split_negative {
            props.neg_ttl.max(props.a_ttl)
        } else {
            props.neg_ttl
        };
        resp.authorities.push(soa_record(
            props.esld.clone(),
            ctx.world.domain_ns_name(props, 0, ns_epoch),
            neg,
            props.id as u32,
        ));
        resp
    };

    match q.qtype {
        RecordType::A | RecordType::Any => {
            let ttl = effective_ttl(props, props.a_ttl, ctx.qhash);
            let addrs = 1 + (mix(props.id ^ fqdn_idx as u64) % 2) as usize;
            for k in 0..addrs {
                resp.answers.push(Record::new(
                    qname.clone(),
                    ttl,
                    RData::A(ctx.world.fqdn_v4(props, fqdn_idx, k, addr_epoch)),
                ));
            }
            if q.qtype == RecordType::Any && props.has_ipv6 {
                resp.answers.push(Record::new(
                    qname.clone(),
                    effective_ttl(props, props.aaaa_ttl, ctx.qhash ^ 1),
                    RData::Aaaa(ctx.world.fqdn_v6(props, fqdn_idx, 0, addr_epoch)),
                ));
            }
            if props.dnssec && wants_dnssec(query) {
                resp.answers.push(fake_rrsig(
                    qname.clone(),
                    RecordType::A,
                    ttl,
                    props.esld.clone(),
                    ctx.qhash,
                ));
            }
        }
        RecordType::Aaaa => {
            if props.has_ipv6 {
                let ttl = effective_ttl(props, props.aaaa_ttl, ctx.qhash);
                resp.answers.push(Record::new(
                    qname.clone(),
                    ttl,
                    RData::Aaaa(ctx.world.fqdn_v6(props, fqdn_idx, 0, addr_epoch)),
                ));
                if props.dnssec && wants_dnssec(query) {
                    resp.answers.push(fake_rrsig(
                        qname.clone(),
                        RecordType::Aaaa,
                        ttl,
                        props.esld.clone(),
                        ctx.qhash,
                    ));
                }
            } else {
                // The Happy Eyeballs pathology: NoData with the SOA whose
                // minimum is the (possibly tiny) negative-caching TTL.
                resp = nodata(ctx, resp);
            }
        }
        RecordType::Ns => {
            for j in 0..props.ns_count {
                resp.answers.push(Record::new(
                    props.esld.clone(),
                    effective_ttl(props, ctx.world.cfg.ttl_ns, ctx.qhash ^ j as u64),
                    RData::Ns(ctx.world.domain_ns_name(props, j, ns_epoch)),
                ));
            }
        }
        RecordType::Mx
            if props.has_mx => {
                for pref in [10u16, 20] {
                    let mx = props
                        .esld
                        .prepend(format!("mx{}", pref / 10).as_bytes())
                        .expect("label fits");
                    resp.answers.push(Record::new(
                        qname.clone(),
                        effective_ttl(props, ctx.world.cfg.ttl_mx, ctx.qhash),
                        RData::Mx(dnswire::Mx {
                            preference: pref,
                            exchange: mx,
                        }),
                    ));
                }
            }
        RecordType::Txt => {
            // TXT-over-DNS custom protocols answer with an opaque blob and
            // a tiny TTL (paper §3.4).
            let payload = format!(
                "v=resp h={:016x} t={} flags=0x{:04x}",
                mix(ctx.qhash),
                ctx.now as u64,
                (ctx.qhash % 0xffff) as u16
            );
            let ttl = if props.txt_service {
                ctx.world.cfg.ttl_txt
            } else {
                effective_ttl(props, 3_600, ctx.qhash)
            };
            resp.answers.push(Record::new(
                qname.clone(),
                ttl,
                RData::Txt(vec![payload.into_bytes(), vec![0x42; 48]]),
            ));
        }
        RecordType::Srv
            if props.has_srv => {
                resp.answers.push(Record::new(
                    qname.clone(),
                    300,
                    RData::Srv(dnswire::SvcRecord {
                        priority: 0,
                        weight: 5,
                        port: 5_060,
                        target: ctx.world.domains.fqdn(props, 0),
                    }),
                ));
            }
        RecordType::Cname
            // Explicit CNAME query: answer the alias if this FQDN is one.
            if fqdn_idx % 3 == 2 => {
                resp.answers.push(Record::new(
                    qname.clone(),
                    300,
                    RData::Cname(ctx.world.domains.fqdn(props, 0)),
                ));
            }
        RecordType::Soa => {
            resp.answers.push(soa_record(
                props.esld.clone(),
                ctx.world.domain_ns_name(props, 0, ns_epoch),
                props.neg_ttl,
                props.id as u32,
            ));
        }
        _ => {
            resp = nodata(ctx, resp);
        }
    }
    resp
}

/// A reverse-DNS server answering a PTR query. `exists` controls PTR
/// record vs NXDOMAIN (29 % of PTR queries hit unassigned space, Table 2).
pub fn answer_reverse(ctx: AnswerContext<'_>, query: &Message, exists: bool) -> Message {
    let Some(q) = query.question() else {
        return base_response(query, Rcode::FormErr, true);
    };
    if exists {
        let mut resp = base_response(query, Rcode::NoError, true);
        let target = Name::from_ascii(&format!(
            "host-{:x}.isp{}.net",
            mix(ctx.qhash) % 0xffff_ffff,
            ctx.qhash % 97
        ))
        .expect("valid ptr target");
        resp.answers
            .push(Record::new(q.qname.clone(), PTR_TTL, RData::Ptr(target)));
        resp
    } else {
        let zone = q.qname.suffix(3.min(q.qname.label_count()));
        let mut resp = base_response(query, Rcode::NxDomain, true);
        resp.authorities.push(soa_record(
            zone.clone(),
            zone.prepend(b"ns1").unwrap_or(zone),
            3_600,
            1,
        ));
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::scenario::Scenario;

    fn world() -> World {
        World::new(SimConfig::small(), Scenario::new())
    }

    fn ctx(world: &World) -> AnswerContext<'_> {
        AnswerContext {
            world,
            now: 100.0,
            qhash: 0xabc,
        }
    }

    fn query(name: &str, qtype: RecordType) -> Message {
        Message::query(1, Name::from_ascii(name).unwrap(), qtype)
    }

    fn query_do(name: &str, qtype: RecordType) -> Message {
        let mut q = query(name, qtype);
        q.edns = Some(Edns {
            dnssec_ok: true,
            ..Edns::default()
        });
        q
    }

    #[test]
    fn root_referral_for_existing_tld() {
        let w = world();
        let q = query("www.dom1.com", RecordType::A);
        let resp = answer_root(ctx(&w), &q, Some(0));
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(!resp.header.aa);
        assert_eq!(resp.answers.len(), 0);
        assert_eq!(resp.authorities.len(), 13); // gTLD letters
        assert!(!resp.additionals.is_empty()); // glue
    }

    #[test]
    fn root_nxdomain_for_bad_tld() {
        let w = world();
        let q = query("foo.notarealtld12345", RecordType::A);
        let resp = answer_root(ctx(&w), &q, None);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        assert!(resp.header.aa);
        assert!(matches!(resp.authorities[0].rdata, RData::Soa(_)));
    }

    #[test]
    fn tld_referral_and_nxdomain_sizes() {
        let w = world();
        let (props, _, e) = w.domain_at(1, 0.0);
        let q = query(&format!("www.{}", props.esld), RecordType::A);
        let referral = answer_tld(ctx(&w), &q, props.tld, Some((&props, e)));
        assert_eq!(referral.rcode(), Rcode::NoError);
        assert_eq!(referral.authorities.len(), props.ns_count);
        assert_eq!(referral.additionals.len(), props.ns_count);

        // Signed NXDOMAIN from .com must be much larger than the plain one.
        let plain = answer_tld(ctx(&w), &query("x.mylo1.com", RecordType::Ns), 0, None);
        let signed = answer_tld(ctx(&w), &query_do("x.mylo1.com", RecordType::Ns), 0, None);
        let plain_len = plain.to_bytes().unwrap().len();
        let signed_len = signed.to_bytes().unwrap().len();
        assert_eq!(plain.rcode(), Rcode::NxDomain);
        assert!(signed_len > 3 * plain_len, "{signed_len} vs {plain_len}");
        assert!(
            signed_len > 600,
            "signed NXD should approach Table 2's 835 B: {signed_len}"
        );
    }

    #[test]
    fn auth_a_answer() {
        let w = world();
        let (props, ae, ne) = w.domain_at(1, 0.0);
        let fqdn = w.domains.fqdn(&props, 0);
        let q = query(&fqdn.to_ascii(), RecordType::A);
        let resp = answer_auth(ctx(&w), &q, &props, true, 0, (ae, ne));
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.header.aa);
        assert!(!resp.answers.is_empty());
        assert!(matches!(resp.answers[0].rdata, RData::A(_)));
        assert_eq!(resp.answers[0].ttl, props.a_ttl);
    }

    #[test]
    fn auth_aaaa_nodata_for_v4only() {
        let w = world();
        let id = (1..=2000)
            .find(|&i| !w.domain_at(i, 0.0).0.has_ipv6 && !w.domain_at(i, 0.0).0.nonconforming_ttl)
            .unwrap();
        let (props, ae, ne) = w.domain_at(id, 0.0);
        let fqdn = w.domains.fqdn(&props, 0);
        let q = query(&fqdn.to_ascii(), RecordType::Aaaa);
        let resp = answer_auth(ctx(&w), &q, &props, true, 0, (ae, ne));
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.answers.is_empty(), "NoData must have empty answer");
        // SOA minimum carries the negative TTL.
        match &resp.authorities[0].rdata {
            RData::Soa(soa) => assert_eq!(soa.minimum, props.neg_ttl),
            other => panic!("expected SOA, got {other:?}"),
        }
    }

    #[test]
    fn auth_nxdomain_for_missing_fqdn() {
        let w = world();
        let (props, ae, ne) = w.domain_at(2, 0.0);
        let q = query(&format!("nosuchhost.{}", props.esld), RecordType::A);
        let resp = answer_auth(ctx(&w), &q, &props, false, 0, (ae, ne));
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn nonconforming_ttl_varies() {
        let w = world();
        let id = (1..=2000)
            .find(|&i| w.domain_at(i, 0.0).0.nonconforming_ttl)
            .expect("config guarantees some nonconforming domains");
        let (props, ae, ne) = w.domain_at(id, 0.0);
        let fqdn = w.domains.fqdn(&props, 0);
        let q = query(&fqdn.to_ascii(), RecordType::A);
        let mut ttls = std::collections::HashSet::new();
        for i in 0..10u64 {
            let c = AnswerContext {
                world: &w,
                now: 0.0,
                qhash: i,
            };
            let resp = answer_auth(c, &q, &props, true, 0, (ae, ne));
            let ttl = resp.answers[0].ttl;
            assert!(ttl < 1_024);
            ttls.insert(ttl);
        }
        assert!(ttls.len() > 3, "TTL should vary: {ttls:?}");
    }

    #[test]
    fn ds_from_parent() {
        let w = world();
        let signed = (1..=2000).find(|&i| w.domain_at(i, 0.0).0.dnssec).unwrap();
        let (props, _, e) = w.domain_at(signed, 0.0);
        let q = query_do(&props.esld.to_ascii(), RecordType::Ds);
        let resp = answer_tld(ctx(&w), &q, props.tld, Some((&props, e)));
        assert!(
            resp.header.aa,
            "DS answers come authoritatively from the parent"
        );
        assert!(matches!(resp.answers[0].rdata, RData::Ds(_)));

        let unsigned = (1..=2000).find(|&i| !w.domain_at(i, 0.0).0.dnssec).unwrap();
        let (props, _, e) = w.domain_at(unsigned, 0.0);
        let q = query(&props.esld.to_ascii(), RecordType::Ds);
        let resp = answer_tld(ctx(&w), &q, props.tld, Some((&props, e)));
        assert!(resp.answers.is_empty());
        assert!(matches!(resp.authorities[0].rdata, RData::Soa(_)));
    }

    #[test]
    fn reverse_ptr() {
        let w = world();
        let q = query("4.3.2.1.in-addr.arpa", RecordType::Ptr);
        let hit = answer_reverse(ctx(&w), &q, true);
        assert!(matches!(hit.answers[0].rdata, RData::Ptr(_)));
        assert_eq!(hit.answers[0].ttl, PTR_TTL);
        let miss = answer_reverse(ctx(&w), &q, false);
        assert_eq!(miss.rcode(), Rcode::NxDomain);
    }

    #[test]
    fn ipv6_enabled_domain_answers_aaaa() {
        let w = world();
        let id = (1..=2000)
            .find(|&i| w.domain_at(i, 0.0).0.has_ipv6)
            .unwrap();
        let (props, ae, ne) = w.domain_at(id, 0.0);
        let fqdn = w.domains.fqdn(&props, 0);
        let q = query(&fqdn.to_ascii(), RecordType::Aaaa);
        let resp = answer_auth(ctx(&w), &q, &props, true, 0, (ae, ne));
        assert!(matches!(resp.answers[0].rdata, RData::Aaaa(_)));
    }

    #[test]
    fn all_answers_serialize() {
        // Every answer path must produce a valid wire message.
        let w = world();
        let (props, ae, ne) = w.domain_at(3, 0.0);
        let fqdn = w.domains.fqdn(&props, 0).to_ascii();
        for qtype in [
            RecordType::A,
            RecordType::Aaaa,
            RecordType::Ns,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Srv,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ds,
            RecordType::Any,
        ] {
            let q = query_do(&fqdn, qtype);
            let resp = if qtype == RecordType::Ds {
                answer_tld(ctx(&w), &q, props.tld, Some((&props, ne)))
            } else {
                answer_auth(ctx(&w), &q, &props, true, 0, (ae, ne))
            };
            let bytes = resp.to_bytes().expect("serializes");
            let parsed = Message::parse(&bytes).expect("reparses");
            assert_eq!(parsed.rcode(), resp.rcode(), "qtype {qtype}");
        }
    }
}
