//! The recursive resolver's cache, reduced to what a passive observer can
//! distinguish: *which queries do not reach authoritative servers*.
//!
//! The sensors sit above the resolvers, so the only effect of caching on
//! the observed stream is suppression. The cache therefore stores
//! expirable keys, not record data: delegations (per TLD / per domain),
//! positive answers (per name+type), and negative entries — NXDOMAIN per
//! name (RFC 2308 §5), NoData per name+type — with the negative TTL taken
//! from the zone's SOA minimum.

use dnswire::{Name, RecordType};
use std::collections::HashMap;

use crate::domains::DomainId;

/// What a resolver remembers, keyed by the minimum the simulation needs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// Delegation NS set for a TLD (learned from a root referral).
    TldDelegation(usize),
    /// Delegation NS set for a registrable domain (from a TLD referral).
    DomainDelegation(DomainId),
    /// A positive final answer for `(name, qtype)`.
    Answer(Name, RecordType),
    /// NXDOMAIN for a name (covers every type).
    NxDomain(Name),
    /// NoData: the name exists but has no records of this type.
    NoData(Name, RecordType),
}

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Entry present and fresh.
    Hit,
    /// Absent or expired: the resolver must ask an authoritative server.
    Miss,
}

/// TTL-expiring cache with bounded memory.
#[derive(Debug)]
pub struct ResolverCache {
    entries: HashMap<CacheKey, f64>,
    /// Soft cap; exceeded → sweep expired, then hard-trim arbitrarily.
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ResolverCache {
    /// Create a cache with a soft entry cap.
    pub fn new(capacity: usize) -> ResolverCache {
        assert!(capacity > 0);
        ResolverCache {
            entries: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Probe for `key` at time `now`, counting hit/miss statistics.
    /// Expired entries are removed on probe.
    pub fn probe(&mut self, key: &CacheKey, now: f64) -> CacheOutcome {
        match self.entries.get(key) {
            Some(&expiry) if expiry > now => {
                self.hits += 1;
                CacheOutcome::Hit
            }
            Some(_) => {
                self.entries.remove(key);
                self.misses += 1;
                CacheOutcome::Miss
            }
            None => {
                self.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Insert `key` valid for `ttl` seconds from `now`. A TTL of zero
    /// means "do not cache".
    pub fn store(&mut self, key: CacheKey, now: f64, ttl: u32) {
        if ttl == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.evict(now);
        }
        self.entries.insert(key, now + ttl as f64);
    }

    /// Drop a cached entry (used when a scenario flushes state).
    pub fn invalidate(&mut self, key: &CacheKey) {
        self.entries.remove(key);
    }

    /// Number of live entries (including not-yet-swept expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Sweep expired entries; if still over capacity, drop enough
    /// arbitrary entries to reach 7/8 capacity. Dropping live cache
    /// entries only creates extra cache misses — safe for correctness,
    /// and what real resolvers under memory pressure do too.
    fn evict(&mut self, now: f64) {
        self.entries.retain(|_, &mut expiry| expiry > now);
        if self.entries.len() >= self.capacity {
            let target = self.capacity * 7 / 8;
            let excess = self.entries.len() - target;
            let doomed: Vec<CacheKey> = self.entries.keys().take(excess).cloned().collect();
            for k in doomed {
                self.entries.remove(&k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn akey(s: &str) -> CacheKey {
        CacheKey::Answer(Name::from_ascii(s).unwrap(), RecordType::A)
    }

    #[test]
    fn miss_then_hit_then_expire() {
        let mut c = ResolverCache::new(100);
        let k = akey("www.example.com");
        assert_eq!(c.probe(&k, 0.0), CacheOutcome::Miss);
        c.store(k.clone(), 0.0, 60);
        assert_eq!(c.probe(&k, 30.0), CacheOutcome::Hit);
        assert_eq!(c.probe(&k, 59.9), CacheOutcome::Hit);
        assert_eq!(c.probe(&k, 60.1), CacheOutcome::Miss);
        // The expired entry was removed on probe.
        assert!(c.is_empty());
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let mut c = ResolverCache::new(10);
        c.store(akey("a.test"), 0.0, 0);
        assert_eq!(c.probe(&akey("a.test"), 0.01), CacheOutcome::Miss);
    }

    #[test]
    fn nxdomain_and_nodata_are_distinct_keys() {
        let mut c = ResolverCache::new(10);
        let name = Name::from_ascii("x.example").unwrap();
        c.store(CacheKey::NxDomain(name.clone()), 0.0, 300);
        assert_eq!(
            c.probe(&CacheKey::NoData(name.clone(), RecordType::Aaaa), 1.0),
            CacheOutcome::Miss
        );
        assert_eq!(c.probe(&CacheKey::NxDomain(name), 1.0), CacheOutcome::Hit);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut c = ResolverCache::new(64);
        for i in 0..10_000 {
            c.store(akey(&format!("h{i}.example.com")), i as f64 * 0.001, 3600);
        }
        assert!(c.len() <= 64, "cache grew to {}", c.len());
    }

    #[test]
    fn eviction_prefers_expired() {
        let mut c = ResolverCache::new(4);
        c.store(akey("old1.test"), 0.0, 1);
        c.store(akey("old2.test"), 0.0, 1);
        c.store(akey("live1.test"), 0.0, 1000);
        // At t=100, inserting past capacity sweeps the expired pair first.
        c.store(akey("live2.test"), 100.0, 1000);
        c.store(akey("live3.test"), 100.0, 1000);
        assert_eq!(c.probe(&akey("live1.test"), 100.0), CacheOutcome::Hit);
        assert_eq!(c.probe(&akey("old1.test"), 100.0), CacheOutcome::Miss);
    }

    #[test]
    fn stats_count() {
        let mut c = ResolverCache::new(8);
        let k = akey("s.test");
        c.probe(&k, 0.0);
        c.store(k.clone(), 0.0, 10);
        c.probe(&k, 1.0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = ResolverCache::new(8);
        let k = CacheKey::DomainDelegation(42);
        c.store(k.clone(), 0.0, 86_400);
        assert_eq!(c.probe(&k, 1.0), CacheOutcome::Hit);
        c.invalidate(&k);
        assert_eq!(c.probe(&k, 2.0), CacheOutcome::Miss);
    }
}
