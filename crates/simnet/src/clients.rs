//! Client populations: what kinds of queries arrive at resolvers, with
//! which mix (drives Table 2's QTYPE distribution).

use crate::config::SimConfig;

/// The intent behind one client arrival at a resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryIntent {
    /// Dual-stack browser using Happy Eyeballs: A + AAAA pair.
    WebDualstack,
    /// IPv4-only client: A only.
    WebV4Only,
    /// Reverse-DNS lookup (mail servers, log enrichment).
    Ptr,
    /// TXT-over-DNS custom protocol (anti-virus / anti-spam, §3.4).
    Txt,
    /// Mail routing.
    Mx,
    /// Service discovery.
    Srv,
    /// Explicit CNAME query.
    Cname,
    /// SOA refresh check.
    Soa,
    /// DS query from a validating resolver.
    Ds,
    /// NS query; predominantly PRSD attack traffic (§3.4).
    NsQuery,
    /// Mylobot-style DGA: A queries for FQDNs under non-existent `.com`
    /// SLDs (§3.2).
    Botnet,
    /// A-record scanning: non-existent hosts and junk TLDs.
    Scanner,
}

/// All intents in a fixed order, paired with their config weights.
pub fn intent_weights(cfg: &SimConfig) -> [(QueryIntent, f64); 12] {
    [
        (QueryIntent::WebDualstack, cfg.weight_web_dualstack),
        (QueryIntent::WebV4Only, cfg.weight_web_v4only),
        (QueryIntent::Ptr, cfg.weight_ptr),
        (QueryIntent::Txt, cfg.weight_txt),
        (QueryIntent::Mx, cfg.weight_mx),
        (QueryIntent::Srv, cfg.weight_srv),
        (QueryIntent::Cname, cfg.weight_cname),
        (QueryIntent::Soa, cfg.weight_soa),
        (QueryIntent::Ds, cfg.weight_ds),
        (QueryIntent::NsQuery, cfg.weight_ns),
        (QueryIntent::Botnet, cfg.weight_botnet),
        (QueryIntent::Scanner, cfg.weight_scanner),
    ]
}

/// Map a uniform draw `u ∈ [0, 1)` to an intent per the config weights.
pub fn pick_intent(cfg: &SimConfig, u: f64) -> QueryIntent {
    let total = cfg.total_weight();
    let mut target = u.clamp(0.0, 1.0 - 1e-12) * total;
    for (intent, weight) in intent_weights(cfg) {
        target -= weight;
        if target <= 0.0 {
            return intent;
        }
    }
    QueryIntent::Scanner
}

/// A profile groups intents for documentation and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientProfile {
    /// Human-driven web browsing (A/AAAA).
    Web,
    /// Server infrastructure (PTR, MX, SOA, TXT).
    Infrastructure,
    /// Security tooling (TXT protocols, DS).
    Security,
    /// Abusive automation (botnet DGA, PRSD, scanners).
    Abusive,
}

impl QueryIntent {
    /// Coarse grouping of this intent.
    pub fn profile(self) -> ClientProfile {
        match self {
            QueryIntent::WebDualstack | QueryIntent::WebV4Only => ClientProfile::Web,
            QueryIntent::Ptr
            | QueryIntent::Mx
            | QueryIntent::Soa
            | QueryIntent::Srv
            | QueryIntent::Cname => ClientProfile::Infrastructure,
            QueryIntent::Txt | QueryIntent::Ds => ClientProfile::Security,
            QueryIntent::NsQuery | QueryIntent::Botnet | QueryIntent::Scanner => {
                ClientProfile::Abusive
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_cover_unit_interval() {
        let cfg = SimConfig::default();
        assert_eq!(pick_intent(&cfg, 0.0), QueryIntent::WebDualstack);
        // u = 1 - eps must map to the last nonzero weight.
        assert_eq!(pick_intent(&cfg, 0.999_999), QueryIntent::Scanner);
    }

    #[test]
    fn mix_matches_weights() {
        let cfg = SimConfig::default();
        let n = 100_000;
        let mut web = 0usize;
        let mut botnet = 0usize;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            match pick_intent(&cfg, u) {
                QueryIntent::WebDualstack | QueryIntent::WebV4Only => web += 1,
                QueryIntent::Botnet => botnet += 1,
                _ => {}
            }
        }
        let total = cfg.total_weight();
        let expect_web = (cfg.weight_web_dualstack + cfg.weight_web_v4only) / total;
        let expect_botnet = cfg.weight_botnet / total;
        assert!((web as f64 / n as f64 - expect_web).abs() < 0.01);
        assert!((botnet as f64 / n as f64 - expect_botnet).abs() < 0.01);
    }

    #[test]
    fn zero_weight_intent_never_picked() {
        let cfg = SimConfig {
            weight_botnet: 0.0,
            ..SimConfig::default()
        };
        for i in 0..10_000 {
            let u = (i as f64 + 0.5) / 10_000.0;
            assert_ne!(pick_intent(&cfg, u), QueryIntent::Botnet);
        }
    }

    #[test]
    fn profiles_partition_intents() {
        for (intent, _) in intent_weights(&SimConfig::default()) {
            // Just ensure every intent maps to a profile without panicking.
            let _ = intent.profile();
        }
        assert_eq!(QueryIntent::Botnet.profile(), ClientProfile::Abusive);
        assert_eq!(QueryIntent::WebDualstack.profile(), ClientProfile::Web);
    }
}
