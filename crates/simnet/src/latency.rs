//! Per-path delay and hop modelling.
//!
//! Each `(resolver, nameserver)` pair has a stable path: a delay factor
//! around the server's median (for anycast this models which mirror the
//! resolver reaches) and a stable hop count. Individual queries add
//! lognormal jitter on top.

use crate::addressing::{mix, unit, NsInfo};
use std::net::IpAddr;

/// Deterministic latency/hops model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    seed: u64,
}

impl LatencyModel {
    /// Build the model from the world seed.
    pub fn new(seed: u64) -> LatencyModel {
        LatencyModel { seed }
    }

    fn pair_hash(&self, resolver: usize, ns_ip: IpAddr) -> u64 {
        let ip_bits: u128 = match ns_ip {
            IpAddr::V4(v4) => u32::from(v4) as u128,
            IpAddr::V6(v6) => u128::from(v6),
        };
        mix(self.seed
            ^ (resolver as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (ip_bits as u64)
            ^ ((ip_bits >> 64) as u64))
    }

    /// Stable per-pair delay factor in [0.6, 1.8].
    pub fn pair_factor(&self, resolver: usize, ns_ip: IpAddr) -> f64 {
        let h = self.pair_hash(resolver, ns_ip);
        0.6 + unit(h) * 1.2
    }

    /// Stable hop count between a resolver and a nameserver.
    pub fn pair_hops(&self, resolver: usize, ns: &NsInfo) -> u8 {
        let h = self.pair_hash(resolver, ns.ip);
        let jitter = (h % 5) as i16 - 2;
        (ns.hops as i16 + jitter).clamp(1, 30) as u8
    }

    /// One query's delay in ms: median × pair factor × lognormal jitter.
    /// `qhash` must vary per query for independent jitter draws.
    pub fn query_delay_ms(&self, resolver: usize, ns: &NsInfo, qhash: u64) -> f64 {
        let pair = self.pair_factor(resolver, ns.ip);
        // Cheap lognormal-ish jitter: exp(σ·z) with z from the sum of two
        // uniforms (triangular ≈ normal enough for a delay tail).
        let u1 = unit(mix(qhash ^ 0xD31A));
        let u2 = unit(mix(qhash ^ 0x10DE));
        let z = (u1 + u2) - 1.0; // in [-1, 1], mode 0
        let jitter = (0.55 * z * 2.0).exp();
        (ns.median_delay_ms * pair * jitter).max(0.2)
    }

    /// The response packet's IP TTL as observed at the sensor.
    pub fn observed_ip_ttl(&self, resolver: usize, ns: &NsInfo) -> u8 {
        ns.initial_ttl
            .saturating_sub(self.pair_hops(resolver, ns))
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::AddressPlan;

    fn model_and_ns() -> (LatencyModel, NsInfo) {
        let plan = AddressPlan::new(7, 10, 5, 50_000);
        (LatencyModel::new(7), plan.org_server(3, 0))
    }

    #[test]
    fn pair_values_are_stable() {
        let (m, ns) = model_and_ns();
        assert_eq!(
            m.pair_factor(2, ns.ip).to_bits(),
            m.pair_factor(2, ns.ip).to_bits()
        );
        assert_eq!(m.pair_hops(2, &ns), m.pair_hops(2, &ns));
    }

    #[test]
    fn different_pairs_differ() {
        let (m, ns) = model_and_ns();
        let factors: std::collections::HashSet<u64> =
            (0..10).map(|r| m.pair_factor(r, ns.ip).to_bits()).collect();
        assert!(factors.len() > 5);
    }

    #[test]
    fn delay_is_positive_and_centered() {
        let (m, ns) = model_and_ns();
        let mut sum = 0.0;
        let n = 2000;
        for q in 0..n {
            let d = m.query_delay_ms(1, &ns, q);
            assert!(d > 0.0);
            sum += d;
        }
        let mean = sum / n as f64;
        // Mean should be within a factor ~2.5 of the server median.
        assert!(
            mean > ns.median_delay_ms / 2.5 && mean < ns.median_delay_ms * 2.5,
            "mean {mean} vs median {}",
            ns.median_delay_ms
        );
    }

    #[test]
    fn observed_ttl_is_consistent_with_hops() {
        let (m, ns) = model_and_ns();
        let ttl = m.observed_ip_ttl(4, &ns);
        let hops = m.pair_hops(4, &ns);
        assert_eq!(ttl, ns.initial_ttl - hops);
        // And dnswire's inference recovers the hop count.
        assert_eq!(dnswire::ip::infer_hops(ttl), Some(hops));
    }
}
