//! The address plan: which organizations exist, which ASes and prefixes
//! they announce, and where every nameserver and resolver IP lives.
//!
//! The plan is a pure function of the configuration — nameserver addresses
//! for the long tail are *derived* (hashed) from domain identifiers rather
//! than stored, so a million-domain world costs no memory.

use asdb::{AsDb, Asn, Prefix};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Performance class of a nameserver, following the four delay regimes of
/// the paper's Figure 3a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerClass {
    /// 0–5 ms: co-located with resolvers (large CDNs).
    Colocated,
    /// 5–35 ms: same or neighbouring country.
    Regional,
    /// 35–350 ms: distant location.
    Distant,
    /// >350 ms: impaired server or connectivity.
    Impaired,
}

impl ServerClass {
    /// Geometric center of the class's delay band, in milliseconds.
    pub fn typical_delay_ms(self) -> f64 {
        match self {
            ServerClass::Colocated => 2.0,
            ServerClass::Regional => 15.0,
            ServerClass::Distant => 90.0,
            ServerClass::Impaired => 600.0,
        }
    }
}

/// Static description of one hosting organization (Table 1 rows).
#[derive(Debug, Clone)]
pub struct OrgSpec {
    /// Organization name as extracted from AS names, e.g. `"AMAZON"`.
    pub name: &'static str,
    /// Number of ASes the org announces.
    pub as_count: u8,
    /// Popular nameserver IPs operated inside this org's prefixes.
    pub servers: usize,
    /// Typical (median) response delay of this org's servers, ms.
    pub median_delay_ms: f64,
    /// Typical router hops from resolvers.
    pub median_hops: u8,
    /// Relative share of popular-domain hosting (drives Table 1's
    /// `global` column together with domain popularity).
    pub hosting_weight: f64,
    /// True for anycast CDNs: few addresses, many mirrors.
    pub anycast: bool,
}

/// The ten named organizations of Table 1, plus an aggregate "OTHER" tier
/// appended by the plan for everything else.
///
/// Server counts are the paper's values divided by 10 so laptop-scale runs
/// keep the ratios (AKAMAI many unicast IPs vs CLOUDFLARE few anycast
/// ones) without six-thousand-entry tables.
pub const ORGS: &[OrgSpec] = &[
    OrgSpec {
        name: "AMAZON",
        as_count: 3,
        servers: 503,
        median_delay_ms: 60.9,
        median_hops: 12,
        hosting_weight: 16.0,
        anycast: false,
    },
    OrgSpec {
        name: "VERISIGN",
        as_count: 7,
        servers: 6,
        median_delay_ms: 53.5,
        median_hops: 10,
        hosting_weight: 0.5,
        anycast: true,
    },
    OrgSpec {
        name: "CLOUDFLARE",
        as_count: 2,
        servers: 100,
        median_delay_ms: 26.5,
        median_hops: 7,
        hosting_weight: 6.6,
        anycast: true,
    },
    OrgSpec {
        name: "AKAMAI",
        as_count: 6,
        servers: 684,
        median_delay_ms: 14.9,
        median_hops: 7,
        hosting_weight: 6.4,
        anycast: false,
    },
    OrgSpec {
        name: "MICROSOFT",
        as_count: 5,
        servers: 48,
        median_delay_ms: 74.8,
        median_hops: 14,
        hosting_weight: 2.7,
        anycast: false,
    },
    OrgSpec {
        name: "PCH",
        as_count: 2,
        servers: 18,
        median_delay_ms: 29.9,
        median_hops: 7,
        hosting_weight: 0.4,
        anycast: true,
    },
    OrgSpec {
        name: "ULTRADNS",
        as_count: 1,
        servers: 93,
        median_delay_ms: 24.6,
        median_hops: 8,
        hosting_weight: 2.3,
        anycast: true,
    },
    OrgSpec {
        name: "GOOGLE",
        as_count: 1,
        servers: 24,
        median_delay_ms: 89.9,
        median_hops: 13,
        hosting_weight: 2.1,
        anycast: false,
    },
    OrgSpec {
        name: "DYNDNS",
        as_count: 1,
        servers: 60,
        median_delay_ms: 56.0,
        median_hops: 11,
        hosting_weight: 1.8,
        anycast: true,
    },
    OrgSpec {
        name: "GODADDY",
        as_count: 2,
        servers: 37,
        median_delay_ms: 63.0,
        median_hops: 11,
        hosting_weight: 1.2,
        anycast: false,
    },
];

/// Anycast mirror counts for the 13 root letters A–M. E, F and L have the
/// most mirrors and are the fastest (paper §3.5).
pub const ROOT_MIRRORS: [u16; 13] = [12, 6, 10, 20, 180, 220, 8, 60, 50, 70, 40, 160, 90];

/// Anycast mirror counts for the 13 gTLD letters; B is the largest and
/// fastest (paper §3.5: "The B gTLD nameserver is the fastest").
pub const GTLD_MIRRORS: [u16; 13] = [60, 140, 70, 60, 50, 70, 55, 65, 50, 60, 45, 55, 50];

/// Everything known about one nameserver address.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NsInfo {
    /// The nameserver's IP address.
    pub ip: IpAddr,
    /// Index into [`ORGS`], or `None` for tail/self-hosted servers.
    pub org: Option<usize>,
    /// Performance class.
    pub class: ServerClass,
    /// Median response delay of this server, ms (before per-query jitter).
    pub median_delay_ms: f64,
    /// Router hops between the resolver population and this server.
    pub hops: u8,
    /// Initial IP TTL its stack uses (64, 128 or 255).
    pub initial_ttl: u8,
}

/// The complete address plan.
#[derive(Debug, Clone)]
pub struct AddressPlan {
    seed: u64,
    resolvers: usize,
    contributors: usize,
    /// Number of /24 prefixes the tail-server space draws from; sized so
    /// that a fully-discovered tail reproduces the paper's §3.7 /24
    /// occupancy histogram (≈48 % single-address prefixes).
    tail_pool: u32,
}

/// First octet of the org address space: org `i` owns `(40+i).0.0.0/8`.
const ORG_BASE_OCTET: u8 = 40;
/// Tail nameservers live in `60.0.0.0/6`-ish space: octets 60..=99.
const TAIL_BASE_OCTET: u8 = 60;
const TAIL_OCTETS: u32 = 40;
/// Base ASN for org ASes; org `i`, AS `j` is `BASE + i*16 + j`.
const ORG_BASE_ASN: Asn = 16_000;
/// Base ASN for the synthetic tail ASes (one per tail /16).
const TAIL_BASE_ASN: Asn = 64_512;

/// 64-bit mix used for all derived choices (SplitMix64 finalizer).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0,1) from a mixed value.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl AddressPlan {
    /// Build the plan for a given seed and resolver population.
    /// `tail_pool` is the number of /24 prefixes available to tail
    /// servers (use roughly the domain-universe size).
    pub fn new(seed: u64, resolvers: usize, contributors: usize, tail_pool: u32) -> AddressPlan {
        assert!(resolvers > 0 && contributors > 0);
        AddressPlan {
            seed,
            resolvers,
            contributors: contributors.min(resolvers),
            tail_pool: tail_pool.clamp(1_024, TAIL_OCTETS * 65_536),
        }
    }

    /// Number of resolvers in the plan.
    pub fn resolver_count(&self) -> usize {
        self.resolvers
    }

    /// Number of SIE contributors.
    pub fn contributor_count(&self) -> usize {
        self.contributors
    }

    /// IP address of resolver `r` (0-based). Resolvers sit in
    /// `100.64.0.0/10`-style space, one /24 per contributor.
    pub fn resolver_ip(&self, r: usize) -> IpAddr {
        let c = self.contributor_of(r) as u32;
        let host = (r / self.contributors) as u32 + 1;
        IpAddr::V4(Ipv4Addr::new(
            100,
            64 + (c / 256) as u8,
            (c % 256) as u8,
            (host % 250 + 1) as u8,
        ))
    }

    /// Contributor that operates resolver `r`.
    pub fn contributor_of(&self, r: usize) -> u16 {
        (r % self.contributors) as u16
    }

    /// True if resolver `r` performs QNAME minimization given the
    /// configured fraction (the first ⌈fraction·n⌉ resolvers, so the set
    /// is stable across runs).
    pub fn resolver_is_qmin(&self, r: usize, fraction: f64) -> bool {
        let count = (fraction * self.resolvers as f64).ceil() as usize;
        r < count
    }

    /// The 13 root letters, A through M.
    pub fn root_letter(&self, letter: usize) -> NsInfo {
        assert!(letter < 13);
        let mirrors = ROOT_MIRRORS[letter] as f64;
        // More mirrors → closer to the querying population.
        let median_delay_ms = (260.0 / mirrors.sqrt()).clamp(3.0, 150.0);
        let hops = delay_to_hops(median_delay_ms, mix(self.seed ^ (0xA00 + letter as u64)));
        NsInfo {
            ip: IpAddr::V4(Ipv4Addr::new(198, 41, letter as u8, 4)),
            org: Some(5), // PCH announces the root letter prefixes here
            class: class_for_delay(median_delay_ms),
            median_delay_ms,
            hops,
            initial_ttl: 255,
        }
    }

    /// The 13 gTLD letters serving `.com`/`.net`.
    pub fn gtld_letter(&self, letter: usize) -> NsInfo {
        assert!(letter < 13);
        let mirrors = GTLD_MIRRORS[letter] as f64;
        let median_delay_ms = (230.0 / mirrors.sqrt()).clamp(3.0, 80.0);
        let hops = delay_to_hops(median_delay_ms, mix(self.seed ^ (0xB00 + letter as u64)));
        NsInfo {
            ip: IpAddr::V4(Ipv4Addr::new(192, 5 + letter as u8, 6, 30)),
            org: Some(1), // VERISIGN
            class: class_for_delay(median_delay_ms),
            median_delay_ms,
            hops,
            initial_ttl: 255,
        }
    }

    /// Authoritative server `j` (0 or 1) for ccTLD number `t`.
    pub fn cctld_server(&self, t: usize, j: usize) -> NsInfo {
        let h = mix(self.seed ^ 0xCC00 ^ ((t as u64) << 8) ^ j as u64);
        // ccTLDs are regional-to-distant; a few are PCH-hosted anycast.
        let pch = h.is_multiple_of(5);
        let median_delay_ms = if pch {
            18.0 + unit(mix(h)) * 20.0
        } else {
            35.0 + unit(mix(h)) * 120.0
        };
        let hops = delay_to_hops(median_delay_ms, mix(h ^ 1));
        NsInfo {
            ip: IpAddr::V4(Ipv4Addr::new(
                194,
                (t / 250) as u8,
                (t % 250) as u8,
                (10 + j) as u8,
            )),
            org: if pch { Some(5) } else { None },
            class: class_for_delay(median_delay_ms),
            median_delay_ms,
            hops,
            initial_ttl: 255,
        }
    }

    /// Popular nameserver `idx` of org `org` (idx < `ORGS[org].servers`).
    pub fn org_server(&self, org: usize, idx: usize) -> NsInfo {
        let spec = &ORGS[org];
        let idx = idx % spec.servers.max(1);
        let h = mix(self.seed ^ ((org as u64) << 32) ^ idx as u64);
        // Per-server spread around the org's median: low-index slots are
        // the well-provisioned ones (popular domains are pinned to them —
        // see `World::domain_ns`), which produces Fig. 3b's delay-vs-rank
        // gradient. A jitter factor keeps servers distinct.
        let pos = idx as f64 / spec.servers.max(1) as f64;
        let spread = (0.45 + 1.1 * pos) * (0.7 + 0.6 * unit(h));
        let median_delay_ms = (spec.median_delay_ms * spread).max(0.8);
        let hops = delay_to_hops(median_delay_ms, mix(h ^ 2));
        // ~12% of popular org servers are IPv6.
        let ip = if h % 100 < 12 {
            IpAddr::V6(Ipv6Addr::new(
                0x2001,
                0xdb8,
                org as u16,
                (idx >> 8) as u16,
                0,
                0,
                0,
                (idx & 0xff) as u16 + 1,
            ))
        } else {
            // Spread servers across the org's per-AS /12 blocks so the
            // Table 1 "ASes" column reflects the org's AS count.
            let as_span = spec.as_count as usize * 16;
            IpAddr::V4(Ipv4Addr::new(
                ORG_BASE_OCTET + org as u8,
                (idx % as_span) as u8,
                (idx / as_span) as u8,
                53,
            ))
        };
        NsInfo {
            ip,
            org: Some(org),
            class: class_for_delay(median_delay_ms),
            median_delay_ms,
            hops,
            initial_ttl: if spec.anycast { 255 } else { 64 },
        }
    }

    /// Tail (self-hosted) nameserver `j` ∈ {0, 1} for tail key `key`
    /// (derived from a domain identifier).
    ///
    /// Tail servers are spread thinly over the address space: most /24s
    /// host exactly one nameserver (paper §3.7: 48 % of observed /24
    /// prefixes had a single address).
    pub fn tail_server(&self, key: u64, j: usize) -> NsInfo {
        let h = mix(self.seed ^ 0x7A11 ^ key.rotate_left(17) ^ ((j as u64) << 56));
        // Pick a /24 from the bounded tail pool; a fully-discovered tail
        // then lands at ~1.3 addresses per occupied prefix — roughly the
        // paper's 48 % / 24 % / 7.7 % histogram for 1/2/3 addresses.
        let idx = (h % self.tail_pool as u64) as u32;
        let oct1 = TAIL_BASE_OCTET + (idx >> 16) as u8 % TAIL_OCTETS as u8;
        let oct2 = ((idx >> 8) & 0xff) as u8;
        let oct3 = (idx & 0xff) as u8;
        let host = (1 + ((h >> 24) % 253)) as u8;
        // Tail delay distribution per Figure 3a: mostly distant.
        let u = unit(mix(h ^ 3));
        let median_delay_ms = if u < 0.018 {
            1.0 + unit(mix(h ^ 4)) * 4.0
        } else if u < 0.21 {
            5.0 + unit(mix(h ^ 4)) * 30.0
        } else if u < 0.975 {
            35.0 + unit(mix(h ^ 4)).powi(2) * 315.0
        } else {
            350.0 + unit(mix(h ^ 4)) * 1800.0
        };
        let hops = delay_to_hops(median_delay_ms, mix(h ^ 5));
        NsInfo {
            ip: IpAddr::V4(Ipv4Addr::new(oct1, oct2, oct3, host)),
            org: None,
            class: class_for_delay(median_delay_ms),
            median_delay_ms,
            hops,
            initial_ttl: if h.is_multiple_of(3) { 128 } else { 64 },
        }
    }

    /// Build the routing + registry database covering every address the
    /// plan can produce, so Table 1 aggregation works via real LPM.
    pub fn build_asdb(&self) -> AsDb {
        let mut db = AsDb::new();
        for (i, org) in ORGS.iter().enumerate() {
            // Register each of the org's ASes with a Table-1-style name.
            for j in 0..org.as_count {
                let asn = ORG_BASE_ASN + (i as u32) * 16 + j as u32;
                let name = if j == 0 {
                    format!("{} - {} infrastructure", org.name, org.name)
                } else {
                    format!("{}-{:02} - {} regional", org.name, j + 1, org.name)
                };
                db.register_as(asn, &name);
            }
            // v4: split the org /8 across its ASes as /10+ chunks; simply
            // announce the /8 from the primary AS and carve per-AS /12s.
            let base = Ipv4Addr::new(ORG_BASE_OCTET + i as u8, 0, 0, 0);
            db.announce(
                Prefix::new(IpAddr::V4(base), 8),
                ORG_BASE_ASN + (i as u32) * 16,
            );
            for j in 1..org.as_count {
                let sub = Ipv4Addr::new(ORG_BASE_OCTET + i as u8, j << 4, 0, 0);
                db.announce(
                    Prefix::new(IpAddr::V4(sub), 12),
                    ORG_BASE_ASN + (i as u32) * 16 + j as u32,
                );
            }
            // v6 block.
            let v6 = Ipv6Addr::new(0x2001, 0xdb8, i as u16, 0, 0, 0, 0, 0);
            db.announce(
                Prefix::new(IpAddr::V6(v6), 48),
                ORG_BASE_ASN + (i as u32) * 16,
            );
        }
        // Root letter prefixes: announced by PCH's first AS (index 5).
        db.announce(
            Prefix::new(IpAddr::V4(Ipv4Addr::new(198, 41, 0, 0)), 16),
            ORG_BASE_ASN + 5 * 16,
        );
        // gTLD letter prefixes: VERISIGN (index 1), spread over its
        // seven ASes as in the real constellation.
        for l in 0..13u8 {
            db.announce(
                Prefix::new(IpAddr::V4(Ipv4Addr::new(192, 5 + l, 0, 0)), 16),
                ORG_BASE_ASN + 16 + (l % 7) as u32,
            );
        }
        // ccTLD space: one registry org per /16 (many distinct national
        // registries, none individually in the top 10).
        for x in 0..7u32 {
            let asn = 3_000 + x;
            db.register_as(asn, &format!("NIC{x:02} - national registry group"));
            db.announce(
                Prefix::new(IpAddr::V4(Ipv4Addr::new(194, x as u8, 0, 0)), 16),
                asn,
            );
        }
        // Tail space: one AS per first octet, each its own hosting org
        // (digit-free names so org extraction keeps them distinct).
        for o in 0..TAIL_OCTETS {
            let asn = TAIL_BASE_ASN + o;
            db.register_as(asn, &format!("HOSTER{o:02} - assorted hosting"));
            db.announce(
                Prefix::new(
                    IpAddr::V4(Ipv4Addr::new(TAIL_BASE_OCTET + o as u8, 0, 0, 0)),
                    8,
                ),
                asn,
            );
        }
        db
    }
}

/// Map a delay to a hop count with deterministic jitter: closer servers
/// are fewer hops away. Fit loosely to Table 1 (15 ms ≈ 7 hops,
/// 60 ms ≈ 12, 90 ms ≈ 13).
fn delay_to_hops(delay_ms: f64, h: u64) -> u8 {
    let base = 1.8 * delay_ms.max(1.0).ln() + 3.0;
    let jitter = (unit(h) - 0.5) * 3.0;
    (base + jitter).round().clamp(1.0, 30.0) as u8
}

/// Classify a median delay into the paper's four regimes.
fn class_for_delay(ms: f64) -> ServerClass {
    if ms < 5.0 {
        ServerClass::Colocated
    } else if ms < 35.0 {
        ServerClass::Regional
    } else if ms < 350.0 {
        ServerClass::Distant
    } else {
        ServerClass::Impaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> AddressPlan {
        AddressPlan::new(42, 100, 20, 100_000)
    }

    #[test]
    fn org_table_is_table1_shaped() {
        assert_eq!(ORGS.len(), 10);
        assert_eq!(ORGS[0].name, "AMAZON");
        // AKAMAI has the most unicast servers; CLOUDFLARE far fewer.
        let akamai = ORGS.iter().find(|o| o.name == "AKAMAI").unwrap();
        let cf = ORGS.iter().find(|o| o.name == "CLOUDFLARE").unwrap();
        assert!(akamai.servers > 5 * cf.servers);
        assert!(cf.anycast && !akamai.anycast);
    }

    #[test]
    fn resolver_ips_are_distinct() {
        let p = plan();
        let mut seen = std::collections::HashSet::new();
        for r in 0..p.resolver_count() {
            assert!(seen.insert(p.resolver_ip(r)), "dup resolver ip for {r}");
        }
    }

    #[test]
    fn contributor_mapping_is_stable() {
        let p = plan();
        assert_eq!(p.contributor_of(0), 0);
        assert_eq!(p.contributor_of(20), 0);
        assert_eq!(p.contributor_of(21), 1);
        assert!(p.contributor_count() == 20);
    }

    #[test]
    fn qmin_fraction_selects_prefix_of_resolvers() {
        let p = plan();
        let count = (0..100).filter(|&r| p.resolver_is_qmin(r, 0.03)).count();
        assert_eq!(count, 3);
        assert!(p.resolver_is_qmin(0, 0.03));
        assert!(!p.resolver_is_qmin(99, 0.03));
    }

    #[test]
    fn root_letters_efl_are_fastest() {
        let p = plan();
        let delays: Vec<f64> = (0..13).map(|l| p.root_letter(l).median_delay_ms).collect();
        // E (4), F (5), L (11) have the most mirrors → smallest delays.
        let mut ranked: Vec<usize> = (0..13).collect();
        ranked.sort_by(|&a, &b| delays[a].partial_cmp(&delays[b]).unwrap());
        assert!(ranked[..3].contains(&4) || ranked[..4].contains(&4));
        assert!(ranked[..3].contains(&5));
        assert!(ranked[..4].contains(&11));
    }

    #[test]
    fn gtld_b_is_fastest() {
        let p = plan();
        let delays: Vec<f64> = (0..13).map(|l| p.gtld_letter(l).median_delay_ms).collect();
        let min = delays
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min, 1, "gTLD B must be the fastest letter");
    }

    #[test]
    fn org_servers_deterministic_and_in_org_space() {
        let p = plan();
        let a = p.org_server(0, 7);
        let b = p.org_server(0, 7);
        assert_eq!(a, b);
        if let IpAddr::V4(v4) = a.ip {
            assert_eq!(v4.octets()[0], ORG_BASE_OCTET);
        }
        let asdb = p.build_asdb();
        let info = asdb.lookup(a.ip).expect("org server covered by asdb");
        assert_eq!(info.org, "AMAZON");
    }

    #[test]
    fn tail_servers_spread_over_many_prefixes() {
        let p = plan();
        let mut prefixes = std::collections::HashSet::new();
        let n = 5000;
        for key in 0..n {
            let ns = p.tail_server(key, 0);
            if let IpAddr::V4(v4) = ns.ip {
                let o = v4.octets();
                prefixes.insert((o[0], o[1], o[2]));
            }
        }
        // Nearly every server lands in its own /24 at this density.
        assert!(prefixes.len() as f64 > 0.9 * n as f64, "{}", prefixes.len());
    }

    #[test]
    fn tail_delay_regimes_match_fig3a() {
        let p = plan();
        let mut counts = [0usize; 4];
        let n = 20_000;
        for key in 0..n {
            match p.tail_server(key, 0).class {
                ServerClass::Colocated => counts[0] += 1,
                ServerClass::Regional => counts[1] += 1,
                ServerClass::Distant => counts[2] += 1,
                ServerClass::Impaired => counts[3] += 1,
            }
        }
        let share = |c: usize| c as f64 / n as f64;
        assert!(
            (0.005..0.05).contains(&share(counts[0])),
            "colocated {}",
            share(counts[0])
        );
        assert!(
            (0.1..0.35).contains(&share(counts[1])),
            "regional {}",
            share(counts[1])
        );
        assert!(
            (0.6..0.85).contains(&share(counts[2])),
            "distant {}",
            share(counts[2])
        );
        assert!(
            (0.005..0.06).contains(&share(counts[3])),
            "impaired {}",
            share(counts[3])
        );
    }

    #[test]
    fn asdb_covers_all_address_families() {
        let p = plan();
        let db = p.build_asdb();
        assert!(db.lookup(p.root_letter(0).ip).is_some());
        assert!(db.lookup(p.gtld_letter(3).ip).is_some());
        assert!(db.lookup(p.cctld_server(17, 0).ip).is_some());
        assert!(db.lookup(p.tail_server(99, 1).ip).is_some());
        // Find an IPv6 org server and check coverage.
        let v6 = (0..200)
            .map(|i| p.org_server(3, i))
            .find(|ns| ns.ip.is_ipv6());
        if let Some(ns) = v6 {
            assert!(db.lookup(ns.ip).is_some());
        }
    }

    #[test]
    fn hops_increase_with_delay() {
        let near = delay_to_hops(2.0, 1);
        let far = delay_to_hops(300.0, 1);
        assert!(far > near);
        assert!((1..=30).contains(&near));
        assert!((1..=30).contains(&far));
    }
}
