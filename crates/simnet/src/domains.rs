//! The domain universe: a million-entry popularity-ranked eSLD space whose
//! per-domain properties are *derived*, not stored.
//!
//! Every domain is identified by its popularity rank (`DomainId`, 1-based).
//! [`DomainPlan::props`] computes the domain's TLD, hosting organization,
//! nameserver fan-out, TTLs, IPv6 status and service records as a pure
//! function of `(seed, rank)`, so the plan scales to arbitrary universe
//! sizes with zero memory. Scenario overrides (TTL cuts, renumbering,
//! IPv6 turn-up) are layered on top by [`crate::Scenario`].

use crate::addressing::{mix, unit, ORGS};
use crate::config::SimConfig;
use dnswire::Name;

/// Popularity rank of an eSLD, 1-based (1 = most popular).
pub type DomainId = u64;

/// Number of TLD slots in the simulated root zone. About 80 % of the
/// traffic-weighted mass lands on `.com`; ~1,150 of these slots see
/// traffic within an hour at default rates (paper Fig. 4c converges to
/// ~1,150 active TLDs out of >1,500 existing).
pub const TLD_COUNT: usize = 1_500;

/// Derived properties of one domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainProps {
    /// The domain's rank.
    pub id: DomainId,
    /// Registrable name, e.g. `dom42.com`.
    pub esld: Name,
    /// Index into the TLD table.
    pub tld: usize,
    /// Hosting org (index into [`ORGS`]) or `None` when self-hosted.
    pub org: Option<usize>,
    /// Number of authoritative nameservers (2..=4).
    pub ns_count: usize,
    /// Whether the domain publishes AAAA records.
    pub has_ipv6: bool,
    /// TTL of A records, seconds.
    pub a_ttl: u32,
    /// TTL of AAAA records, seconds.
    pub aaaa_ttl: u32,
    /// Negative-caching TTL (SOA minimum), seconds.
    pub neg_ttl: u32,
    /// Number of stable FQDNs under the domain.
    pub fqdn_count: usize,
    /// Publishes MX records.
    pub has_mx: bool,
    /// Publishes SRV records.
    pub has_srv: bool,
    /// Runs a TXT-over-DNS service (anti-virus style, paper §3.4).
    pub txt_service: bool,
    /// DNSSEC-signed (DS at the parent, RRSIG in answers).
    pub dnssec: bool,
    /// Authoritative server returns a *different, decreasing* TTL on every
    /// response (the "Non-conforming" rows of Table 4).
    pub nonconforming_ttl: bool,
}

/// The derivation rules for domain properties.
#[derive(Debug, Clone)]
pub struct DomainPlan {
    seed: u64,
    domains: u64,
    cfg_ipv6_fraction: f64,
    fqdns_per_domain: usize,
    ttl_a_popular: u32,
    ttl_a_default: u32,
    ttl_aaaa: u32,
    ttl_negative_default: u32,
    /// Names of the TLD table (index 0 = com).
    tlds: Vec<String>,
}

/// Cap on how many top-ranked domains are considered "popular" (CDN-style
/// TTLs, mostly org-hosted, more FQDNs). Small universes scale this down —
/// see [`DomainPlan::popular_cutoff`].
const POPULAR_CUTOFF_MAX: u64 = 3_000;

impl DomainPlan {
    /// Build the plan from the simulation config.
    pub fn new(cfg: &SimConfig) -> DomainPlan {
        let mut tlds = Vec::with_capacity(TLD_COUNT);
        // Head TLDs get real names so PSL extraction and the TLD-count
        // experiments look right; the rest are synthetic ccTLD-ish labels.
        const HEAD: &[&str] = &[
            "com", "net", "org", "de", "uk", "ru", "nl", "fr", "br", "it", "pl", "cn", "jp", "au",
            "in", "info", "ir", "cz", "ua", "ca", "eu", "kr", "es", "ch", "se", "us", "at", "be",
            "biz", "dk", "tv", "me", "io", "co", "xyz", "top", "online", "site", "club", "shop",
            "app", "dev", "arpa",
        ];
        for name in HEAD {
            tlds.push((*name).to_string());
        }
        let mut i = 0;
        while tlds.len() < TLD_COUNT {
            // Two-letter ccTLD-style labels, then three-letter ones.
            let label = synth_tld_label(i);
            if !HEAD.contains(&label.as_str()) {
                tlds.push(label);
            }
            i += 1;
        }
        DomainPlan {
            seed: cfg.seed,
            domains: cfg.domains as u64,
            cfg_ipv6_fraction: cfg.ipv6_domain_fraction,
            fqdns_per_domain: cfg.fqdns_per_domain,
            ttl_a_popular: cfg.ttl_a_popular,
            ttl_a_default: cfg.ttl_a_default,
            ttl_aaaa: cfg.ttl_aaaa,
            ttl_negative_default: cfg.ttl_negative_default,
            tlds,
        }
    }

    /// Number of domains in the universe.
    pub fn domain_count(&self) -> u64 {
        self.domains
    }

    /// The TLD table (presentation labels).
    pub fn tlds(&self) -> &[String] {
        &self.tlds
    }

    /// TLD label by index.
    pub fn tld_name(&self, idx: usize) -> &str {
        &self.tlds[idx]
    }

    /// Index of `.com` in the TLD table.
    pub fn com_tld(&self) -> usize {
        0
    }

    /// Number of top ranks treated as "popular": 5 % of the universe,
    /// capped at 3,000 and at least 50.
    pub fn popular_cutoff(&self) -> u64 {
        (self.domains / 20).clamp(50, POPULAR_CUTOFF_MAX)
    }

    /// True if TLD `idx` is served by the gTLD letter constellation
    /// (`.com`/`.net`, like Verisign's registry).
    pub fn tld_is_gtld(&self, idx: usize) -> bool {
        idx <= 1
    }

    /// Derived properties of domain `id` (1-based rank).
    pub fn props(&self, id: DomainId) -> DomainProps {
        assert!(id >= 1 && id <= self.domains, "domain id out of range");
        let h = mix(self.seed ^ id.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let tld = self.assign_tld(id, h);
        let esld = Name::from_ascii(&format!("dom{}.{}", id, self.tlds[tld]))
            .expect("generated name is valid");
        let popular = id <= self.popular_cutoff();

        // Hosting: popular domains are predominantly hosted by the big
        // organizations; tail domains self-host on scattered servers.
        let host_prob = if popular { 0.92 } else { 0.18 };
        let org = if unit(mix(h ^ 1)) < host_prob {
            Some(pick_org(mix(h ^ 2)))
        } else {
            None
        };

        // Server-side IPv6: more common among the popular, org-hosted set.
        let v6_prob = if popular {
            self.cfg_ipv6_fraction * 1.6
        } else {
            self.cfg_ipv6_fraction * 0.9
        };
        let has_ipv6 = unit(mix(h ^ 3)) < v6_prob.min(0.95);

        // TTLs: popular CDN-ish domains use short A TTLs; everyone else
        // the default. A deterministic slice of domains runs a *low*
        // negative-caching TTL (the Fig. 9 pathology); a smaller slice
        // runs a *high* one.
        let mut a_ttl = if popular {
            self.ttl_a_popular
        } else {
            self.ttl_a_default
        };
        let neg_sel = mix(h ^ 4) % 100;
        let neg_ttl = if neg_sel < 7 {
            // The paper's worst offenders (§5.2, the OS time services at
            // ranks 81/116): A TTL of 10–15 minutes paired with a 15 s
            // negative TTL — a quotient of ~50 and ~90 % empty responses.
            a_ttl = 900;
            15
        } else if neg_sel < 11 {
            60
        } else if neg_sel < 15 {
            3_600 // higher than A TTL (the rank-140 curiosity)
        } else {
            self.ttl_negative_default
        };

        let fqdn_count = if popular {
            self.fqdns_per_domain * 4
        } else {
            self.fqdns_per_domain
        }
        .max(1);

        DomainProps {
            id,
            esld,
            tld,
            org,
            ns_count: 2 + (mix(h ^ 5) % 3) as usize,
            has_ipv6,
            a_ttl,
            aaaa_ttl: self.ttl_aaaa,
            neg_ttl,
            fqdn_count,
            has_mx: mix(h ^ 6) % 100 < 80,
            has_srv: mix(h ^ 7) % 100 < 25,
            txt_service: popular && mix(h ^ 8) % 100 < 4,
            dnssec: mix(h ^ 9) % 100 < 45,
            nonconforming_ttl: mix(h ^ 10) % 1000 < 6,
        }
    }

    /// The `i`-th stable FQDN label under a domain ("www" first).
    pub fn fqdn_label(&self, id: DomainId, i: usize) -> String {
        const COMMON: &[&str] = &[
            "www", "api", "cdn", "mail", "img", "static", "app", "login", "news", "shop", "m",
            "blog",
        ];
        if i < COMMON.len() {
            COMMON[i].to_string()
        } else {
            format!("host{}", mix(self.seed ^ id ^ (i as u64) << 40) % 100_000)
        }
    }

    /// Full FQDN `label.esld` for stable FQDN index `i`.
    pub fn fqdn(&self, props: &DomainProps, i: usize) -> Name {
        props
            .esld
            .prepend(self.fqdn_label(props.id, i % props.fqdn_count).as_bytes())
            .expect("label fits")
    }

    fn assign_tld(&self, _id: DomainId, h: u64) -> usize {
        // Traffic-weighted TLD mix: ~52% com, 6% net, 5% org, the rest
        // Zipf-spread over the remaining table. Assignment by rank hash so
        // it is stable per domain.
        let u = unit(mix(h ^ 0x71d));
        if u < 0.52 {
            0
        } else if u < 0.58 {
            1
        } else if u < 0.63 {
            2
        } else {
            // Zipf over indexes 3..TLD_COUNT.
            let z = crate::zipf::Zipf::new((TLD_COUNT - 3) as u64, 1.0);
            3 + (z.rank_for(unit(mix(h ^ 0xF00D))) - 1) as usize
        }
    }
}

/// Pick a hosting org with probability proportional to hosting weight.
fn pick_org(h: u64) -> usize {
    let total: f64 = ORGS.iter().map(|o| o.hosting_weight).sum();
    let mut target = unit(h) * total;
    for (i, org) in ORGS.iter().enumerate() {
        target -= org.hosting_weight;
        if target <= 0.0 {
            return i;
        }
    }
    ORGS.len() - 1
}

/// Generate a synthetic TLD label for index `i`: `aa`, `ab`, ..., then
/// three-letter labels.
fn synth_tld_label(i: usize) -> String {
    let letters = b"abcdefghijklmnopqrstuvwxyz";
    if i < 26 * 26 {
        String::from_utf8(vec![letters[i / 26], letters[i % 26]]).unwrap()
    } else {
        let j = i - 26 * 26;
        String::from_utf8(vec![
            letters[(j / (26 * 26)) % 26],
            letters[(j / 26) % 26],
            letters[j % 26],
        ])
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> DomainPlan {
        DomainPlan::new(&SimConfig::small())
    }

    #[test]
    fn props_are_deterministic() {
        let p = plan();
        assert_eq!(p.props(1), p.props(1));
        assert_eq!(p.props(1999), p.props(1999));
    }

    #[test]
    fn tld_table_has_expected_shape() {
        let p = plan();
        assert_eq!(p.tlds().len(), TLD_COUNT);
        assert_eq!(p.tld_name(0), "com");
        assert!(p.tld_is_gtld(0) && p.tld_is_gtld(1) && !p.tld_is_gtld(2));
        // All labels distinct.
        let set: std::collections::HashSet<_> = p.tlds().iter().collect();
        assert_eq!(set.len(), TLD_COUNT);
    }

    #[test]
    fn com_dominates() {
        let p = plan();
        let com = (1..=2000).filter(|&id| p.props(id).tld == 0).count();
        let share = com as f64 / 2000.0;
        assert!((0.45..0.60).contains(&share), "com share {share}");
    }

    #[test]
    fn popular_domains_are_org_hosted() {
        let p = plan();
        let cutoff = p.popular_cutoff();
        assert_eq!(cutoff, 100, "small config: 2000/20 clamped to >=50");
        let hosted = (1..=cutoff).filter(|&id| p.props(id).org.is_some()).count();
        assert!(
            hosted as f64 > 0.8 * cutoff as f64,
            "only {hosted}/{cutoff} popular domains org-hosted"
        );
        let tail_hosted = (1500..=1999)
            .filter(|&id| p.props(id).org.is_some())
            .count();
        assert!(
            tail_hosted < 200,
            "{tail_hosted}/500 tail domains org-hosted"
        );
    }

    #[test]
    fn some_domains_have_low_negative_ttl() {
        let p = plan();
        let low = (1..=1000)
            .map(|id| p.props(id))
            .filter(|d| d.neg_ttl < d.a_ttl)
            .count();
        assert!(low > 30, "too few low-negTTL domains: {low}");
        let high = (1..=1000)
            .map(|id| p.props(id))
            .filter(|d| d.neg_ttl > d.a_ttl)
            .count();
        assert!(high > 5, "too few high-negTTL domains: {high}");
    }

    #[test]
    fn esld_names_parse_and_split() {
        let p = plan();
        let d = p.props(7);
        assert!(d.esld.label_count() >= 2);
        let fqdn = p.fqdn(&d, 0);
        assert!(fqdn.is_subdomain_of(&d.esld));
        assert_eq!(fqdn.label_count(), d.esld.label_count() + 1);
        assert!(fqdn.to_ascii().starts_with("www."));
    }

    #[test]
    fn nonconforming_is_rare() {
        let p = plan();
        let n = (1..=2000)
            .filter(|&id| p.props(id).nonconforming_ttl)
            .count();
        assert!(n < 40, "nonconforming too common: {n}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_id_panics() {
        plan().props(0);
    }
}
