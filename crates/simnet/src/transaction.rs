//! The observable unit: one resolver↔nameserver DNS transaction.

use dnswire::{ip, Message};
use std::net::IpAddr;

/// One cache-miss DNS transaction as a passive sensor sees it
/// (paper §2.1): the query, the response (if any), precise timing, and
/// the IP-level evidence used for hop inference.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Stream time of the query, seconds since simulation start.
    pub time: f64,
    /// Recursive resolver address (source of the query).
    pub resolver: IpAddr,
    /// SIE contributor operating the resolver.
    pub contributor: u16,
    /// Authoritative nameserver address (destination of the query).
    pub nameserver: IpAddr,
    /// The parsed query message.
    pub query: Message,
    /// The parsed response, `None` when the query went unanswered.
    pub response: Option<Message>,
    /// Server response delay in milliseconds (query→response at the
    /// resolver); meaningless when `response` is `None`.
    pub delay_ms: f64,
    /// IP TTL of the *response* packet as received at the sensor; used to
    /// infer the hop count via [`dnswire::ip::infer_hops`].
    pub ip_ttl_observed: u8,
    /// Size of the response DNS payload in bytes (0 if unanswered).
    pub response_size: usize,
}

/// UDP source port used for resolver-originated queries in raw packets.
const RESOLVER_PORT: u16 = 43210;

impl Transaction {
    /// Serialize this transaction into raw IP/UDP packets, exactly as a
    /// passive sensor would capture them: `(query packet, response
    /// packet)`. The query packet carries a plausible client-side IP TTL;
    /// the response packet carries the observed TTL recorded at capture.
    pub fn to_packets(&self) -> (Vec<u8>, Option<Vec<u8>>) {
        let qbytes = self.query.to_bytes().expect("query serializes");
        let qpkt = ip::build_udp_packet(
            self.resolver,
            self.nameserver,
            RESOLVER_PORT,
            53,
            64,
            &qbytes,
        );
        let rpkt = self.response.as_ref().map(|resp| {
            let rbytes = resp.to_bytes().expect("response serializes");
            ip::build_udp_packet(
                self.nameserver,
                self.resolver,
                53,
                RESOLVER_PORT,
                self.ip_ttl_observed,
                &rbytes,
            )
        });
        (qpkt, rpkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{Name, RecordType};
    use std::net::Ipv4Addr;

    #[test]
    fn packets_roundtrip_through_dnswire() {
        let query = Message::query(
            77,
            Name::from_ascii("www.example.com").unwrap(),
            RecordType::A,
        );
        let mut response = Message::response_to(&query, dnswire::Rcode::NoError);
        response.header.aa = true;
        let tx = Transaction {
            time: 1.5,
            resolver: IpAddr::V4(Ipv4Addr::new(100, 64, 0, 1)),
            contributor: 3,
            nameserver: IpAddr::V4(Ipv4Addr::new(40, 0, 0, 53)),
            query: query.clone(),
            response: Some(response.clone()),
            delay_ms: 12.0,
            ip_ttl_observed: 57,
            response_size: response.to_bytes().unwrap().len(),
        };
        let (qpkt, rpkt) = tx.to_packets();
        let qdg = ip::parse_udp_packet(&qpkt).unwrap();
        assert_eq!(qdg.ip.src, tx.resolver);
        assert_eq!(qdg.ip.dst, tx.nameserver);
        assert_eq!(qdg.udp.dst_port, 53);
        let qparsed =
            Message::parse(&qpkt[qdg.payload_offset..qdg.payload_offset + qdg.payload_len])
                .unwrap();
        assert_eq!(qparsed, query);

        let rpkt = rpkt.unwrap();
        let rdg = ip::parse_udp_packet(&rpkt).unwrap();
        assert_eq!(rdg.ip.ttl, 57);
        assert_eq!(rdg.payload_len, tx.response_size);
        let rparsed =
            Message::parse(&rpkt[rdg.payload_offset..rdg.payload_offset + rdg.payload_len])
                .unwrap();
        assert_eq!(rparsed, response);
    }

    #[test]
    fn unanswered_has_no_response_packet() {
        let query = Message::query(1, Name::from_ascii("x.test").unwrap(), RecordType::A);
        let tx = Transaction {
            time: 0.0,
            resolver: IpAddr::V4(Ipv4Addr::new(100, 64, 0, 1)),
            contributor: 0,
            nameserver: IpAddr::V4(Ipv4Addr::new(60, 0, 0, 1)),
            query,
            response: None,
            delay_ms: 0.0,
            ip_ttl_observed: 0,
            response_size: 0,
        };
        let (_, rpkt) = tx.to_packets();
        assert!(rpkt.is_none());
    }
}
