//! The observable unit: one resolver↔nameserver DNS transaction.

use dnswire::{ip, Message};
use std::net::IpAddr;

/// One cache-miss DNS transaction as a passive sensor sees it
/// (paper §2.1): the query, the response (if any), precise timing, and
/// the IP-level evidence used for hop inference.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Stream time of the query, seconds since simulation start.
    pub time: f64,
    /// Recursive resolver address (source of the query).
    pub resolver: IpAddr,
    /// SIE contributor operating the resolver.
    pub contributor: u16,
    /// Authoritative nameserver address (destination of the query).
    pub nameserver: IpAddr,
    /// The parsed query message.
    pub query: Message,
    /// The parsed response, `None` when the query went unanswered.
    pub response: Option<Message>,
    /// Server response delay in milliseconds (query→response at the
    /// resolver); meaningless when `response` is `None`.
    pub delay_ms: f64,
    /// IP TTL of the *response* packet as received at the sensor; used to
    /// infer the hop count via [`dnswire::ip::infer_hops`].
    pub ip_ttl_observed: u8,
    /// Size of the response DNS payload in bytes (0 if unanswered).
    pub response_size: usize,
}

/// UDP source port used for resolver-originated queries in raw packets.
const RESOLVER_PORT: u16 = 43210;

impl Transaction {
    /// Deterministic sensor assignment for an `n`-sensor deployment:
    /// which sensor taps this transaction's resolver.
    ///
    /// Real sensor deployments partition by vantage point — each sensor
    /// sits next to (and sees all traffic of) a set of resolvers. Hashing
    /// the resolver address reproduces that: every transaction of one
    /// resolver lands on the same sensor, so per-resolver transaction
    /// order survives the split and an `n`-way feed merge can reconstruct
    /// the original stream exactly.
    pub fn sensor_index(&self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        // FNV-1a over the address octets; stable and dependency-free.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: &[u8]| {
            for &x in b {
                h ^= x as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        match self.resolver {
            IpAddr::V4(a) => eat(&a.octets()),
            IpAddr::V6(a) => eat(&a.octets()),
        }
        (h % n as u64) as usize
    }

    /// Serialize this transaction into raw IP/UDP packets, exactly as a
    /// passive sensor would capture them: `(query packet, response
    /// packet)`. The query packet carries a plausible client-side IP TTL;
    /// the response packet carries the observed TTL recorded at capture.
    pub fn to_packets(&self) -> (Vec<u8>, Option<Vec<u8>>) {
        let qbytes = self.query.to_bytes().expect("query serializes");
        let qpkt = ip::build_udp_packet(
            self.resolver,
            self.nameserver,
            RESOLVER_PORT,
            53,
            64,
            &qbytes,
        );
        let rpkt = self.response.as_ref().map(|resp| {
            let rbytes = resp.to_bytes().expect("response serializes");
            ip::build_udp_packet(
                self.nameserver,
                self.resolver,
                53,
                RESOLVER_PORT,
                self.ip_ttl_observed,
                &rbytes,
            )
        });
        (qpkt, rpkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{Name, RecordType};
    use std::net::Ipv4Addr;

    #[test]
    fn packets_roundtrip_through_dnswire() {
        let query = Message::query(
            77,
            Name::from_ascii("www.example.com").unwrap(),
            RecordType::A,
        );
        let mut response = Message::response_to(&query, dnswire::Rcode::NoError);
        response.header.aa = true;
        let tx = Transaction {
            time: 1.5,
            resolver: IpAddr::V4(Ipv4Addr::new(100, 64, 0, 1)),
            contributor: 3,
            nameserver: IpAddr::V4(Ipv4Addr::new(40, 0, 0, 53)),
            query: query.clone(),
            response: Some(response.clone()),
            delay_ms: 12.0,
            ip_ttl_observed: 57,
            response_size: response.to_bytes().unwrap().len(),
        };
        let (qpkt, rpkt) = tx.to_packets();
        let qdg = ip::parse_udp_packet(&qpkt).unwrap();
        assert_eq!(qdg.ip.src, tx.resolver);
        assert_eq!(qdg.ip.dst, tx.nameserver);
        assert_eq!(qdg.udp.dst_port, 53);
        let qparsed =
            Message::parse(&qpkt[qdg.payload_offset..qdg.payload_offset + qdg.payload_len])
                .unwrap();
        assert_eq!(qparsed, query);

        let rpkt = rpkt.unwrap();
        let rdg = ip::parse_udp_packet(&rpkt).unwrap();
        assert_eq!(rdg.ip.ttl, 57);
        assert_eq!(rdg.payload_len, tx.response_size);
        let rparsed =
            Message::parse(&rpkt[rdg.payload_offset..rdg.payload_offset + rdg.payload_len])
                .unwrap();
        assert_eq!(rparsed, response);
    }

    #[test]
    fn unanswered_has_no_response_packet() {
        let query = Message::query(1, Name::from_ascii("x.test").unwrap(), RecordType::A);
        let tx = Transaction {
            time: 0.0,
            resolver: IpAddr::V4(Ipv4Addr::new(100, 64, 0, 1)),
            contributor: 0,
            nameserver: IpAddr::V4(Ipv4Addr::new(60, 0, 0, 1)),
            query,
            response: None,
            delay_ms: 0.0,
            ip_ttl_observed: 0,
            response_size: 0,
        };
        let (_, rpkt) = tx.to_packets();
        assert!(rpkt.is_none());
    }

    #[test]
    fn sensor_index_is_stable_per_resolver_and_covers_all_sensors() {
        let mut sim = crate::Simulation::from_config(crate::SimConfig::small());
        let txs = sim.collect(1.0);
        assert!(txs.len() > 100);
        let n = 3;
        let mut seen = [false; 3];
        let mut by_resolver = std::collections::HashMap::new();
        for tx in &txs {
            let idx = tx.sensor_index(n);
            assert!(idx < n);
            seen[idx] = true;
            // All of a resolver's traffic goes to one sensor.
            assert_eq!(*by_resolver.entry(tx.resolver).or_insert(idx), idx);
            // n == 1 collapses to a single sensor.
            assert_eq!(tx.sensor_index(1), 0);
        }
        assert!(seen.iter().all(|&s| s), "all sensors should get traffic");
    }
}
