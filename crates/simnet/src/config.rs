//! Simulation configuration.

/// All knobs of the simulated DNS world.
///
/// The defaults are tuned so a few simulated minutes on a laptop show the
/// qualitative shapes of the paper's figures; [`SimConfig::paper_scale`]
/// scales the populations up for the headline reproductions.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master RNG seed; everything derives from it.
    pub seed: u64,

    // --- Vantage points ----------------------------------------------------
    /// Number of recursive resolvers feeding the observatory.
    pub resolvers: usize,
    /// Number of SIE contributors; each resolver belongs to one.
    pub contributors: usize,
    /// Fraction of resolvers that perform QNAME minimization (paper §3.6
    /// finds it minuscule — a handful of resolvers).
    pub qmin_fraction: f64,

    // --- Domain universe ----------------------------------------------------
    /// Number of distinct eSLDs in the popularity distribution.
    pub domains: usize,
    /// Zipf exponent of eSLD popularity (≈1 gives the classic heavy tail).
    pub zipf_exponent: f64,
    /// Average number of stable FQDNs per popular eSLD.
    pub fqdns_per_domain: usize,
    /// Probability that a web query targets an ephemeral, never-repeated
    /// FQDN (disposable domains, paper §3.2b).
    pub ephemeral_fqdn_prob: f64,
    /// Fraction of domains that have AAAA records (server-side IPv6
    /// adoption; the rest are IPv4-only and produce AAAA NoData).
    pub ipv6_domain_fraction: f64,

    // --- Client mix (relative weights of query intents) ---------------------
    /// Dual-stack web clients using Happy Eyeballs (A+AAAA pairs).
    pub weight_web_dualstack: f64,
    /// IPv4-only web clients (A only).
    pub weight_web_v4only: f64,
    /// Reverse-DNS lookers (PTR), i.e. mail servers and infrastructure.
    pub weight_ptr: f64,
    /// Anti-virus / anti-spam systems using TXT-over-DNS protocols.
    pub weight_txt: f64,
    /// Mail routing (MX).
    pub weight_mx: f64,
    /// Service discovery (SRV).
    pub weight_srv: f64,
    /// Explicit CNAME queries (misconfigured crawlers etc.).
    pub weight_cname: f64,
    /// SOA refresh checks.
    pub weight_soa: f64,
    /// DS queries from validating resolvers.
    pub weight_ds: f64,
    /// NS queries, most of which belong to PRSD attack traffic.
    pub weight_ns: f64,
    /// DGA botnet queries for non-existent .com SLDs (Mylobot-style).
    pub weight_botnet: f64,
    /// A-record scanning of non-existent FQDNs under existing domains.
    pub weight_scanner: f64,

    // --- Traffic shape -------------------------------------------------------
    /// Mean client query arrivals per simulated second (before resolver
    /// caches suppress repeats).
    pub arrivals_per_sec: f64,
    /// Amplitude of the diurnal modulation in [0, 1); 0 disables it.
    pub diurnal_amplitude: f64,
    /// Fraction of queries that get no response at all (unans feature).
    pub loss_rate: f64,

    // --- TTL defaults (seconds) ---------------------------------------------
    /// A-record TTL for CDN-style popular domains.
    pub ttl_a_popular: u32,
    /// A-record TTL for ordinary domains.
    pub ttl_a_default: u32,
    /// AAAA-record TTL.
    pub ttl_aaaa: u32,
    /// NS TTL at TLD delegations.
    pub ttl_ns: u32,
    /// Negative-caching TTL (SOA minimum) default.
    pub ttl_negative_default: u32,
    /// TXT TTL (tiny, per Table 2's custom-protocol finding).
    pub ttl_txt: u32,
    /// MX TTL.
    pub ttl_mx: u32,

    // --- §5.4 remedies (paper's proposed measures, off by default) -----------
    /// Remedy 1: dual-stack clients send a single joint A+AAAA query
    /// (one transaction instead of two) when supported end-to-end.
    pub remedy_joint_query: bool,
    /// Remedy 2: zones split negative caching semantics — NoData answers
    /// advertise a negative TTL aligned with the A TTL, while NXDOMAIN
    /// keeps the (possibly short) SOA minimum.
    pub remedy_split_negative: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xD15_0B5E,
            resolvers: 200,
            contributors: 40,
            qmin_fraction: 0.015,
            domains: 200_000,
            zipf_exponent: 1.12,
            fqdns_per_domain: 4,
            ephemeral_fqdn_prob: 0.12,
            ipv6_domain_fraction: 0.42,
            weight_web_dualstack: 30.0,
            weight_web_v4only: 34.0,
            weight_ptr: 6.4,
            weight_txt: 1.4,
            weight_mx: 1.2,
            weight_srv: 1.1,
            weight_cname: 1.0,
            weight_soa: 0.5,
            weight_ds: 0.5,
            weight_ns: 1.4,
            weight_botnet: 8.5,
            weight_scanner: 8.0,
            arrivals_per_sec: 12_000.0,
            diurnal_amplitude: 0.35,
            loss_rate: 0.035,
            ttl_a_popular: 60,
            ttl_a_default: 300,
            ttl_aaaa: 300,
            ttl_ns: 86_400,
            ttl_negative_default: 300,
            ttl_txt: 5,
            ttl_mx: 3_600,
            remedy_joint_query: false,
            remedy_split_negative: false,
        }
    }
}

impl SimConfig {
    /// A small configuration for unit tests: quick to build, still
    /// exercising every code path.
    pub fn small() -> Self {
        SimConfig {
            domains: 2_000,
            resolvers: 24,
            contributors: 8,
            arrivals_per_sec: 2_000.0,
            ..SimConfig::default()
        }
    }

    /// The smallest useful world: a chaos/differential-test fixture that
    /// still produces a realistic traffic mix but builds in milliseconds
    /// and keeps per-run item counts small enough to fan out across
    /// hundreds of seeded runs.
    pub fn tiny() -> Self {
        SimConfig {
            domains: 400,
            resolvers: 8,
            contributors: 4,
            arrivals_per_sec: 500.0,
            ..SimConfig::default()
        }
    }

    /// The configuration used by the experiment binaries: larger domain
    /// and resolver populations so rank curves extend far enough to show
    /// the paper's shapes.
    pub fn paper_scale() -> Self {
        SimConfig {
            domains: 1_000_000,
            resolvers: 400,
            contributors: 60,
            arrivals_per_sec: 40_000.0,
            ..SimConfig::default()
        }
    }

    /// Sum of all intent weights (normalization denominator).
    pub fn total_weight(&self) -> f64 {
        self.weight_web_dualstack
            + self.weight_web_v4only
            + self.weight_ptr
            + self.weight_txt
            + self.weight_mx
            + self.weight_srv
            + self.weight_cname
            + self.weight_soa
            + self.weight_ds
            + self.weight_ns
            + self.weight_botnet
            + self.weight_scanner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.total_weight() > 0.0);
        assert!(c.resolvers > 0 && c.contributors <= c.resolvers);
        assert!(c.zipf_exponent > 0.0);
        assert!((0.0..1.0).contains(&c.loss_rate));
    }

    #[test]
    fn presets_differ() {
        assert!(SimConfig::paper_scale().domains > SimConfig::small().domains);
        assert!(SimConfig::small().domains > SimConfig::tiny().domains);
        assert!(SimConfig::tiny().total_weight() > 0.0);
    }
}
