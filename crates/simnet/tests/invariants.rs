//! Cross-cutting simulator invariants, checked on full transaction
//! streams and (for cheap properties) under proptest variation of the
//! configuration.

use dnswire::{Rcode, RecordType};
use proptest::prelude::*;
use simnet::{Scenario, SimConfig, Simulation, Zipf};
use std::collections::HashMap;

#[test]
fn every_response_is_protocol_consistent() {
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut n = 0u64;
    sim.run(3.0, &mut |tx| {
        n += 1;
        let q = tx.query.question().expect("one question");
        assert!(!tx.query.header.qr);
        if let Some(resp) = &tx.response {
            assert!(resp.header.qr, "responses carry QR");
            assert_eq!(resp.header.id, tx.query.header.id);
            assert_eq!(resp.question().unwrap().qname, q.qname);
            assert_eq!(resp.question().unwrap().qtype, q.qtype);
            // NoError with AA and answers ⇒ the answers match the qname
            // (or its zone for NS/SOA-style answers).
            if resp.rcode() == Rcode::NoError && resp.header.aa {
                for rec in &resp.answers {
                    assert!(
                        q.qname.is_subdomain_of(&rec.name) || rec.name.is_subdomain_of(&q.qname),
                        "answer owner {} unrelated to qname {}",
                        rec.name,
                        q.qname
                    );
                }
            }
            // NXDOMAIN must carry no answers and should carry an SOA.
            if resp.rcode() == Rcode::NxDomain {
                assert!(resp.answers.is_empty());
                assert!(
                    resp.authorities
                        .iter()
                        .any(|r| matches!(r.rdata, dnswire::RData::Soa(_))),
                    "NXD without SOA"
                );
            }
        }
    });
    assert!(n > 1_000);
}

#[test]
fn aaaa_nodata_comes_only_from_v4only_domains() {
    let mut sim = Simulation::from_config(SimConfig::small());
    let world_check = Simulation::from_config(SimConfig::small());
    let mut checked = 0;
    sim.run(3.0, &mut |tx| {
        let q = tx.query.question().unwrap();
        if q.qtype != RecordType::Aaaa {
            return;
        }
        let Some(resp) = &tx.response else { return };
        if resp.header.aa && resp.rcode() == Rcode::NoError {
            // Identify the domain from the name (domNN label).
            let name = q.qname.to_ascii();
            let Some(id) = name
                .split('.')
                .find_map(|l| l.strip_prefix("dom"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                return;
            };
            let (props, _, _) = world_check.world().domain_at(id, tx.time);
            if resp.answers.is_empty() {
                assert!(!props.has_ipv6, "NoData from an IPv6-enabled domain {name}");
            } else {
                assert!(props.has_ipv6, "AAAA data from an IPv4-only domain {name}");
            }
            checked += 1;
        }
    });
    assert!(checked > 50, "checked only {checked} AAAA responses");
}

#[test]
fn per_fqdn_cache_miss_rate_is_ttl_bounded() {
    // For a hot FQDN, per-resolver misses cannot exceed ~1 per TTL plus
    // the initial fill (loss adds retries).
    let cfg = SimConfig {
        loss_rate: 0.0,
        ephemeral_fqdn_prob: 0.0,
        ..SimConfig::small()
    };
    let resolvers = cfg.resolvers as f64;
    let mut sim = Simulation::from_config(cfg);
    let props = sim.world().domains.props(1);
    let fqdn = sim.world().domains.fqdn(&props, 0);
    let a_ttl = props.a_ttl as f64;
    let mut a_misses = 0u64;
    let secs = 30.0;
    sim.run(secs, &mut |tx| {
        let q = tx.query.question().unwrap();
        if q.qname == fqdn && q.qtype == RecordType::A {
            if let Some(r) = &tx.response {
                if r.header.aa {
                    a_misses += 1;
                }
            }
        }
    });
    let bound = resolvers * (secs / a_ttl + 1.0);
    assert!(
        (a_misses as f64) <= bound,
        "A misses {a_misses} exceed TTL bound {bound}"
    );
}

#[test]
fn contributors_partition_resolvers() {
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut seen: HashMap<std::net::IpAddr, u16> = HashMap::new();
    sim.run(1.0, &mut |tx| {
        if let Some(prev) = seen.insert(tx.resolver, tx.contributor) {
            assert_eq!(prev, tx.contributor, "resolver switched contributor");
        }
    });
    let contributors: std::collections::HashSet<u16> = seen.values().copied().collect();
    assert!(contributors.len() > 1);
    assert!(contributors.len() <= SimConfig::small().contributors);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The zipf sampler respects its support for arbitrary (n, s).
    #[test]
    fn zipf_support(n in 1u64..1_000_000, s in 0.3f64..3.0, u in 0.0f64..1.0) {
        let z = Zipf::new(n, s);
        let r = z.rank_for(u);
        prop_assert!((1..=n).contains(&r));
    }

    /// Arbitrary small worlds produce traffic and never panic, whatever
    /// the weight mix.
    #[test]
    fn arbitrary_weight_mixes_run(
        w_web in 0.0f64..40.0,
        w_botnet in 0.0f64..40.0,
        w_ptr in 0.0f64..10.0,
        seed in any::<u64>(),
    ) {
        // At least one weight must be positive.
        prop_assume!(w_web + w_botnet + w_ptr > 0.1);
        let cfg = SimConfig {
            seed,
            domains: 500,
            resolvers: 4,
            contributors: 2,
            arrivals_per_sec: 300.0,
            weight_web_dualstack: w_web,
            weight_web_v4only: 0.0,
            weight_ptr: w_ptr,
            weight_txt: 0.0,
            weight_mx: 0.0,
            weight_srv: 0.0,
            weight_cname: 0.0,
            weight_soa: 0.0,
            weight_ds: 0.0,
            weight_ns: 0.0,
            weight_botnet: w_botnet,
            weight_scanner: 0.0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg, Scenario::new());
        let mut n = 0u64;
        sim.run(1.0, &mut |_| n += 1);
        prop_assert!(n > 0, "no transactions generated");
    }
}
