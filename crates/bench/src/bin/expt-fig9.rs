//! Figure 9 — negative-caching TTLs vs the share of empty AAAA responses
//! for the top FQDNs by traffic (paper §5.2).
//!
//! Paper shapes to reproduce: several FQDNs in the top 200 with >70 % of
//! all their responses being empty AAAA, each with an A-TTL ≫
//! negative-caching-TTL quotient; domains with quotient ≈1 stay low.

use bench::{bar, header, pct, run_observatory};
use dns_observatory::analysis::happy::{happy_rows, quotient_share_correlation};
use dns_observatory::Dataset;
use simnet::Scenario;

fn main() {
    let out = run_observatory(
        bench::experiment_sim(),
        Scenario::new(),
        vec![(Dataset::Qname, 50_000)],
        60.0,
        300.0,
    );
    let rows = out.store.cumulative(Dataset::Qname);
    let happy = happy_rows(&rows, 200);

    header("top-200 FQDNs: empty-AAAA share vs A-TTL/negTTL quotient");
    println!(
        "{:>5} {:<28}{:>8}{:>8}{:>9}{:>10}  share",
        "rank", "fqdn", "A-TTL", "negTTL", "quotient", "empty%"
    );
    for r in happy.iter().filter(|r| r.empty_aaaa_share > 0.3) {
        println!(
            "{:>5} {:<28}{:>8}{:>8}{:>9.1}{:>9.0}%  {}",
            r.rank,
            r.key,
            r.a_ttl.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            r.neg_ttl
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            r.ttl_quotient().unwrap_or(f64::NAN),
            r.empty_aaaa_share * 100.0,
            bar(r.empty_aaaa_share, 1.0, 30)
        );
    }

    let pathological = happy.iter().filter(|r| r.empty_aaaa_share > 0.7).count();
    let moderate = happy.iter().filter(|r| r.empty_aaaa_share > 0.3).count();
    println!(
        "\n{} of the top 200 FQDNs have >70% empty responses; {} have >30% \
         (paper: 5 FQDNs above 70%, up to 94%)",
        pathological, moderate
    );

    if let Some(corr) = quotient_share_correlation(&happy) {
        println!(
            "correlation of ln(A-TTL/negTTL) with empty-AAAA share: {corr:.2} \
             (paper: larger quotient -> more empty responses)"
        );
    }

    // Control group: domains whose negative TTL >= A TTL stay quiet.
    let quiet: Vec<&_> = happy
        .iter()
        .filter(|r| r.ttl_quotient().map(|q| q <= 1.0).unwrap_or(false))
        .collect();
    if !quiet.is_empty() {
        let mean_share = quiet.iter().map(|r| r.empty_aaaa_share).sum::<f64>() / quiet.len() as f64;
        println!(
            "control: {} FQDNs with quotient <= 1 average only {} empty responses",
            quiet.len(),
            pct(mean_share)
        );
    }
}
