//! §3.1-style dataset overview: the headline statistics the paper gives
//! for its collection (transactions per day, unique existing and
//! non-existing FQDNs per minute, dataset inventory and capture rates).

use bench::{header, pct, run_observatory};
use dns_observatory::Dataset;
use simnet::Scenario;
use std::collections::HashSet;

fn main() {
    let datasets = vec![
        (Dataset::SrvIp, 50_000),
        (Dataset::Etld, 10_000),
        (Dataset::Esld, 50_000),
        (Dataset::Qname, 50_000),
        (Dataset::Qtype, 64),
        (Dataset::Rcode, 16),
        (Dataset::AaFqdn, 20_000),
        (Dataset::SrcSrv, 30_000),
    ];
    // Count unique existing/non-existing FQDNs per minute directly from
    // the stream, like the paper's headline figures.
    let mut sim = simnet::Simulation::new(bench::experiment_sim(), Scenario::new());
    sim.run(bench::WARMUP_SECS, &mut |_| {});
    let mut existing: HashSet<String> = HashSet::new();
    let mut missing: HashSet<String> = HashSet::new();
    let mut tx = 0u64;
    let minute = 60.0;
    sim.run(minute, &mut |t| {
        tx += 1;
        let q = t.query.question().expect("one question");
        match &t.response {
            Some(r) if r.rcode() == dnswire::Rcode::NxDomain => {
                missing.insert(q.qname.to_ascii());
            }
            Some(r) if r.rcode() == dnswire::Rcode::NoError => {
                existing.insert(q.qname.to_ascii());
            }
            _ => {}
        }
    });
    header("stream headline statistics (one simulated minute)");
    println!("  transactions/minute:           {tx}");
    println!("  -> equivalent transactions/day: {}", tx * 60 * 24);
    println!("  unique existing FQDNs/minute:   {}", existing.len());
    println!("  unique non-existing FQDNs/min:  {}", missing.len());
    println!(
        "  (paper: 13 B transactions/day; 1.5 M existing and 1.1 M non-existing\n   unique FQDNs per minute — scale factor ≈ the sensor fleet's 200 k tx/s)"
    );

    // Dataset inventory with capture statistics, like §3.1's list.
    let out = run_observatory(
        bench::experiment_sim(),
        Scenario::new(),
        datasets,
        30.0,
        120.0,
    );
    header("dataset inventory (paper §3.1)");
    println!(
        "{:<10}{:>9}{:>12}{:>12}{:>12}{:>10}",
        "dataset", "k", "objects", "kept", "dropped", "captured"
    );
    for ds in [
        Dataset::SrvIp,
        Dataset::Etld,
        Dataset::Esld,
        Dataset::Qname,
        Dataset::Qtype,
        Dataset::Rcode,
        Dataset::AaFqdn,
        Dataset::SrcSrv,
    ] {
        let windows = out.store.dataset(ds);
        let kept: u64 = windows.iter().map(|w| w.kept).sum();
        let dropped: u64 = windows.iter().map(|w| w.dropped).sum();
        let filtered: u64 = windows.iter().map(|w| w.filtered).sum();
        let objects: usize = out.store.cumulative(ds).len();
        let denom = (kept + dropped).max(1);
        println!(
            "{:<10}{:>9}{:>12}{:>12}{:>12}{:>10}",
            ds.name(),
            ds.paper_k(),
            objects,
            kept,
            dropped,
            pct(kept as f64 / denom as f64)
        );
        let _ = filtered;
    }
    println!(
        "\n{} transactions measured; srvip capture corresponds to the paper's 94.9%",
        out.measured_tx
    );
}
