//! §5.3 — the effect of deploying IPv6 on query volumes and empty
//! responses.
//!
//! Paper shapes to reproduce: after an FQDN starts publishing AAAA
//! records, its empty-AAAA share collapses, while its *query volume*
//! stays roughly flat when the negative TTL matched the positive TTLs.

use bench::{header, pct, scale};
use dns_observatory::analysis::happy::ipv6_turnup;
use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{Scenario, ScenarioEvent, ScenarioKind, Simulation};

fn main() {
    let duration = 600.0 * scale();
    let turnup_at = duration / 2.0;

    // Find 10 popular IPv4-only domains and schedule their IPv6 launch.
    let probe = Simulation::from_config(bench::experiment_sim());
    let victims: Vec<u64> = (5..200u64)
        .filter(|&id| {
            let p = probe.world().domains.props(id);
            !p.has_ipv6 && p.neg_ttl >= p.a_ttl
        })
        .take(10)
        .collect();
    assert!(!victims.is_empty(), "world must contain IPv4-only domains");
    drop(probe);

    let scenario = Scenario::from_events(victims.iter().map(|&domain| ScenarioEvent {
        at: turnup_at,
        domain,
        kind: ScenarioKind::EnableIpv6,
    }));
    let mut sim = Simulation::new(bench::experiment_sim(), scenario);
    let fqdns: Vec<String> = victims
        .iter()
        .map(|&id| {
            let p = sim.world().domains.props(id);
            sim.world().domains.fqdn(&p, 0).to_ascii()
        })
        .collect();

    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::Qname, 50_000)],
        window_secs: duration / 12.0,
        ..ObservatoryConfig::default()
    });
    sim.run(duration, &mut |tx| obs.ingest(tx));
    let store = obs.finish();
    let windows = store.dataset(Dataset::Qname);

    header(&format!(
        "{} FQDNs enabling IPv6 at t={turnup_at:.0}s",
        fqdns.len()
    ));
    println!(
        "{:<26}{:>14}{:>14}{:>14}{:>14}",
        "fqdn", "empty before", "empty after", "rate before", "rate after"
    );
    let mut drops = 0usize;
    let mut flat_volume = 0usize;
    let mut measured = 0usize;
    for fqdn in &fqdns {
        let Some(t) = ipv6_turnup(&windows, fqdn, turnup_at) else {
            println!("{fqdn:<26}{:>14}", "(not in top list)");
            continue;
        };
        measured += 1;
        if t.empty_share_after < t.empty_share_before * 0.5 {
            drops += 1;
        }
        let ratio = t.rate_after / t.rate_before.max(1e-9);
        if (0.5..2.0).contains(&ratio) {
            flat_volume += 1;
        }
        println!(
            "{:<26}{:>14}{:>14}{:>14.1}{:>14.1}",
            t.key,
            pct(t.empty_share_before),
            pct(t.empty_share_after),
            t.rate_before,
            t.rate_after
        );
    }
    println!(
        "\n{drops}/{measured} FQDNs saw their empty-AAAA share collapse; \
         {flat_volume}/{measured} kept volume within 2x (paper: shares drop, volumes flat)"
    );
}
