//! Historical-store query latency: the paper's "DNSDB substitution"
//! measured end to end.
//!
//! Builds a three-month store of synthetic 10-minute windows (two
//! datasets, planted renumbering events), compacts it up the
//! hour/day/month hierarchy, then times the three `dnsobs query` shapes
//! against the acceptance budget — **every query must answer in under
//! 100 ms** from footer indexes and merged sketch state, never raw
//! transactions:
//!
//! * **history** — every window of one object across the full range;
//! * **renumber** — render + TTL-change scan over a whole interval;
//! * **topk** — top-k snapshot at one instant (coarsest covering level).
//!
//! Writes `BENCH_store.json` at the repository root (the committed
//! baseline `scripts/bench-smoke.sh` regresses against) and prints the
//! table. `--smoke` skips the JSON rewrite and prints
//! `store_smoke_queries_per_sec=<n>` for the regression check.

use dns_observatory::analysis::ttl::{detect_changes, ChangeCategory};
use dns_observatory::synth::{renumber_truth, SynthConfig, SynthStream};
use std::path::{Path, PathBuf};
use std::time::Instant;

const DAYS: usize = 92;
const WINDOWS_PER_DAY: usize = 144;
const KEYS: usize = 8;
const BUDGET_MS: f64 = 100.0;

fn synth_cfg() -> SynthConfig {
    SynthConfig {
        seed: 42,
        start: 0.0,
        window_secs: 600.0,
        windows: DAYS * WINDOWS_PER_DAY,
        keys: KEYS,
        datasets: vec!["aafqdn".to_string(), "esld".to_string()],
        capacity: (KEYS as u64) * 4,
        renumber_every: WINDOWS_PER_DAY,
    }
}

/// Build and compact the store; returns (store, build_secs, compact_secs).
fn build(dir: &Path) -> (store::Store, f64, f64) {
    let _ = std::fs::remove_dir_all(dir);
    let (mut s, _) = store::Store::open(dir).expect("open store");
    let mut stream = SynthStream::new(synth_cfg());
    let t0 = Instant::now();
    for _ in 0..DAYS {
        let mut batch = Vec::new();
        for _ in 0..WINDOWS_PER_DAY {
            batch.extend(stream.next_window().expect("stream sized to DAYS"));
        }
        s.append(&batch).expect("append day batch");
    }
    let build_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    store::compact(&mut s, &store::CompactionPolicy::default()).expect("compact");
    let compact_secs = t1.elapsed().as_secs_f64();
    (s, build_secs, compact_secs)
}

/// Best-of-`reps` latency of `f`, in milliseconds.
fn best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dir: PathBuf =
        std::env::temp_dir().join(format!("dnsobs-bench-store-{}", std::process::id()));

    let (s, build_secs, compact_secs) = build(&dir);
    let span_us = (DAYS * WINDOWS_PER_DAY) as u64 * 600_000_000;
    let segments = s.segments().len();
    eprintln!(
        "built {DAYS} days ({} windows, 2 datasets) in {build_secs:.2}s, compacted to {segments} segment(s) in {compact_secs:.2}s",
        DAYS * WINDOWS_PER_DAY
    );

    let reps = if smoke { 3 } else { 7 };

    // History of one object across the full three months.
    let (history_ms, (points, bound)) = best_ms(reps, || {
        let (points, bound, _) =
            store::query::history(&s, "aafqdn", "host0.example.", 0, span_us + 1)
                .expect("history query");
        (points, bound)
    });
    assert!(!points.is_empty(), "history returned no windows");
    let hits: u64 = points.iter().map(|p| p.hits).sum();
    assert!(bound > 0, "merged bound must be stated");

    // Renumbering events across the full interval: reassemble every
    // window, render, and scan for TTL flips.
    let (renumber_ms, found) = best_ms(reps, || {
        let (groups, _) =
            store::query::windows_in(&s, "aafqdn", 0, span_us + 1, None).expect("windows_in");
        let dumps: Vec<_> = groups
            .iter()
            .map(|g| dns_observatory::render_state(&g.state, g.start, g.length).expect("render"))
            .collect();
        let refs: Vec<&dns_observatory::WindowDump> = dumps.iter().collect();
        detect_changes(&refs)
            .into_iter()
            .filter(|c| c.category == ChangeCategory::Renumbering)
            .count()
    });
    let planted = renumber_truth(&synth_cfg()).len();
    // Month-level windows absorb the flips inside them (coarser time
    // resolution is the documented trade); boundary-aligned events must
    // still surface.
    assert!(
        found > 0,
        "no renumbering events surfaced from {planted} planted"
    );

    // Top-k snapshot in the middle of the range (answered from the
    // coarsest covering level).
    let (topk_ms, top) = best_ms(reps, || {
        let (g, _) = store::query::topk_at(&s, "esld", span_us / 2).expect("topk query");
        g.expect("mid-range window exists")
    });
    assert!(!top.state.entries.is_empty());

    let worst = history_ms.max(renumber_ms).max(topk_ms);
    let queries_per_sec = 3e3 / (history_ms + renumber_ms + topk_ms);

    println!("store_history_ms={history_ms:.3}");
    println!("store_renumber_ms={renumber_ms:.3}");
    println!("store_topk_ms={topk_ms:.3}");
    println!("store_smoke_queries_per_sec={queries_per_sec:.1}");
    eprintln!(
        "history: {n} point(s), {hits} exact hits, merged bound {bound}; renumber: {found}/{planted} events; budget {BUDGET_MS} ms, worst {worst:.3} ms",
        n = points.len()
    );

    if !smoke {
        let json = format!(
            "{{\n  \"days\": {DAYS},\n  \"windows\": {},\n  \"segments_after_compaction\": {segments},\n  \"build_secs\": {build_secs:.2},\n  \"compact_secs\": {compact_secs:.2},\n  \"history_ms\": {history_ms:.3},\n  \"renumber_ms\": {renumber_ms:.3},\n  \"topk_ms\": {topk_ms:.3},\n  \"store_smoke_queries_per_sec\": {queries_per_sec:.1}\n}}\n",
            DAYS * WINDOWS_PER_DAY
        );
        std::fs::write("BENCH_store.json", json).expect("write BENCH_store.json");
        eprintln!("wrote BENCH_store.json");
    }

    let _ = std::fs::remove_dir_all(&dir);
    if worst > BUDGET_MS {
        eprintln!("FAIL: worst query {worst:.1} ms exceeds the {BUDGET_MS} ms budget");
        std::process::exit(1);
    }
}
