//! Figure 6 — Hilbert-curve heatmap of all observed IPv4 nameserver
//! addresses, one pixel per /24 prefix.
//!
//! Writes `fig6-heatmap.pgm` (viewable with any image tool) and prints
//! occupancy statistics. Paper shape to reproduce: the popular
//! infrastructure concentrates in a few dense blocks while the long tail
//! spreads thinly (mostly one address per /24) across the space.

use bench::{header, pct, scale};
use dns_observatory::analysis::hilbert::heatmap_of;
use simnet::{Scenario, Simulation};
use std::collections::HashSet;
use std::fs::File;
use std::io::BufWriter;

fn main() {
    let mut sim = Simulation::new(bench::experiment_sim(), Scenario::new());
    let mut servers: HashSet<std::net::IpAddr> = HashSet::new();
    sim.run(300.0 * scale(), &mut |tx| {
        servers.insert(tx.nameserver);
    });
    println!("observed {} distinct nameserver addresses", servers.len());

    let order = 10; // 1024×1024: each pixel covers 16 /24s at /24 density
    let map = heatmap_of(servers.iter().copied(), order);
    header("heatmap statistics");
    println!("  grid: {0}x{0} (order {order})", map.side());
    println!(
        "  occupied pixels: {} ({} of the grid)",
        map.occupied(),
        pct(map.occupied() as f64 / (map.side() * map.side()) as f64)
    );
    println!("  densest pixel: {} addresses", map.max());

    let path = "fig6-heatmap.pgm";
    let mut out = BufWriter::new(File::create(path).expect("create pgm"));
    map.write_pgm(&mut out).expect("write pgm");
    println!("  wrote {path}");

    // Textual mini-view: 32x32 downsample, '.'<'+'<'#' by density.
    header("mini view (32x32 downsample)");
    let side = map.side();
    let cell = side / 32;
    for by in 0..32 {
        let mut line = String::with_capacity(32);
        for bx in 0..32 {
            let mut sum = 0u64;
            for y in by * cell..(by + 1) * cell {
                for x in bx * cell..(bx + 1) * cell {
                    sum += map.pixels[y * side + x] as u64;
                }
            }
            line.push(match sum {
                0 => ' ',
                1..=9 => '.',
                10..=99 => '+',
                _ => '#',
            });
        }
        println!("  |{line}|");
    }
}
