//! Figure 8 — correlating TTL changes with query-volume changes for the
//! top SLDs by traffic change.
//!
//! Paper shapes to reproduce: TTL decreases mostly increase traffic
//! (near-inverse relation); TTL *increases* split — some domains still
//! gained traffic, and most of those gained only *queries*, not
//! responses (NXDOMAIN floods) — the paper found 28 of 34 such cases.

use bench::{header, scale};
use dns_observatory::analysis::ttl::ttl_traffic_changes;
use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{ScanFlood, Scenario, ScenarioEvent, ScenarioKind, Simulation};

fn main() {
    let duration = 600.0 * scale();
    let change_at = duration / 2.0;

    let mut scenario = Scenario::new();
    let mut decreased = Vec::new();
    let mut increased_clean = Vec::new();
    let mut increased_flooded = Vec::new();
    // 20 TTL cuts, 12 clean raises, 8 raises masked by scan floods.
    for i in 0..40u64 {
        let domain = 10 + i;
        scenario.push(ScenarioEvent {
            at: 0.0,
            domain,
            kind: ScenarioKind::SetATtl(120),
        });
        if i < 20 {
            scenario.push(ScenarioEvent {
                at: change_at,
                domain,
                kind: ScenarioKind::SetATtl(10),
            });
            decreased.push(domain);
        } else {
            scenario.push(ScenarioEvent {
                at: change_at,
                domain,
                kind: ScenarioKind::SetATtl(1_800),
            });
            if i < 32 {
                increased_clean.push(domain);
            } else {
                scenario.push_flood(ScanFlood {
                    domain,
                    start: change_at,
                    end: duration,
                    rate: 60.0,
                });
                increased_flooded.push(domain);
            }
        }
    }

    let mut sim = Simulation::new(bench::experiment_sim(), scenario);
    let name_of = |sim: &Simulation, id: u64| sim.world().domains.props(id).esld.to_ascii();
    let window = duration / 10.0;
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::Esld, 30_000)],
        window_secs: window,
        ..ObservatoryConfig::default()
    });
    sim.run(duration, &mut |tx| obs.ingest(tx));
    let store = obs.finish();

    let windows = store.dataset(Dataset::Esld);
    let before: Vec<_> = windows
        .iter()
        .filter(|w| w.start + w.length <= change_at && w.start > 0.0)
        .copied()
        .collect();
    let after: Vec<_> = windows
        .iter()
        .filter(|w| w.start >= change_at + window)
        .copied()
        .collect();
    let changes = ttl_traffic_changes(&before, &after);

    header("top TTL-changed SLDs by traffic change (scatter of Fig. 8)");
    println!(
        "{:<20}{:>10}{:>10}{:>12}{:>12}  note",
        "esld", "ttl", "ttl'", "Δtraffic", "Δresponses"
    );
    for c in changes.iter().take(30) {
        let note = if c.query_only_increase() {
            "query-only (flood)"
        } else {
            ""
        };
        println!(
            "{:<20}{:>10}{:>10}{:>11.0}%{:>11.0}%  {note}",
            c.key,
            c.ttl_before,
            c.ttl_after,
            c.traffic_change() * 100.0,
            if c.ok_before > 0.0 {
                (c.ok_after / c.ok_before - 1.0) * 100.0
            } else {
                0.0
            },
        );
    }

    // Quadrant counts, as in the paper's reading of the figure.
    let mut dec_up = 0;
    let mut dec_down = 0;
    let mut inc_up = 0;
    let mut inc_down = 0;
    let mut inc_up_query_only = 0;
    for c in &changes {
        let up = c.traffic_change() > 0.0;
        if c.ttl_log_ratio() < 0.0 {
            if up {
                dec_up += 1;
            } else {
                dec_down += 1;
            }
        } else if up {
            inc_up += 1;
            if c.query_only_increase() {
                inc_up_query_only += 1;
            }
        } else {
            inc_down += 1;
        }
    }
    header("quadrants");
    println!("  TTL decrease -> traffic UP:   {dec_up} (expected: majority of decreases)");
    println!("  TTL decrease -> traffic down: {dec_down}");
    println!("  TTL increase -> traffic down: {inc_down}");
    println!("  TTL increase -> traffic UP:   {inc_up}, of which query-only: {inc_up_query_only}");
    println!(
        "\nscheduled ground truth: {} cuts, {} clean raises, {} flood-masked raises",
        decreased.len(),
        increased_clean.len(),
        increased_flooded.len()
    );
    let _ = name_of;
}
