//! Live-serving fan-out throughput: what the subscription tier costs,
//! measured at two layers on one fixed pre-generated workload of sealed
//! global windows:
//!
//! * **fanout** — the sans-io `BrokerCore` sealing windows into 1 / 64 /
//!   256 instantly-draining clients, purely in memory: frames pushed per
//!   second through the delta encoder and per-client egress accounting;
//! * **serve tax** — the aggregator's merge loop (the seal path of
//!   `dnsobs aggregate`) run serve-disabled, then again publishing every
//!   sealed window to a real TCP `Server` with 256 connected
//!   subscribers. The serving tier's design claim is that the seal path
//!   never blocks on subscribers, so the ratio must stay near 1.0.
//!
//! Writes `BENCH_pubsub.json` at the repository root (the committed
//! baseline `scripts/bench-smoke.sh` regresses against) and prints the
//! table. `--smoke` runs only the 64-client fanout configuration and
//! prints `pubsub_smoke_fanout_frames_per_sec=<n>`.

use dns_observatory::{Dataset, ObservatoryConfig, StateExporter};
use pubsub::{
    encode_frame_vec, Action, BrokerConfig, BrokerCore, Frame, ServeConfig, Server, ServerHandle,
    Topic, PROTOCOL_VERSION,
};
use simnet::{SimConfig, Simulation};
use sketchwire::{AggregatorConfig, AggregatorCore, GlobalWindow, WindowState};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};
use telemetry::{Registry, TraceRing};

const UPSTREAMS: usize = 4;
const CHUNK_ENTRIES: usize = 64;
const SERVE_CLIENTS: usize = 256;

fn cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 500),
            (Dataset::Esld, 500),
            (Dataset::Qtype, 64),
        ],
        window_secs: 1.0,
        bloom_gate: false,
        ..ObservatoryConfig::default()
    }
}

/// Per-upstream window-state streams from a seeded simulation, sliced by
/// sensor vantage like a federated deployment.
fn generate(sim_secs: f64) -> Vec<Vec<WindowState>> {
    let mut exporters: Vec<StateExporter> = (0..UPSTREAMS)
        .map(|u| StateExporter::new(cfg(), u as u64, CHUNK_ENTRIES))
        .collect();
    let mut outs: Vec<Vec<WindowState>> = vec![Vec::new(); UPSTREAMS];
    let mut sim = Simulation::from_config(SimConfig::small());
    sim.run(sim_secs, &mut |tx| {
        let u = tx.sensor_index(UPSTREAMS);
        exporters[u].ingest(tx, &mut outs[u]);
    });
    for (e, out) in exporters.into_iter().zip(&mut outs) {
        e.finish(out);
    }
    outs
}

/// Arrival order a time-merging feed produces: every upstream's records
/// interleaved window-by-window.
fn arrival_order(streams: &[Vec<WindowState>]) -> Vec<&WindowState> {
    let mut arrival: Vec<&WindowState> = streams.iter().flatten().collect();
    arrival.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(a.upstream.cmp(&b.upstream))
    });
    arrival
}

/// The batch `dnsobs` hands the serving tier for one sealed window.
fn to_batch(gw: &GlobalWindow) -> Vec<WindowState> {
    gw.datasets
        .iter()
        .map(|topk| WindowState {
            upstream: 0,
            start: gw.start,
            length: gw.length,
            topk: topk.clone(),
        })
        .collect()
}

/// Sealed global windows from one full aggregation pass, as the
/// per-window batches the broker ingests.
fn sealed_batches(streams: &[Vec<WindowState>]) -> Vec<Vec<WindowState>> {
    let mut core = AggregatorCore::new(&AggregatorConfig::new(UPSTREAMS));
    let mut sealed = Vec::new();
    for ws in arrival_order(streams) {
        core.on_state(ws.clone()).expect("record accepted");
        core.poll(&mut sealed);
    }
    core.finish(&mut sealed);
    assert!(!sealed.is_empty(), "workload sealed no windows");
    sealed.iter().map(to_batch).collect()
}

/// The in-memory broker hot loop: seal every window into `clients`
/// instantly-draining subscribers. Returns (frames/s, frames per pass).
fn measure_fanout(batches: &[Vec<WindowState>], clients: usize, reps: usize) -> (f64, u64) {
    let mut best = 0.0f64;
    let mut frames = 0u64;
    for _ in 0..reps {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions: Vec<Action> = Vec::new();
        for id in 0..clients {
            core.on_client_connect(id as u64 + 1, &[], &mut actions);
        }
        actions.clear();
        let mut sent = 0u64;
        let t0 = Instant::now();
        for batch in batches {
            core.on_sealed(batch.clone(), &mut actions).expect("seal");
            sent += actions
                .iter()
                .filter(|a| matches!(a, Action::Send { .. }))
                .count() as u64;
            actions.clear();
            for id in 0..clients {
                let depth = core.client_depth(id as u64 + 1).unwrap_or(0);
                core.on_drained(id as u64 + 1, depth as u64);
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(sent as f64 / secs);
        frames = sent;
    }
    (best, frames)
}

/// A raw-drain subscriber: completes the handshake (top-k topic), then
/// sinks bytes until the server closes. Frame processing happens on the
/// consumer's own machine in a real deployment, so the server-side tax
/// is what this bench isolates.
fn spawn_drain_client(addr: SocketAddr) -> thread::JoinHandle<u64> {
    thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect drain client");
        stream
            .write_all(&encode_frame_vec(&Frame::Hello {
                protocol: PROTOCOL_VERSION,
                item_version: <WindowState as feed::FeedItem>::ITEM_VERSION,
            }))
            .expect("hello");
        stream
            .write_all(&encode_frame_vec(&Frame::Subscribe {
                topics: vec![Topic::Topk],
            }))
            .expect("subscribe");
        let mut buf = [0u8; 65536];
        let mut total = 0u64;
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => total += n as u64,
            }
        }
        total
    })
}

/// One cell of the clients × update-rate grid.
struct PacedCell {
    clients: usize,
    rate_hz: u64,
    records_per_sec: f64,
    p99_push_us: u64,
    evicted: u64,
    min_drained_bytes: u64,
}

/// The seal path under production pacing: windows seal at `rate_hz`
/// (production is one per 600 s; the bench compresses time), and each
/// sealed window is published to the serving tier exactly as
/// `dnsobs aggregate --serve` does. Throughput is the record rate the
/// seal path sustains end to end; push latency is the time spent inside
/// `publish_windows` (the only serving cost the seal path ever pays —
/// the broker runs behind its own ring). `clients == 0` runs the same
/// paced loop with serving disabled, the comparison baseline.
fn measure_paced(arrival: &[&WindowState], clients: usize, rate_hz: u64) -> PacedCell {
    let registry = Registry::new();
    let mut server = None;
    let mut handle = None;
    let mut drains = Vec::new();
    if clients > 0 {
        let mut s = Server::bind(
            "127.0.0.1:0",
            ServeConfig::default(),
            &registry,
            TraceRing::disabled(),
        )
        .expect("bind serving tier");
        handle = s.take_handle();
        let addr = s.local_addr();
        drains = (0..clients).map(|_| spawn_drain_client(addr)).collect();
        // Barrier: every handshake done before the first seal, so each
        // window fans out to the full fleet.
        let connected = registry.gauge("pubsub_clients");
        let deadline = Instant::now() + Duration::from_secs(30);
        while connected.value() < clients as f64 {
            assert!(Instant::now() < deadline, "clients failed to connect");
            thread::sleep(Duration::from_millis(5));
        }
        server = Some(s);
    }

    let period = Duration::from_secs_f64(1.0 / rate_hz as f64);
    let mut push_us: Vec<u64> = Vec::new();
    let mut core = AggregatorCore::new(&AggregatorConfig::new(UPSTREAMS));
    let mut sealed = Vec::new();
    let mut next = Instant::now() + period;
    let t0 = Instant::now();
    let publish = |gw: &GlobalWindow, handle: &mut Option<ServerHandle>, push_us: &mut Vec<u64>| {
        if let Some(h) = handle.as_mut() {
            let p0 = Instant::now();
            assert!(h.publish_windows(to_batch(gw)), "ingest ring full");
            push_us.push(p0.elapsed().as_micros() as u64);
        }
    };
    for ws in arrival {
        core.on_state((*ws).clone()).expect("record accepted");
        core.poll(&mut sealed);
        for gw in sealed.drain(..) {
            publish(&gw, &mut handle, &mut push_us);
            // Hold the production cadence: the next window may not seal
            // before its period elapses.
            let now = Instant::now();
            if now < next {
                thread::sleep(next - now);
            }
            next += period;
        }
    }
    core.finish(&mut sealed);
    for gw in sealed.drain(..) {
        publish(&gw, &mut handle, &mut push_us);
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let mut evicted = 0;
    let mut min_drained = 0;
    if let Some(s) = server {
        drop(handle.take());
        let report = s.finish();
        assert_eq!(report.clients_seen, clients as u64);
        evicted = report
            .departures
            .iter()
            .filter(|r| r.reason != pubsub::EvictReason::Shutdown)
            .count() as u64;
        min_drained = drains
            .into_iter()
            .map(|c| c.join().expect("drain client"))
            .min()
            .unwrap_or(0);
    }
    push_us.sort_unstable();
    let p99 = if push_us.is_empty() {
        0
    } else {
        push_us[((push_us.len() as f64 * 0.99).ceil() as usize - 1).min(push_us.len() - 1)]
    };
    PacedCell {
        clients,
        rate_hz,
        records_per_sec: arrival.len() as f64 / elapsed,
        p99_push_us: p99,
        evicted,
        min_drained_bytes: min_drained,
    }
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");

    if smoke_only {
        let batches = sealed_batches(&generate(6.0));
        let (fps, _) = measure_fanout(&batches, 64, 2);
        println!("pubsub_smoke_fanout_frames_per_sec={fps:.1}");
        return;
    }

    eprintln!("generating workload...");
    let streams = generate(12.0);
    let arrival = arrival_order(&streams);
    let batches = sealed_batches(&streams);
    eprintln!(
        "generated {} state records -> {} sealed windows",
        arrival.len(),
        batches.len()
    );

    let reps = 3;
    let grid = [1usize, 64, 256];
    let mut fanout = Vec::new();
    for &clients in &grid {
        let (fps, frames) = measure_fanout(&batches, clients, reps);
        println!("fanout {clients:>4} clients: {fps:>12.0} frames/s  ({frames} frames/pass)");
        fanout.push(fps);
    }

    // Clients × update-rate grid under production pacing (windows seal
    // on a clock; the bench compresses the 600 s cadence to Hz scale).
    let rates = [1u64, 4];
    let mut cells: Vec<PacedCell> = Vec::new();
    let mut baselines: Vec<PacedCell> = Vec::new();
    for &rate in &rates {
        eprintln!("pacing at {rate} windows/s, serve disabled...");
        baselines.push(measure_paced(&arrival, 0, rate));
        for &clients in &grid {
            eprintln!("pacing at {rate} windows/s, {clients} TCP subscribers...");
            cells.push(measure_paced(&arrival, clients, rate));
        }
    }
    for b in &baselines {
        println!(
            "paced {:>2} hz, serve disabled: {:>8.0} records/s",
            b.rate_hz, b.records_per_sec
        );
    }
    for c in &cells {
        println!(
            "paced {:>2} hz, {:>4} clients:   {:>8.0} records/s  p99 push {:>6} us  evicted {}  min drained {} B",
            c.rate_hz, c.clients, c.records_per_sec, c.p99_push_us, c.evicted, c.min_drained_bytes
        );
    }

    // The acceptance figure: 256 clients at the fastest paced rate vs
    // the serve-disabled baseline at the same rate.
    let top_rate = *rates.last().expect("rates nonempty");
    let base = baselines
        .iter()
        .find(|b| b.rate_hz == top_rate)
        .expect("baseline cell");
    let full = cells
        .iter()
        .find(|c| c.rate_hz == top_rate && c.clients == SERVE_CLIENTS)
        .expect("256-client cell");
    let ratio = full.records_per_sec / base.records_per_sec;
    println!(
        "serve tax at {} clients / {top_rate} hz: {:.1}% of serve-disabled (evicted {})",
        SERVE_CLIENTS,
        100.0 * ratio,
        full.evicted
    );

    // Hand-rolled JSON baseline for scripts/bench-smoke.sh.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"sealed_windows\": {},\n", batches.len()));
    out.push_str(&format!("  \"state_records\": {},\n", arrival.len()));
    out.push_str(&format!(
        "  \"fanout_frames_per_sec_1\": {:.1},\n",
        fanout[0]
    ));
    out.push_str(&format!(
        "  \"fanout_frames_per_sec_64\": {:.1},\n",
        fanout[1]
    ));
    out.push_str(&format!(
        "  \"fanout_frames_per_sec_256\": {:.1},\n",
        fanout[2]
    ));
    for b in &baselines {
        out.push_str(&format!(
            "  \"paced_{}hz_disabled_records_per_sec\": {:.1},\n",
            b.rate_hz, b.records_per_sec
        ));
    }
    for c in &cells {
        out.push_str(&format!(
            "  \"paced_{}hz_{}c_records_per_sec\": {:.1},\n",
            c.rate_hz, c.clients, c.records_per_sec
        ));
        out.push_str(&format!(
            "  \"paced_{}hz_{}c_p99_push_us\": {},\n",
            c.rate_hz, c.clients, c.p99_push_us
        ));
    }
    out.push_str(&format!("  \"serve_clients\": {SERVE_CLIENTS},\n"));
    out.push_str(&format!("  \"serve_evicted\": {},\n", full.evicted));
    out.push_str(&format!("  \"serve_tax_ratio\": {ratio:.4},\n"));
    out.push_str(&format!(
        "  \"pubsub_smoke_fanout_frames_per_sec\": {:.1}\n",
        fanout[1]
    ));
    out.push_str("}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_pubsub.json");
    std::fs::write(&path, out).expect("write BENCH_pubsub.json");
    println!("wrote {}", path.display());
}
