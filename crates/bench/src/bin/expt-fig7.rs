//! Figure 7 — a TTL decrease leading to a massive query increase
//! (the paper's `xmsecu.com`, which cut its TTL from 600 s to 10 s).
//!
//! Paper shape to reproduce: a step change in cache-miss queries at the
//! moment the TTL drops. We track the victim's stable `www` FQDN in the
//! `qname` dataset — the paper's victim was a single phone-home
//! hostname, so this is the equivalent observable. Old cache entries
//! drain within one pre-change TTL of the cut, then the post-change rate
//! settles near the raw demand (every arrival a miss).

use bench::{bar, header, scale};
use dns_observatory::analysis::ttl::key_series;
use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{Scenario, ScenarioEvent, ScenarioKind, Simulation};

fn main() {
    let duration = 900.0 * scale();
    let change_at = duration / 2.0;
    // A popular domain: per-resolver demand for its www record arrives
    // every ~15 s, so a 300 s TTL absorbs most arrivals and a 10 s TTL
    // absorbs almost none.
    let victim = 5u64;
    let (ttl_before, ttl_after) = (300u32, 10u32);
    let scenario = Scenario::from_events([
        ScenarioEvent {
            at: 0.0,
            domain: victim,
            kind: ScenarioKind::SetATtl(ttl_before),
        },
        ScenarioEvent {
            at: change_at,
            domain: victim,
            kind: ScenarioKind::SetATtl(ttl_after),
        },
    ]);

    let mut sim = Simulation::new(bench::experiment_sim(), scenario);
    let props = sim.world().domains.props(victim);
    let fqdn = sim.world().domains.fqdn(&props, 0).to_ascii();
    println!("victim FQDN: {fqdn}; TTL {ttl_before} s -> {ttl_after} s at t={change_at:.0}s");

    let window = duration / 20.0;
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::Qname, 30_000)],
        window_secs: window,
        ..ObservatoryConfig::default()
    });
    sim.run(duration, &mut |tx| obs.ingest(tx));
    let store = obs.finish();

    header("cache-miss queries per window for the victim FQDN");
    let windows = store.dataset(Dataset::Qname);
    let series = key_series(&windows, &fqdn);
    let max = series.iter().map(|p| p.hits).max().unwrap_or(1) as f64;
    for p in &series {
        let marker = if p.start < change_at { " " } else { "*" };
        println!(
            "  t={:>6.0}s{} ttl={:>5} hits={:>6} {}",
            p.start,
            marker,
            p.top_ttl
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            p.hits,
            bar(p.hits as f64, max, 40)
        );
    }

    let mean = |pts: &[&dns_observatory::analysis::ttl::SeriesPoint]| {
        if pts.is_empty() {
            return 0.0;
        }
        pts.iter().map(|p| p.hits as f64).sum::<f64>() / pts.len() as f64
    };
    // Before mean: average over a full expiry cycle (the 200 resolvers
    // cache the record near-simultaneously at startup, so expiries come
    // in synchronized waves — visible as burst windows above).
    let before: Vec<_> = series
        .iter()
        .filter(|p| p.start >= window && p.start < change_at - window)
        .collect();
    let after: Vec<_> = series
        .iter()
        .filter(|p| p.start > change_at + ttl_before as f64)
        .collect();
    let (mb, ma) = (mean(&before), mean(&after));
    println!(
        "\nsteady-state queries/window: {mb:.0} before -> {ma:.0} after \
         ({:.1}x increase; paper: 'massive increase in queries')",
        ma / mb.max(1.0)
    );
}
