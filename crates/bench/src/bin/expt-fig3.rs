//! Figure 3 — response delays and hop counts.
//!
//! Paper shapes to reproduce:
//! * (a) four delay regimes over the nameserver population: ~3 % at
//!   0–5 ms, ~22 % at 5–35 ms, ~72 % at 35–350 ms, ~2 % above;
//! * (b) the most popular nameservers respond faster and sit fewer hops
//!   away (delay grows with rank);
//! * (c) root letters: E, F, L fastest (most anycast mirrors);
//! * (d) gTLD letters: tight cluster, B fastest.

use bench::{bar, header, pct, run_observatory};
use dns_observatory::analysis::delays::{
    constellation, delay_by_rank, delay_cdf, gtld_letter_of, root_letter_of, server_delays, slope,
};
use dns_observatory::Dataset;
use simnet::Scenario;

fn main() {
    let out = run_observatory(
        bench::experiment_sim(),
        Scenario::new(),
        vec![(Dataset::SrvIp, 50_000)],
        30.0,
        240.0,
    );
    let rows = out.store.cumulative(Dataset::SrvIp);
    let delays = server_delays(&rows);

    header("a) distribution of median response delays over nameservers");
    let cdf = delay_cdf(&delays);
    let regimes = cdf.regime_shares();
    for (label, share) in [
        ("0-5 ms   (colocated)", regimes[0]),
        ("5-35 ms  (regional) ", regimes[1]),
        ("35-350 ms (distant) ", regimes[2]),
        (">350 ms (impaired)  ", regimes[3]),
    ] {
        println!("  {label}: {:>6} {}", pct(share), bar(share, 1.0, 40));
    }

    header("b) delay and hops vs popularity rank (groups of 100)");
    let groups = delay_by_rank(&delays, 100);
    for g in groups.iter().take(10) {
        println!(
            "  ranks {:>5}+: delay {:>6.1} ms, hops {:>4.1}",
            g.rank_start, g.mean_delay, g.mean_hops
        );
    }
    let delay_slope = slope(&groups, |g| g.mean_delay);
    let hops_slope = slope(&groups, |g| g.mean_hops);
    println!(
        "  -> slope of delay vs rank-group: {delay_slope:+.3} ms/group, hops: {hops_slope:+.4}/group \
         (both positive = popular servers are faster & closer)"
    );

    header("c) root letters A-M (median delay / hops / traffic share)");
    for l in constellation(&rows, root_letter_of) {
        println!(
            "  {}: {:>6.1} ms [{:>5.1}..{:>6.1}]  hops {:>4.1}  share {:>6}  {}",
            l.letter,
            l.median,
            l.q25,
            l.q75,
            l.hops,
            pct(l.share),
            bar(l.median, 150.0, 30)
        );
    }

    header("d) gTLD letters A-M");
    for l in constellation(&rows, gtld_letter_of) {
        println!(
            "  {}: {:>6.1} ms [{:>5.1}..{:>6.1}]  hops {:>4.1}  share {:>6}  {}",
            l.letter,
            l.median,
            l.q25,
            l.q75,
            l.hops,
            pct(l.share),
            bar(l.median, 60.0, 30)
        );
    }

    // Root/gTLD traffic shares and NXD rates (§3.5's totals).
    header("hierarchy totals");
    let total_hits: u64 = rows.iter().map(|(_, r)| r.hits).sum();
    let stats = |name: &str, select: &dyn Fn(std::net::IpAddr) -> bool| {
        let (hits, nxd): (u64, u64) = rows
            .iter()
            .filter(|(k, _)| k.parse().map(select).unwrap_or(false))
            .fold((0, 0), |(h, n), (_, r)| (h + r.hits, n + r.nxd));
        println!(
            "  {name}: {} of captured traffic, {} NXDOMAIN",
            pct(hits as f64 / total_hits as f64),
            pct(nxd as f64 / hits.max(1) as f64)
        );
    };
    stats("root letters", &|ip| root_letter_of(ip).is_some());
    stats("gTLD letters", &|ip| gtld_letter_of(ip).is_some());
}
