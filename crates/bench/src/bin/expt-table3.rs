//! Table 3 / §3.6 — QNAME minimization detection.
//!
//! Paper shapes to reproduce: only a tiny handful of resolvers are
//! consistent with qmin (the paper found 3 candidates at the root, 2 at
//! TLDs, ~0.005 % of root traffic); the lenient multi-label-TLD rule
//! does not change the verdicts.

use bench::{header, pct, run_observatory};
use dns_observatory::analysis::qmin::{classify, sim_level_of, summarize, QminConfig};
use dns_observatory::Dataset;
use simnet::Scenario;

fn main() {
    let out = run_observatory(
        bench::experiment_sim(),
        Scenario::new(),
        vec![(Dataset::SrcSrv, 60_000)],
        60.0,
        240.0,
    );
    let (store, sim) = (out.store, out.sim);
    let _ = &store;
    let rows = store.cumulative(Dataset::SrcSrv);
    println!(
        "observed {} resolver-nameserver pairs ({} resolvers configured qmin)",
        rows.len(),
        (sim.world().cfg.qmin_fraction * sim.world().cfg.resolvers as f64).ceil()
    );

    header("strict classification (Table 3 rules: root ≤1 label, TLD ≤2)");
    let strict = classify(
        &rows,
        &QminConfig {
            level_of: sim_level_of,
            lenient_tld: false,
        },
    );
    let s = summarize(&strict);
    println!(
        "  {} resolvers classified; {} possible-qmin ({})",
        s.resolvers,
        s.possible_qmin,
        pct(s.qmin_fraction)
    );
    for v in strict.iter().filter(|v| v.possible_qmin) {
        println!(
            "  possible qmin resolver: {} ({} root/TLD pairs, all minimized)",
            v.resolver, v.classified_pairs
        );
    }

    header("lenient classification (≤3 labels at TLDs, multi-label whitelist)");
    let lenient = classify(
        &rows,
        &QminConfig {
            level_of: sim_level_of,
            lenient_tld: true,
        },
    );
    let l = summarize(&lenient);
    println!(
        "  {} resolvers classified; {} possible-qmin ({}) — paper: the lenient rule finds no extra qmin resolvers",
        l.resolvers,
        l.possible_qmin,
        pct(l.qmin_fraction)
    );

    // Traffic share of qmin resolvers at root/TLD level.
    let qmin_set: std::collections::HashSet<&str> = strict
        .iter()
        .filter(|v| v.possible_qmin)
        .map(|v| v.resolver.as_str())
        .collect();
    let (mut qmin_hits, mut all_hits) = (0u64, 0u64);
    for (key, row) in &rows {
        let Some((resolver, server)) = key.split_once('|') else {
            continue;
        };
        let Ok(ip) = server.parse::<std::net::IpAddr>() else {
            continue;
        };
        if sim_level_of(ip) == dns_observatory::analysis::qmin::ServerLevel::Other {
            continue;
        }
        all_hits += row.hits;
        if qmin_set.contains(resolver) {
            qmin_hits += row.hits;
        }
    }
    println!(
        "\nqmin resolvers account for {} of root/TLD traffic (paper: ~0.005% of root traffic)",
        pct(qmin_hits as f64 / all_hits.max(1) as f64)
    );
}
