//! Table 4 — detecting and classifying DNS infrastructure changes from
//! TTL movements in the `aafqdn` dataset (paper §4.2).
//!
//! Unlike the paper, which verified its detections manually against
//! DNSDB, the scenario *schedule* is the ground truth here, so the
//! detector's classification can be scored exactly.

use bench::{header, scale};
use dns_observatory::analysis::ttl::{category_counts, detect_changes, ChangeCategory};
use dns_observatory::{Dataset, Observatory, ObservatoryConfig};
use simnet::{Scenario, ScenarioEvent, ScenarioKind, Simulation};

fn main() {
    let duration = 600.0 * scale();
    let change_at = duration / 2.0;

    let mut scenario = Scenario::new();
    let mut truth: Vec<(u64, &str)> = Vec::new();
    // 8 renumberings with the classic TTL choreography.
    for i in 0..8u64 {
        let domain = 20 + i;
        for e in Scenario::planned_change(
            domain,
            change_at,
            duration / 10.0,
            ScenarioKind::Renumber,
            30,
            38_400,
        ) {
            scenario.push(e);
        }
        truth.push((domain, "Renumbering"));
    }
    // 2 NS changes (change NS and A together, TTL 600 -> 10).
    for i in 0..2u64 {
        let domain = 30 + i;
        scenario.push(ScenarioEvent {
            at: 0.0,
            domain,
            kind: ScenarioKind::SetATtl(600),
        });
        scenario.push(ScenarioEvent {
            at: change_at,
            domain,
            kind: ScenarioKind::SetATtl(10),
        });
        scenario.push(ScenarioEvent {
            at: change_at,
            domain,
            kind: ScenarioKind::ChangeNs,
        });
        truth.push((domain, "ChangeNs"));
    }
    // 3 plain TTL decreases, 1 plain increase.
    for i in 0..3u64 {
        let domain = 35 + i;
        scenario.push(ScenarioEvent {
            at: change_at,
            domain,
            kind: ScenarioKind::SetATtl(20),
        });
        truth.push((domain, "TtlDecrease"));
    }
    scenario.push(ScenarioEvent {
        at: change_at,
        domain: 40,
        kind: ScenarioKind::SetATtl(7_200),
    });
    truth.push((40, "TtlIncrease"));
    // 4 non-conforming servers (variable TTL all along).
    for i in 0..4u64 {
        let domain = 45 + i;
        scenario.push(ScenarioEvent {
            at: 0.0,
            domain,
            kind: ScenarioKind::SetNonconforming(true),
        });
        truth.push((domain, "NonConforming"));
    }

    let mut sim = Simulation::new(bench::experiment_sim(), scenario);
    let window = duration / 8.0; // "hourly" files, scaled
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::AaFqdn, 20_000)],
        window_secs: window,
        ..ObservatoryConfig::default()
    });

    // Record the affected eSLD names for scoring.
    let esld_of: std::collections::HashMap<u64, String> = truth
        .iter()
        .map(|&(d, _)| (d, sim.world().domains.props(d).esld.to_ascii()))
        .collect();

    sim.run(duration, &mut |tx| obs.ingest(tx));
    let store = obs.finish();
    let windows = store.dataset(Dataset::AaFqdn);
    let changes = detect_changes(&windows);

    header("detected changes (Table 4)");
    let counts = category_counts(&changes);
    for (cat, label) in [
        (ChangeCategory::NonConforming, "Non-conforming"),
        (ChangeCategory::Renumbering, "Renumbering"),
        (ChangeCategory::TtlDecrease, "TTL Decrease"),
        (ChangeCategory::TtlIncrease, "TTL Increase"),
        (ChangeCategory::ChangeNs, "Change NS"),
        (ChangeCategory::Unknown, "Unknown"),
    ] {
        println!("  {label:<16} {}", counts.get(&cat).copied().unwrap_or(0));
    }

    header("scoring against the scenario schedule");
    let mut hits = 0usize;
    for &(domain, expected) in &truth {
        let esld = &esld_of[&domain];
        // Any detection on an FQDN under the scheduled domain counts.
        let found: Vec<&str> = changes
            .iter()
            .filter(|c| c.key.ends_with(esld.as_str()))
            .map(|c| match c.category {
                ChangeCategory::NonConforming => "NonConforming",
                ChangeCategory::Renumbering => "Renumbering",
                ChangeCategory::ChangeNs => "ChangeNs",
                ChangeCategory::TtlDecrease => "TtlDecrease",
                ChangeCategory::TtlIncrease => "TtlIncrease",
                ChangeCategory::Unknown => "Unknown",
            })
            .collect();
        let ok = found.contains(&expected);
        if ok {
            hits += 1;
        }
        println!(
            "  dom{domain} ({esld}): expected {expected:<14} detected {:?} {}",
            found,
            if ok { "OK" } else { "MISS" }
        );
    }
    println!(
        "\nrecovered {hits}/{} scheduled changes with the correct class",
        truth.len()
    );
    let spurious = changes
        .iter()
        .filter(|c| {
            !truth
                .iter()
                .any(|(d, _)| c.key.ends_with(esld_of[d].as_str()))
        })
        .count();
    println!("detections outside the schedule: {spurious} (hash-assigned non-conforming servers and noise)");
}
