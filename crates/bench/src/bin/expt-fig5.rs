//! Figure 5 — total observed nameserver addresses as monitoring time
//! grows (all vantage points).
//!
//! Paper shape to reproduce: a concave curve — new nameservers keep
//! appearing (the long tail of rarely-queried domains), but ever more
//! slowly; plus §3.7's /24 dispersion: roughly half of the observed /24
//! prefixes contain exactly one nameserver address.

use bench::{bar, header, pct, scale};
use dns_observatory::analysis::represent::{nameservers_over_time, slash24_dispersion, ReprRecord};
use simnet::{Scenario, Simulation};
use std::collections::HashSet;

fn main() {
    let mut sim = Simulation::new(bench::experiment_sim(), Scenario::new());
    let mut records = Vec::new();
    let duration = 600.0 * scale();
    sim.run(duration, &mut |tx| {
        records.push(ReprRecord {
            time: tx.time,
            resolver: tx.resolver,
            nameserver: tx.nameserver,
            tld: None,
        });
    });
    println!(
        "collected {} transactions over {duration:.0} simulated seconds",
        records.len()
    );

    header("nameservers seen vs monitoring time");
    let step = duration / 12.0;
    let curve = nameservers_over_time(&records, step);
    let max = curve.last().map(|&(_, n)| n as f64).unwrap_or(1.0);
    for &(t, n) in &curve {
        println!("  t={:>6.0}s: {:>8} {}", t, n, bar(n as f64, max, 40));
    }
    // Concavity: first-half growth must exceed second-half growth.
    let half = curve[curve.len() / 2].1 as f64;
    let full = curve.last().unwrap().1 as f64;
    println!(
        "  -> first half discovered {} of all servers (concave growth)",
        pct(half / full)
    );

    header("/24 dispersion of observed nameserver addresses (§3.7)");
    let set: HashSet<std::net::IpAddr> = records.iter().map(|r| r.nameserver).collect();
    let (prefixes, hist) = slash24_dispersion(&set);
    println!("  {} IPv4 /24 prefixes observed", prefixes);
    let mut counts: Vec<(usize, usize)> = hist.into_iter().collect();
    counts.sort();
    for &(addrs, n) in counts.iter().take(5) {
        println!(
            "  prefixes with {addrs} address(es): {:>7} ({})",
            n,
            pct(n as f64 / prefixes as f64)
        );
    }
}
