//! Figure 4 — data representativeness under resolver subsampling.
//!
//! Paper shapes to reproduce: (a) distinct nameservers seen in a fixed
//! window converge toward a bound as the resolver fraction grows (not
//! linear); (b) even a 5 % resolver sample sees ≥95 % of the top-k
//! nameserver list; (c) distinct TLDs converge to the actively-used
//! count, well below the full root zone.

use bench::{header, pct, scale};
use dns_observatory::analysis::represent::{sample_curves, ReprRecord};
use psl::Psl;
use simnet::{Scenario, Simulation};

fn main() {
    let cfg = bench::experiment_sim();
    let mut sim = Simulation::new(cfg, Scenario::new());
    let psl = Psl::embedded();
    let mut records = Vec::new();
    sim.run(180.0 * scale(), &mut |tx| {
        let q = tx.query.question().expect("sim queries have questions");
        // Count a TLD as seen only when it resolves (NoError) — junk
        // TLDs from scanners would otherwise dominate the count, while
        // the paper's Fig. 4c converges to the ~1,150 TLDs in active use.
        let resolves = tx
            .response
            .as_ref()
            .map(|resp| resp.rcode() == dnswire::Rcode::NoError)
            .unwrap_or(false);
        records.push(ReprRecord {
            time: tx.time,
            resolver: tx.resolver,
            nameserver: tx.nameserver,
            tld: (resolves && !q.qname.is_root()).then(|| q.qname.suffix(1).to_ascii()),
        });
        let _ = psl; // reserved for eTLD variants of this experiment
    });
    let pool: Vec<std::net::IpAddr> = (0..sim.world().plan.resolver_count())
        .map(|r| sim.world().plan.resolver_ip(r))
        .collect();
    println!(
        "collected {} transactions from {} resolvers",
        records.len(),
        pool.len()
    );

    let fractions = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let topk = 2_000;
    let reps = 10;
    let points = sample_curves(&records, &pool, &fractions, reps, topk, 0xF164);

    header("a) distinct nameservers seen vs resolver fraction (mean of 10 reps)");
    let max_ns = points.last().map(|p| p.nameservers).unwrap_or(1.0);
    for p in &points {
        println!(
            "  {:>4.0}%: {:>9.0} {}",
            p.fraction * 100.0,
            p.nameservers,
            bench::bar(p.nameservers, max_ns, 40)
        );
    }
    // Convergence check: the second half of the curve must flatten.
    let mid = points[points.len() / 2].nameservers;
    let end = points.last().unwrap().nameservers;
    println!(
        "  -> growth in second half only {} (converging, not linear)",
        pct(end / mid - 1.0)
    );

    header(&format!(
        "b) coverage of the full-data top-{topk} nameserver list"
    ));
    for p in &points {
        println!(
            "  {:>4.0}%: {:>7} {}",
            p.fraction * 100.0,
            pct(p.topk_coverage),
            bench::bar(p.topk_coverage, 1.0, 40)
        );
    }

    header("c) distinct TLDs seen vs resolver fraction");
    let max_tld = points.last().map(|p| p.tlds).unwrap_or(1.0);
    for p in &points {
        println!(
            "  {:>4.0}%: {:>7.0} {}",
            p.fraction * 100.0,
            p.tlds,
            bench::bar(p.tlds, max_tld, 40)
        );
    }
}
