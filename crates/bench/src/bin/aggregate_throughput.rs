//! Federated aggregation throughput: how fast the global tier absorbs
//! serialized collector state, measured at two layers on one fixed
//! pre-generated workload of per-upstream `WindowState` streams:
//!
//! * **codec** — `write_record`/`read_all` of the framed, CRC-checked
//!   sketchwire stream purely in memory, isolating serialization cost;
//! * **merge** — `AggregatorCore` ingesting every upstream's records and
//!   sealing global windows (chunk reassembly + Space-Saving merge +
//!   feature-vector merge), the hot loop of `dnsobs aggregate`.
//!
//! Writes `BENCH_aggregate.json` at the repository root (the committed
//! baseline `scripts/bench-smoke.sh` regresses against) and prints the
//! table. `--smoke` runs only the merge configuration and prints
//! `aggregate_smoke_records_per_sec=<n>` for the regression check.

use dns_observatory::{Dataset, ObservatoryConfig, StateExporter};
use simnet::{SimConfig, Simulation};
use sketchwire::{read_all, write_record, AggregatorConfig, AggregatorCore, WindowState};
use std::time::Instant;

const UPSTREAMS: usize = 4;
const CHUNK_ENTRIES: usize = 64;

fn cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 500),
            (Dataset::Esld, 500),
            (Dataset::Qtype, 64),
        ],
        window_secs: 1.0,
        bloom_gate: false,
        ..ObservatoryConfig::default()
    }
}

/// Per-upstream window-state streams from a seeded simulation, sliced by
/// sensor vantage like a federated deployment.
fn generate(sim_secs: f64) -> Vec<Vec<WindowState>> {
    let mut exporters: Vec<StateExporter> = (0..UPSTREAMS)
        .map(|u| StateExporter::new(cfg(), u as u64, CHUNK_ENTRIES))
        .collect();
    let mut outs: Vec<Vec<WindowState>> = vec![Vec::new(); UPSTREAMS];
    let mut sim = Simulation::from_config(SimConfig::small());
    sim.run(sim_secs, &mut |tx| {
        let u = tx.sensor_index(UPSTREAMS);
        exporters[u].ingest(tx, &mut outs[u]);
    });
    for (e, out) in exporters.into_iter().zip(&mut outs) {
        e.finish(out);
    }
    outs
}

/// Encode every record into one framed stream; returns (records/s, MB/s,
/// the stream for the decode measurement).
fn measure_encode(records: &[WindowState], reps: usize) -> (f64, f64, Vec<u8>) {
    let mut best = 0.0f64;
    let mut stream = Vec::new();
    for _ in 0..reps {
        stream = Vec::new();
        let t0 = Instant::now();
        for ws in records {
            write_record(ws, &mut stream);
        }
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(records.len() as f64 / secs);
    }
    let mbps = best * stream.len() as f64 / records.len() as f64 / 1e6;
    (best, mbps, stream)
}

fn measure_decode(records_len: usize, stream: &[u8], reps: usize) -> (f64, f64) {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let decoded = read_all(stream).expect("clean stream");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            decoded.len(),
            records_len,
            "decode must recover every record"
        );
        best = best.max(records_len as f64 / secs);
    }
    let mbps = best * stream.len() as f64 / records_len as f64 / 1e6;
    (best, mbps)
}

/// The aggregator hot loop: ingest every upstream's records interleaved
/// window-by-window (the arrival order a time-merging feed produces) and
/// seal global windows as frontiers advance. Returns (records/s,
/// windows sealed).
fn measure_merge(streams: &[Vec<WindowState>], reps: usize) -> (f64, usize) {
    // Interleave by window start so sealing happens during the run, not
    // as one burst at finish().
    let mut arrival: Vec<&WindowState> = streams.iter().flatten().collect();
    arrival.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(a.upstream.cmp(&b.upstream))
    });
    let records = arrival.len();
    let mut best = 0.0f64;
    let mut windows = 0usize;
    for _ in 0..reps {
        let mut core = AggregatorCore::new(&AggregatorConfig::new(UPSTREAMS));
        let mut sealed = Vec::new();
        let t0 = Instant::now();
        for ws in &arrival {
            core.on_state((*ws).clone()).expect("record accepted");
            core.poll(&mut sealed);
        }
        core.finish(&mut sealed);
        let secs = t0.elapsed().as_secs_f64();
        assert!(!sealed.is_empty(), "merge bench sealed no windows");
        windows = sealed.len();
        best = best.max(records as f64 / secs);
    }
    (best, windows)
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");

    if smoke_only {
        let streams = generate(6.0);
        let (rps, _) = measure_merge(&streams, 2);
        println!("aggregate_smoke_records_per_sec={rps:.1}");
        return;
    }

    eprintln!("generating workload...");
    let streams = generate(12.0);
    let flat: Vec<WindowState> = streams.iter().flatten().cloned().collect();
    eprintln!(
        "generated {} state records across {UPSTREAMS} upstreams",
        flat.len()
    );

    let reps = 3;
    let (enc_rps, enc_mbps, stream) = measure_encode(&flat, reps);
    let wire_bytes_per_record = stream.len() as f64 / flat.len() as f64;
    println!(
        "codec encode:   {enc_rps:>10.0} records/s  {enc_mbps:>7.1} MB/s  ({wire_bytes_per_record:.0} B/record)"
    );
    let (dec_rps, dec_mbps) = measure_decode(flat.len(), &stream, reps);
    println!("codec decode:   {dec_rps:>10.0} records/s  {dec_mbps:>7.1} MB/s");
    let (merge_rps, windows) = measure_merge(&streams, reps);
    println!("global merge:   {merge_rps:>10.0} records/s  ({windows} windows sealed)");

    // Hand-rolled JSON baseline for scripts/bench-smoke.sh.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"upstreams\": {UPSTREAMS},\n"));
    out.push_str(&format!("  \"state_records\": {},\n", flat.len()));
    out.push_str(&format!(
        "  \"wire_bytes_per_record\": {wire_bytes_per_record:.1},\n"
    ));
    out.push_str(&format!("  \"encode_records_per_sec\": {enc_rps:.1},\n"));
    out.push_str(&format!("  \"encode_mb_per_sec\": {enc_mbps:.1},\n"));
    out.push_str(&format!("  \"decode_records_per_sec\": {dec_rps:.1},\n"));
    out.push_str(&format!("  \"decode_mb_per_sec\": {dec_mbps:.1},\n"));
    out.push_str(&format!("  \"global_windows\": {windows},\n"));
    out.push_str(&format!(
        "  \"aggregate_smoke_records_per_sec\": {merge_rps:.1}\n"
    ));
    out.push_str("}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_aggregate.json");
    std::fs::write(&path, out).expect("write BENCH_aggregate.json");
    println!("wrote {}", path.display());
}
