//! Table 2 — top QTYPEs with the paper's 15 columns.
//!
//! Paper shapes to reproduce: A ≈3× AAAA; AAAA NoData ≫ A NoData (Happy
//! Eyeballs against IPv4-only domains); PTR with many labels and slow,
//! distant servers; NS dominated by PRSD NXDOMAIN with very large
//! responses; TXT with tiny TTLs (custom protocols); DS answered fast by
//! the parent registries.

use bench::{header, run_observatory};
use dns_observatory::analysis::qtypes::{format_qtype_table, qtype_table};
use dns_observatory::Dataset;
use simnet::Scenario;

fn main() {
    let out = run_observatory(
        bench::experiment_sim(),
        Scenario::new(),
        vec![(Dataset::Qtype, 64)],
        30.0,
        240.0,
    );
    let rows = out.store.cumulative(Dataset::Qtype);
    header("Table 2: top QTYPEs");
    let table = qtype_table(&rows);
    print!("{}", format_qtype_table(&table, 10));

    let get = |q: &str| table.iter().find(|r| r.qtype == q);
    if let (Some(a), Some(aaaa)) = (get("A"), get("AAAA")) {
        println!(
            "\nA:AAAA volume ratio {:.1} (paper ≈3); AAAA nodata {:.0}% vs A {:.1}% (paper 25% vs 0.6%)",
            a.global / aaaa.global,
            aaaa.nodata * 100.0,
            a.nodata * 100.0
        );
    }
    if let (Some(ns), Some(a)) = (get("NS"), get("A")) {
        println!(
            "NS: {:.0}% NXDOMAIN, median response {:.0} B (A median {:.0} B) — PRSD signature",
            ns.nxd * 100.0,
            ns.size,
            a.size
        );
    }
    if let Some(txt) = get("TXT") {
        println!(
            "TXT: top TTL {:?} s, {:.1} mean labels — custom protocols over DNS",
            txt.ttl, txt.qdots
        );
    }
    if let (Some(ptr), Some(a)) = (get("PTR"), get("A")) {
        println!(
            "PTR: delay {:.0} ms vs A {:.0} ms; {:.1} labels vs {:.1}",
            ptr.delay, a.delay, ptr.qdots, a.qdots
        );
    }
}
