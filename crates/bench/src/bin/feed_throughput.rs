//! Feed transport throughput: how fast the sensor→collector boundary
//! moves `TxSummary` items, measured at two layers on one fixed
//! pre-generated workload:
//!
//! * **codec** — encode/decode of BATCH frames purely in memory, in
//!   items/s and MB/s, isolating the varint/CRC cost from any I/O;
//! * **loopback** — a real `Sensor` streaming to a real `Collector` over
//!   localhost TCP, end to end through the bounded queue, writer thread,
//!   reader thread, and time merger.
//!
//! Writes `BENCH_feed.json` at the repository root (the committed
//! baseline `scripts/bench-smoke.sh` regresses against) and prints the
//! table. `--smoke` runs only the loopback configuration and prints
//! `feed_smoke_tx_per_sec=<n>` for the regression check.

use dns_observatory::TxSummary;
use feed::frame::{encode_frame, FrameReader};
use feed::{Collector, CollectorConfig, Frame, Sensor, SensorConfig};
use psl::Psl;
use simnet::{SimConfig, Simulation};
use std::time::Instant;

const BATCH_ITEMS: usize = 256;

fn generate(sim_secs: f64) -> Vec<TxSummary> {
    let psl = Psl::embedded();
    let mut sim = Simulation::from_config(SimConfig::small());
    sim.collect(sim_secs)
        .iter()
        .map(|tx| TxSummary::from_transaction(tx, &psl))
        .collect()
}

/// Encode the whole workload as BATCH frames; returns (items/s, MB/s,
/// stream bytes, the encoded stream for the decode measurement).
fn measure_encode(summaries: &[TxSummary], reps: usize) -> (f64, f64, Vec<u8>) {
    let mut best_items = 0.0f64;
    let mut stream = Vec::new();
    for _ in 0..reps {
        stream = Vec::new();
        let t0 = Instant::now();
        for (seq, chunk) in summaries.chunks(BATCH_ITEMS).enumerate() {
            let frame = Frame::Batch {
                sensor: 0,
                seq: seq as u64,
                items: chunk.to_vec(),
            };
            encode_frame(&frame, &mut stream);
        }
        let secs = t0.elapsed().as_secs_f64();
        best_items = best_items.max(summaries.len() as f64 / secs);
    }
    let mbps = best_items * stream.len() as f64 / summaries.len() as f64 / 1e6;
    (best_items, mbps, stream)
}

/// Decode the encoded stream back through the incremental reader.
fn measure_decode(summaries_len: usize, stream: &[u8], reps: usize) -> (f64, f64) {
    let mut best_items = 0.0f64;
    for _ in 0..reps {
        let mut reader = FrameReader::<TxSummary>::new();
        let t0 = Instant::now();
        let mut items = 0usize;
        // Feed in TCP-read-sized chunks so the reassembly path is real.
        for chunk in stream.chunks(64 * 1024) {
            reader.push(chunk);
            while let Some(frame) = reader.next_frame().expect("clean stream") {
                if let Frame::Batch { items: batch, .. } = frame {
                    items += batch.len();
                }
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(items, summaries_len, "decode must recover every item");
        best_items = best_items.max(items as f64 / secs);
    }
    let mbps = best_items * stream.len() as f64 / summaries_len as f64 / 1e6;
    (best_items, mbps)
}

/// End-to-end loopback: one sensor, one collector, localhost TCP.
/// Lossless by construction (large send buffer) so the rate is honest.
fn measure_loopback(summaries: &[TxSummary], reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut collector =
            Collector::<TxSummary>::bind("127.0.0.1:0", CollectorConfig::new(1)).expect("bind");
        let addr = collector.local_addr().to_string();
        let output = collector.take_output();
        let drain = std::thread::spawn(move || output.iter().count());

        let mut config = SensorConfig::new(0);
        config.batch_items = BATCH_ITEMS;
        config.buffer_frames = 4096;
        let t0 = Instant::now();
        let client = Sensor::connect(&addr, config);
        for s in summaries {
            client.send(s.clone());
        }
        let sent = client.finish();
        let merged = drain.join().unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let report = collector.finish();
        assert_eq!(sent.dropped_frames, 0, "loopback bench must be lossless");
        assert_eq!(merged, summaries.len(), "collector must see every item");
        assert_eq!(report.total_gap_frames(), 0);
        best = best.max(summaries.len() as f64 / secs);
    }
    best
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");

    if smoke_only {
        let summaries = generate(4.0);
        let tps = measure_loopback(&summaries, 2);
        println!("feed_smoke_tx_per_sec={tps:.1}");
        return;
    }

    eprintln!("generating workload...");
    let summaries = generate(12.0);
    eprintln!("generated {} summaries", summaries.len());

    let reps = 3;
    let (enc_items, enc_mbps, stream) = measure_encode(&summaries, reps);
    let wire_bytes_per_item = stream.len() as f64 / summaries.len() as f64;
    println!(
        "codec encode:   {enc_items:>10.0} items/s  {enc_mbps:>7.1} MB/s  ({wire_bytes_per_item:.1} B/item)"
    );
    let (dec_items, dec_mbps) = measure_decode(summaries.len(), &stream, reps);
    println!("codec decode:   {dec_items:>10.0} items/s  {dec_mbps:>7.1} MB/s");
    let loopback = measure_loopback(&summaries, reps);
    println!("loopback TCP:   {loopback:>10.0} items/s");

    // Hand-rolled JSON baseline for scripts/bench-smoke.sh.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"summaries\": {},\n", summaries.len()));
    out.push_str(&format!(
        "  \"wire_bytes_per_item\": {wire_bytes_per_item:.1},\n"
    ));
    out.push_str(&format!("  \"encode_items_per_sec\": {enc_items:.1},\n"));
    out.push_str(&format!("  \"encode_mb_per_sec\": {enc_mbps:.1},\n"));
    out.push_str(&format!("  \"decode_items_per_sec\": {dec_items:.1},\n"));
    out.push_str(&format!("  \"decode_mb_per_sec\": {dec_mbps:.1},\n"));
    out.push_str(&format!("  \"feed_smoke_tx_per_sec\": {loopback:.1}\n"));
    out.push_str("}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_feed.json");
    std::fs::write(&path, out).expect("write BENCH_feed.json");
    println!("wrote {}", path.display());
}
