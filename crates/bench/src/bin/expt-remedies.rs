//! §5.4 — the paper's three proposed remedies for the Happy-Eyeballs /
//! negative-caching problem, implemented and measured head to head:
//!
//! 1. a joint A+AAAA query type (one transaction per dual-stack lookup);
//! 2. split negative-caching semantics (NoData TTL aligned with the A
//!    TTL, NXDOMAIN keeps the short SOA minimum);
//! 3. simply raising the negative TTL to match the A TTL (per-domain
//!    configuration, no protocol change).
//!
//! For each variant we report total cache-miss transactions and the
//! share of empty AAAA responses — the two costs §5 quantifies.

use bench::{header, pct, scale};
use dns_observatory::{Dataset, Observatory, ObservatoryConfig, TxSummary};
use psl::Psl;
use simnet::{Scenario, ScenarioEvent, ScenarioKind, SimConfig, Simulation};

struct Outcome {
    label: &'static str,
    transactions: u64,
    aaaa_nodata: u64,
    web_answers: u64,
}

fn run(label: &'static str, cfg: SimConfig, scenario: Scenario) -> Outcome {
    let psl = Psl::embedded();
    let mut sim = Simulation::new(cfg, scenario);
    sim.run(30.0 * scale(), &mut |_| {}); // warm caches
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::Qtype, 64)],
        window_secs: 30.0,
        ..ObservatoryConfig::default()
    });
    let mut aaaa_nodata = 0u64;
    let mut web_answers = 0u64;
    let mut transactions = 0u64;
    sim.run(120.0 * scale(), &mut |tx| {
        transactions += 1;
        let s = TxSummary::from_transaction(tx, &psl);
        if s.qtype == dnswire::RecordType::Aaaa && s.is_nodata() {
            aaaa_nodata += 1;
        }
        if matches!(
            s.qtype,
            dnswire::RecordType::A | dnswire::RecordType::Aaaa | dnswire::RecordType::Any
        ) && s.ok_ans
        {
            web_answers += 1;
        }
        obs.ingest_summary(s);
    });
    Outcome {
        label,
        transactions,
        aaaa_nodata,
        web_answers,
    }
}

fn main() {
    let base_cfg = SimConfig::small;

    let baseline = run("baseline", base_cfg(), Scenario::new());

    let joint = run(
        "remedy 1: joint A+AAAA query",
        SimConfig {
            remedy_joint_query: true,
            ..base_cfg()
        },
        Scenario::new(),
    );

    let split = run(
        "remedy 2: split NXD/NoData TTLs",
        SimConfig {
            remedy_split_negative: true,
            ..base_cfg()
        },
        Scenario::new(),
    );

    // Remedy 3: per-domain configuration — raise the negative TTL of the
    // pathological domains (the only ones where it differs).
    let probe = Simulation::from_config(base_cfg());
    let events: Vec<ScenarioEvent> = (1..=2_000u64)
        .filter(|&id| {
            let p = probe.world().domains.props(id);
            p.neg_ttl < p.a_ttl
        })
        .map(|id| {
            let p = probe.world().domains.props(id);
            ScenarioEvent {
                at: 0.0,
                domain: id,
                kind: ScenarioKind::SetNegTtl(p.a_ttl),
            }
        })
        .collect();
    let fixed_domains = events.len();
    drop(probe);
    let aligned = run(
        "remedy 3: negTTL := A TTL",
        base_cfg(),
        Scenario::from_events(events),
    );

    header("§5.4 remedies, measured over identical demand");
    println!(
        "{:<34}{:>14}{:>14}{:>14}",
        "variant", "transactions", "empty AAAA", "answers"
    );
    for o in [&baseline, &joint, &split, &aligned] {
        println!(
            "{:<34}{:>14}{:>14}{:>14}",
            o.label, o.transactions, o.aaaa_nodata, o.web_answers
        );
    }

    let drop_vs = |o: &Outcome| 1.0 - o.transactions as f64 / baseline.transactions as f64;
    let empty_drop = |o: &Outcome| 1.0 - o.aaaa_nodata as f64 / baseline.aaaa_nodata.max(1) as f64;
    println!();
    println!(
        "remedy 1 removes {} of all transactions and {} of empty AAAA responses",
        pct(drop_vs(&joint)),
        pct(empty_drop(&joint))
    );
    println!(
        "remedy 2 removes {} of empty AAAA responses with no protocol change to queries",
        pct(empty_drop(&split))
    );
    println!(
        "remedy 3 removes {} of empty AAAA responses by reconfiguring {} domains",
        pct(empty_drop(&aligned)),
        fixed_domains
    );
    println!(
        "\npaper §5.4: remedy 1 needs client+server support; remedy 2 splits the\nsemantics zone operators asked for; remedy 3 is config-only but weakens\nthe defensive low negative TTL some CDNs rely on."
    );
}
