//! Table 1 — top AS organizations by volume of DNS transactions.
//!
//! Paper shapes to reproduce: AMAZON leads with the largest share
//! (cloud-hosted nameservers, high delay/hops); VERISIGN high via the
//! gTLD letters with few server IPs; CDNs (AKAMAI/CLOUDFLARE) with low
//! delays — Cloudflare anycast with far fewer IPs than Akamai; the top
//! 10 organizations together handle >50 % of observed transactions.

use bench::{header, pct, run_observatory};
use dns_observatory::analysis::asn::{format_org_table, org_table};
use dns_observatory::Dataset;
use simnet::Scenario;

fn main() {
    let out = run_observatory(
        bench::experiment_sim(),
        Scenario::new(),
        vec![(Dataset::SrvIp, 50_000)],
        30.0,
        240.0,
    );
    let (store, sim) = (out.store, out.sim);
    let rows = store.cumulative(Dataset::SrvIp);
    let total = out.measured_tx;

    header("Table 1: top AS organizations by DNS transaction volume");
    let table = org_table(&rows, &sim.world().asdb, total);
    print!("{}", format_org_table(&table, 12));

    let top10: f64 = table.iter().take(10).map(|r| r.global_share).sum();
    println!(
        "\ntop 10 organizations carry {} of all observed transactions",
        pct(top10)
    );

    // The paper's anycast-vs-unicast contrast.
    let find = |name: &str| table.iter().find(|r| r.org == name);
    if let (Some(cf), Some(ak)) = (find("CLOUDFLARE"), find("AKAMAI")) {
        println!(
            "CDN contrast: CLOUDFLARE {} servers vs AKAMAI {} servers; delays {:.1} vs {:.1} ms",
            cf.servers, ak.servers, cf.delay_ms, ak.delay_ms
        );
    }
    if let (Some(az), Some(ak)) = (find("AMAZON"), find("AKAMAI")) {
        println!(
            "cloud-vs-CDN: AMAZON delay {:.1} ms / {:.1} hops vs AKAMAI {:.1} ms / {:.1} hops",
            az.delay_ms, az.hops, ak.delay_ms, ak.hops
        );
    }
}
