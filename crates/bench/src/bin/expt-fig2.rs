//! Figure 2 — traffic distributions for Top-k nameservers (a), FQDNs (b)
//! and effective SLDs (c), ranked by traffic, split by response class.
//!
//! Paper shapes to reproduce:
//! * (a) ~95 % of all transactions captured by the srvip top list; ~50 %
//!   of traffic handled by the top ~1,000 nameserver IPs; the NXDOMAIN
//!   curve starts high (botnet traffic on the few gTLD letters).
//! * (b) FQDN list captures much less (many ephemeral names); NoData
//!   concentrated on popular IPv4-only names.
//! * (c) eSLDs in between, with botnet SLD structure in the NXD curve.

use bench::{bar, header, pct, run_observatory};
use dns_observatory::analysis::distribution::{log_spaced_points, traffic_distribution};
use dns_observatory::Dataset;
use simnet::Scenario;

fn main() {
    let out = run_observatory(
        bench::experiment_sim(),
        Scenario::new(),
        vec![
            (Dataset::SrvIp, 50_000),
            (Dataset::Qname, 50_000),
            (Dataset::Esld, 50_000),
        ],
        30.0,
        240.0,
    );
    let (store, sim) = (out.store, out.sim);
    let total = out.measured_tx;
    println!(
        "measured {total} transactions (after warm-up) from {} resolvers",
        sim.world().plan.resolver_count()
    );

    for (dataset, label) in [
        (Dataset::SrvIp, "a) nameservers ranked by traffic"),
        (Dataset::Qname, "b) FQDNs ranked by traffic"),
        (Dataset::Esld, "c) effective SLDs ranked by traffic"),
    ] {
        header(label);
        let rows = store.cumulative(dataset);
        let dist = traffic_distribution(&rows);
        println!(
            "top list captures {} of all transactions ({} objects)",
            pct(dist.captured_hits as f64 / total as f64),
            dist.ranked.len()
        );
        for curve in &dist.curves {
            println!("  {}:", curve.label);
            for (rank, v) in log_spaced_points(curve) {
                // Log-spaced CDF print-out, one row per decade boundary.
                if (rank == 1 || rank % 10 == 0 || rank == dist.ranked.len())
                    && (rank == 1
                        || [10, 100, 1_000, 10_000, 100_000].contains(&rank)
                        || rank == dist.ranked.len())
                {
                    println!("    rank {:>6}: {:>6} {}", rank, pct(v), bar(v, 1.0, 40));
                }
            }
        }
        let all = &dist.curves[0];
        if let Some(rank) = all.rank_for_share(0.5) {
            println!("  -> 50% of captured traffic within the top {rank} objects");
        }
    }
}
