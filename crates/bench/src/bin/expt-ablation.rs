//! Ablations of the platform's design choices (DESIGN.md §6):
//!
//! * Space-Saving capacity `k` vs captured traffic share — the paper's
//!   implicit claim that moderate k suffices because DNS traffic is
//!   heavy-tailed;
//! * the Bloom eviction gate on vs off under one-shot-name churn;
//! * HyperLogLog precision vs per-object estimate accuracy and memory.

use bench::{header, pct, scale};
use dns_observatory::{Dataset, FeatureConfig, Observatory, ObservatoryConfig};
use simnet::{SimConfig, Simulation};

fn capture_share(k: usize, bloom: bool, feature_cfg: FeatureConfig, secs: f64) -> (f64, f64) {
    let mut sim = Simulation::from_config(SimConfig::small());
    sim.run(5.0, &mut |_| {}); // warm caches
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![(Dataset::Qname, k)],
        window_secs: secs / 4.0,
        feature_cfg,
        bloom_gate: bloom,
    });
    sim.run(secs, &mut |tx| obs.ingest(tx));
    let total = obs.ingested();
    let store = obs.finish();
    // Captured = traffic that survived into the dumped rows. (The raw
    // kept/dropped counters cannot distinguish useful aggregation from
    // churn: an ungated Space-Saving cache "keeps" every observation by
    // inserting the key, evicting someone else.)
    let windows = store.dataset(Dataset::Qname);
    let row_hits: u64 = windows.iter().map(|w| w.total_hits()).sum();
    let qnames_est: f64 = windows
        .iter()
        .flat_map(|w| w.rows.iter())
        .map(|(_, r)| r.qnamesa)
        .sum();
    (row_hits as f64 / total as f64, qnames_est)
}

fn main() {
    let secs = 20.0 * scale();

    header("ablation 1: Space-Saving capacity k vs captured traffic (qname dataset)");
    println!("{:>8} {:>10}", "k", "captured");
    for k in [500, 2_000, 8_000, 32_000] {
        let (share, _) = capture_share(k, true, FeatureConfig::default(), secs);
        println!("{k:>8} {:>9}", pct(share));
    }
    println!("-> diminishing returns: the heavy tail means each 4x in k buys ever less");

    header("ablation 2: Bloom eviction gate under one-shot churn");
    for (label, bloom) in [("gate ON ", true), ("gate OFF", false)] {
        let (share, _) = capture_share(2_000, bloom, FeatureConfig::default(), secs);
        println!("  {label}: captured {}", pct(share));
    }
    println!("-> the gate defends monitored objects against botnet/ephemeral churn");

    header("ablation 3: HyperLogLog precision vs accuracy (exact-count oracle)");
    // Feed a known number of distinct QNAMEs through one FeatureSet at
    // each precision and compare the estimate.
    use dns_observatory::TxSummary;
    use psl::Psl;
    let psl = Psl::embedded();
    let mut sim = Simulation::from_config(SimConfig::small());
    let mut summaries = Vec::new();
    sim.run(5.0, &mut |tx| {
        summaries.push(TxSummary::from_transaction(tx, &psl))
    });
    let exact: std::collections::HashSet<String> =
        summaries.iter().map(|s| s.qname.to_ascii()).collect();
    println!(
        "{:>5} {:>10} {:>12} {:>10}",
        "p", "bytes", "estimate", "error"
    );
    for p in [4u8, 6, 8, 10, 12] {
        let mut fs = dns_observatory::FeatureSet::new(FeatureConfig {
            hll_precision: p,
            ttl_slots: 8,
        });
        for s in &summaries {
            fs.fold(s);
        }
        let est = fs.row().qnamesa;
        let err = (est - exact.len() as f64).abs() / exact.len() as f64;
        println!(
            "{p:>5} {:>10} {est:>12.0} {:>9.1}%",
            1usize << p,
            err * 100.0
        );
    }
    println!(
        "-> the default p=7 (128 B/sketch) holds per-object errors under ~10%,\n   small enough for the paper's order-of-magnitude feature columns\n   (exact distinct names: {})",
        exact.len()
    );
}
