//! Pipeline throughput sweep: single-threaded Observatory vs the sharded
//! ThreadedPipeline across a workers × shards grid, on one fixed
//! pre-generated transaction stream.
//!
//! Writes `BENCH_pipeline.json` at the repository root (the committed
//! baseline `scripts/bench-smoke.sh` regresses against) and prints the
//! table. `--smoke` runs only the smoke configuration and prints
//! `smoke_tx_per_sec=<n>` for the regression check. `--scaling` runs the
//! full grid, prints machine-parseable `scaling_*` facts (single-thread
//! fold, best parallel config, speedup, monotonicity verdict) for the
//! scaling-shape gate in `scripts/bench-smoke.sh`, appends the curve to
//! `BENCH_history.jsonl`, and refreshes `BENCH_pipeline.json`.
//! `--trace-overhead` measures the smoke config with and without a
//! flight recorder attached and prints `trace_*` facts for the ≤5 %
//! tracing-tax gate.
//!
//! Steady-state tracker allocations are measured when built with
//! `--features count-allocs` (a counting global allocator); without the
//! feature the alloc fields are reported as null.

use dns_observatory::{
    Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TopKTracker, TxSummary,
};
use simnet::{SimConfig, Simulation, Transaction};
use std::time::Instant;

#[cfg(feature = "count-allocs")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: defers entirely to the System allocator; the counter is a
    // relaxed atomic with no allocation of its own.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// The tracked datasets: the full paper set with capacities small enough
/// to exercise eviction on the high-cardinality keys.
fn bench_cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 10_000),
            (Dataset::Etld, 2_000),
            (Dataset::Esld, 10_000),
            (Dataset::Qname, 10_000),
            (Dataset::Qtype, 64),
            (Dataset::Rcode, 16),
            (Dataset::AaFqdn, 5_000),
            (Dataset::SrcSrv, 10_000),
        ],
        window_secs: 1.0,
        ..ObservatoryConfig::default()
    }
}

/// The fixed grid point used for regression smoke checks.
const SMOKE_WORKERS: usize = 2;
const SMOKE_SHARDS: usize = 2;

fn generate(sim_secs: f64) -> Vec<Transaction> {
    let mut sim = Simulation::from_config(SimConfig::small());
    sim.collect(sim_secs)
}

/// Best-of-`reps` transactions per second for one pipeline configuration.
fn measure_threaded(txs: &[Transaction], workers: usize, shards: usize, reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let pipeline = ThreadedPipeline::with_shards(bench_cfg(), workers, shards);
        let t0 = Instant::now();
        let store = pipeline.run(txs.iter().cloned());
        let secs = t0.elapsed().as_secs_f64();
        assert!(!store.windows().is_empty());
        best = best.max(txs.len() as f64 / secs);
    }
    best
}

/// Same measurement with provenance tracing on: a flight recorder is
/// attached, so every stage records span events. The ratio against the
/// untraced run is the tracing tax `scripts/bench-smoke.sh` gates at 5 %.
fn measure_traced(txs: &[Transaction], workers: usize, shards: usize, reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let recorder = telemetry::FlightRecorder::new();
        let pipeline = ThreadedPipeline::with_shards(bench_cfg(), workers, shards)
            .with_flight_recorder(recorder.clone());
        let t0 = Instant::now();
        let store = pipeline.run(txs.iter().cloned());
        let secs = t0.elapsed().as_secs_f64();
        assert!(!store.windows().is_empty());
        assert!(
            recorder.ring("pipeline/seal").recorded() > 0,
            "tracing was supposed to be on"
        );
        best = best.max(txs.len() as f64 / secs);
    }
    best
}

fn measure_single(txs: &[Transaction], reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut obs = Observatory::new(bench_cfg());
        let t0 = Instant::now();
        for tx in txs {
            obs.ingest(tx);
        }
        let secs = t0.elapsed().as_secs_f64();
        assert!(obs.ingested() == txs.len() as u64);
        best = best.max(txs.len() as f64 / secs);
    }
    best
}

/// Steady-state allocations per observe() on a warmed SrvIp tracker.
/// First pass inserts every key (allocating); the measured second pass
/// should hit the borrowed-bytes lookup path and allocate nothing.
#[cfg(feature = "count-allocs")]
fn measure_allocs(txs: &[Transaction]) -> (f64, u64) {
    use std::sync::atomic::Ordering;
    let psl = psl::Psl::embedded();
    let summaries: Vec<TxSummary> = txs
        .iter()
        .map(|tx| TxSummary::from_transaction(tx, &psl))
        .collect();
    let mut tracker = TopKTracker::new(
        Dataset::SrvIp,
        20_000,
        dns_observatory::FeatureConfig::default(),
        true,
    );
    for s in &summaries {
        tracker.observe(s);
    }
    let before = counting_alloc::ALLOCS.load(Ordering::Relaxed);
    for s in &summaries {
        tracker.observe(s);
    }
    let delta = counting_alloc::ALLOCS.load(Ordering::Relaxed) - before;
    (delta as f64 / summaries.len() as f64, delta)
}

#[cfg(not(feature = "count-allocs"))]
fn measure_allocs(_txs: &[Transaction]) -> (f64, u64) {
    // Keep the unused-import lints quiet in the featureless build.
    let _ = (
        TopKTracker::new as fn(_, _, _, _) -> _,
        TxSummary::from_transaction as fn(_, _) -> _,
    );
    (f64::NAN, 0)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Each grid point's predecessor for the monotone-scaling check: adding
/// cores along this chain must never reduce throughput (with 10 %
/// measurement tolerance). `(1,1)` has no predecessor.
fn predecessor(workers: usize, shards: usize) -> Option<(usize, usize)> {
    match (workers, shards) {
        (2, 1) => Some((1, 1)),
        (4, 1) => Some((2, 1)),
        (2, 2) => Some((2, 1)),
        (4, 2) => Some((2, 2)),
        (4, 4) => Some((4, 2)),
        _ => None,
    }
}

/// The scaling-shape facts `scripts/bench-smoke.sh` gates on.
fn print_scaling_facts(cores: usize, single: f64, results: &[(usize, usize, f64)]) {
    println!("scaling_cores={cores}");
    println!("scaling_single_tx_per_sec={single:.1}");
    for &(w, s, tps) in results {
        println!("scaling_point workers={w} shards={s} tx_per_sec={tps:.1}");
    }
    let (bw, bs, best) = results
        .iter()
        .filter(|&&(w, _, _)| w > 1)
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .copied()
        .expect("grid has workers>1 points");
    println!("scaling_best_parallel workers={bw} shards={bs} tx_per_sec={best:.1}");
    println!("scaling_speedup={:.3}", best / single);
    let mut violations = Vec::new();
    for &(w, s, tps) in results {
        if let Some((pw, ps)) = predecessor(w, s) {
            let pred = results
                .iter()
                .find(|&&(rw, rs, _)| (rw, rs) == (pw, ps))
                .map(|&(_, _, t)| t)
                .expect("predecessor is in the grid");
            if tps < 0.9 * pred {
                violations.push(format!("({w},{s})={tps:.0}<0.9*({pw},{ps})={pred:.0}"));
            }
        }
    }
    if violations.is_empty() {
        println!("scaling_monotone=ok");
    } else {
        println!("scaling_monotone=violation {}", violations.join(" "));
    }
}

/// Append the scaling curve to `BENCH_history.jsonl` so the shape is
/// trackable across commits, alongside the smoke records bench-smoke.sh
/// writes.
fn append_history(
    root: &std::path::Path,
    cores: usize,
    single: f64,
    results: &[(usize, usize, f64)],
) {
    use std::io::Write;
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let grid = results
        .iter()
        .map(|&(w, s, tps)| {
            format!(
                "{{\"workers\":{w},\"shards\":{s},\"tx_per_sec\":{}}}",
                json_f64(tps)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let line = format!(
        "{{\"kind\":\"scaling\",\"unix_time\":{unix_time},\"cores\":{cores},\"single_tx_per_sec\":{},\"grid\":[{grid}]}}\n",
        json_f64(single)
    );
    let path = root.join("BENCH_history.jsonl");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open BENCH_history.jsonl");
    f.write_all(line.as_bytes()).expect("append scaling record");
    println!("appended scaling record to {}", path.display());
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");
    let scaling = std::env::args().any(|a| a == "--scaling");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    if smoke_only {
        let txs = generate(4.0);
        let tps = measure_threaded(&txs, SMOKE_WORKERS, SMOKE_SHARDS, 2);
        println!("smoke_tx_per_sec={tps:.1}");
        return;
    }

    if std::env::args().any(|a| a == "--trace-overhead") {
        // Interleaved best-of-3 per mode on the smoke config: the
        // tracing tax is the ratio of the two bests, which cancels the
        // shared machine noise better than back-to-back blocks.
        let txs = generate(4.0);
        let mut off = 0.0f64;
        let mut on = 0.0f64;
        for _ in 0..3 {
            off = off.max(measure_threaded(&txs, SMOKE_WORKERS, SMOKE_SHARDS, 1));
            on = on.max(measure_traced(&txs, SMOKE_WORKERS, SMOKE_SHARDS, 1));
        }
        println!("trace_off_tx_per_sec={off:.1}");
        println!("trace_on_tx_per_sec={on:.1}");
        println!("trace_overhead_ratio={:.4}", on / off);
        return;
    }

    eprintln!("generating workload...");
    let txs = generate(12.0);
    eprintln!("generated {} transactions; cores={cores}", txs.len());

    let reps = 2;
    let single = measure_single(&txs, reps);
    println!("single-threaded Observatory: {single:>10.0} tx/s");

    let grid = [(1, 1), (2, 1), (4, 1), (2, 2), (4, 2), (4, 4)];
    let mut results = Vec::new();
    for &(workers, shards) in &grid {
        let tps = measure_threaded(&txs, workers, shards, reps);
        println!(
            "workers={workers} shards={shards}: {tps:>10.0} tx/s  ({:.2}x single)",
            tps / single
        );
        results.push((workers, shards, tps));
    }
    let smoke = measure_threaded(&txs, SMOKE_WORKERS, SMOKE_SHARDS, reps);

    let (allocs_per_tx, alloc_total) = measure_allocs(&txs);
    if allocs_per_tx.is_finite() {
        println!("steady-state srvip tracker: {allocs_per_tx:.4} allocs/tx ({alloc_total} total)");
        // The committed baseline is 0.0001 allocs/tx; hold the line (with
        // 50 % headroom for counter jitter) so recycling regressions fail
        // the bench run itself.
        assert!(
            allocs_per_tx <= 1.5e-4,
            "steady-state allocs_per_tx {allocs_per_tx} exceeds the 0.0001 baseline"
        );
    } else {
        println!("steady-state allocs: not measured (build with --features count-allocs)");
    }

    // Hand-rolled JSON baseline for scripts/bench-smoke.sh.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"transactions\": {},\n", txs.len()));
    out.push_str(&format!("  \"single_tx_per_sec\": {},\n", json_f64(single)));
    out.push_str(&format!("  \"smoke_tx_per_sec\": {},\n", json_f64(smoke)));
    out.push_str(&format!(
        "  \"smoke_config\": {{ \"workers\": {SMOKE_WORKERS}, \"shards\": {SMOKE_SHARDS} }},\n"
    ));
    out.push_str(&format!(
        "  \"allocs_per_tx_srvip_steady\": {},\n",
        if allocs_per_tx.is_finite() {
            format!("{allocs_per_tx:.4}")
        } else {
            "null".to_string()
        }
    ));
    out.push_str("  \"grid\": [\n");
    for (i, (w, s, tps)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"workers\": {w}, \"shards\": {s}, \"tx_per_sec\": {} }}{comma}\n",
            json_f64(*tps)
        ));
    }
    out.push_str("  ]\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_pipeline.json");
    std::fs::write(&path, out).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());

    if scaling {
        print_scaling_facts(cores, single, &results);
        append_history(&root, cores, single, &results);
    }
}
