//! Shared plumbing for the experiment binaries (`expt-*`): standard
//! simulation runs, scale control, and plain-text chart rendering.
//!
//! Every binary prints the rows/series of one paper table or figure; see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison produced from these outputs.

use dns_observatory::{Dataset, Observatory, ObservatoryConfig, TimeSeriesStore};
use simnet::{Scenario, SimConfig, Simulation};

/// Experiment scale factor from `DNSOBS_SCALE` (default 1.0). The
/// simulated duration of each experiment multiplies by this; shapes are
/// stable from ~0.25 upward.
pub fn scale() -> f64 {
    std::env::var("DNSOBS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(1.0)
}

/// The standard simulation configuration used by the experiments: the
/// default world with the experiment seed.
pub fn experiment_sim() -> SimConfig {
    SimConfig::default()
}

/// Default cache warm-up before measurements begin, simulated seconds
/// (scaled). The paper measures a steady-state system; without warm-up,
/// first-contact delegation misses inflate root/TLD traffic shares.
pub const WARMUP_SECS: f64 = 90.0;

/// Result of [`run_observatory`].
pub struct RunOutput {
    /// Collected time series.
    pub store: TimeSeriesStore,
    /// The simulation, for world/AS-database access.
    pub sim: Simulation,
    /// Transactions observed during the measurement period (excludes
    /// warm-up traffic).
    pub measured_tx: u64,
}

/// Run a simulation for `sim_secs` (scaled) against an observatory with
/// the given datasets, returning the time-series store and the
/// simulation (for access to the world / AS database). Resolver caches
/// are warmed for [`WARMUP_SECS`] before the observatory attaches.
pub fn run_observatory(
    cfg: SimConfig,
    scenario: Scenario,
    datasets: Vec<(Dataset, usize)>,
    window_secs: f64,
    sim_secs: f64,
) -> RunOutput {
    let mut sim = Simulation::new(cfg, scenario);
    sim.run(WARMUP_SECS * scale(), &mut |_| {});
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets,
        window_secs,
        ..ObservatoryConfig::default()
    });
    sim.run(sim_secs * scale(), &mut |tx| obs.ingest(tx));
    let measured_tx = obs.ingested();
    RunOutput {
        store: obs.finish(),
        sim,
        measured_tx,
    }
}

/// Render a horizontal ASCII bar of `value` within `[0, max]`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() || value < 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(50.0, 10.0, 10), "##########");
        assert_eq!(bar(-1.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.503), "50.3%");
    }

    #[test]
    fn scale_defaults_to_one() {
        if std::env::var("DNSOBS_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }

    #[test]
    fn run_observatory_produces_windows() {
        let out = run_observatory(
            SimConfig::small(),
            Scenario::new(),
            vec![(Dataset::Qtype, 32)],
            1.0,
            2.0 / scale(), // keep the test fast regardless of scale
        );
        assert!(!out.store.windows().is_empty());
        assert!(out.sim.transactions_emitted() > 0);
        assert!(out.measured_tx > 0);
    }
}
