//! Micro-benchmarks for the sketch substrate: the per-transaction cost of
//! everything the tracker touches on the hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sketches::{hash::xxh64, BloomFilter, HyperLogLog, LogHistogram, SpaceSaving, TopValues};

fn keys(n: usize) -> Vec<String> {
    // Zipf-ish key stream: repeated hot keys plus a cold tail.
    (0..n)
        .map(|i| {
            let k = if i % 3 == 0 { i % 50 } else { i % 5_000 };
            format!("key-{k}")
        })
        .collect()
}

fn bench_spacesaving(c: &mut Criterion) {
    let stream = keys(100_000);
    let mut group = c.benchmark_group("space_saving");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("observe_100k_k1000", |b| {
        b.iter(|| {
            let mut ss: SpaceSaving<String, u32> = SpaceSaving::new(1_000, 60.0);
            for (i, k) in stream.iter().enumerate() {
                *ss.observe(k, i as f64 * 1e-4) += 1;
            }
            black_box(ss.len())
        })
    });
    group.bench_function("iter_desc_k1000", |b| {
        let mut ss: SpaceSaving<String, u32> = SpaceSaving::new(1_000, 60.0);
        for (i, k) in stream.iter().enumerate() {
            ss.observe(k, i as f64 * 1e-4);
        }
        b.iter(|| black_box(ss.iter_desc().len()))
    });
    group.finish();
}

fn bench_hll(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperloglog");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("insert_10k_p7", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::new(7);
            for i in 0u64..10_000 {
                h.insert(&i.to_le_bytes());
            }
            black_box(h.count())
        })
    });
    group.bench_function("estimate_p12", |b| {
        let mut h = HyperLogLog::new(12);
        for i in 0u64..100_000 {
            h.insert(&i.to_le_bytes());
        }
        b.iter(|| black_box(h.estimate()))
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("check_and_insert_10k", |b| {
        b.iter(|| {
            let mut bf = BloomFilter::new(50_000, 0.02);
            let mut hits = 0u32;
            for i in 0u64..10_000 {
                if bf.check_and_insert(&(i % 4_000).to_le_bytes()) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_histogram");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_10k_and_quartiles", |b| {
        b.iter(|| {
            let mut h = LogHistogram::for_delays_ms();
            for i in 0..10_000 {
                h.record(0.5 + (i % 700) as f64);
            }
            black_box(h.quartiles())
        })
    });
    group.finish();
}

fn bench_topvalues(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_values");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_10k_8slots", |b| {
        b.iter(|| {
            let mut t = TopValues::new(8);
            for i in 0u64..10_000 {
                t.record([60, 300, 3_600, 86_400][i as usize % 4] + (i % 13) / 12);
            }
            black_box(t.top())
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let data = vec![0xabu8; 64];
    let mut group = c.benchmark_group("xxh64");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("hash_64B", |b| b.iter(|| black_box(xxh64(&data, 0))));
    group.finish();
}

criterion_group!(
    benches,
    bench_spacesaving,
    bench_hll,
    bench_bloom,
    bench_histogram,
    bench_topvalues,
    bench_hash
);
criterion_main!(benches);
