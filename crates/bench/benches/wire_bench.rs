//! Micro-benchmarks for the DNS wire format: parse/build costs per
//! message, which bound the summarization stage's raw-packet path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnswire::{ip, Message, Name, RData, Rcode, Record, RecordType, Soa};
use std::net::Ipv4Addr;

fn sample_response() -> Message {
    let query = Message::query(
        0x1234,
        Name::from_ascii("www.example.com").unwrap(),
        RecordType::A,
    );
    let mut resp = Message::response_to(&query, Rcode::NoError);
    resp.header.aa = true;
    for k in 0..2u8 {
        resp.answers.push(Record::new(
            Name::from_ascii("www.example.com").unwrap(),
            300,
            RData::A(Ipv4Addr::new(203, 0, 113, k)),
        ));
    }
    for j in 1..=2u8 {
        resp.authorities.push(Record::new(
            Name::from_ascii("example.com").unwrap(),
            86_400,
            RData::Ns(Name::from_ascii(&format!("ns{j}.example.com")).unwrap()),
        ));
    }
    resp.additionals.push(Record::new(
        Name::from_ascii("ns1.example.com").unwrap(),
        86_400,
        RData::A(Ipv4Addr::new(192, 0, 2, 53)),
    ));
    resp
}

fn nxdomain_response() -> Message {
    let query = Message::query(
        9,
        Name::from_ascii("missing.example.com").unwrap(),
        RecordType::Aaaa,
    );
    let mut resp = Message::response_to(&query, Rcode::NxDomain);
    resp.authorities.push(Record::new(
        Name::from_ascii("example.com").unwrap(),
        300,
        RData::Soa(Soa {
            mname: Name::from_ascii("ns1.example.com").unwrap(),
            rname: Name::from_ascii("hostmaster.example.com").unwrap(),
            serial: 1,
            refresh: 7_200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        }),
    ));
    resp
}

fn bench_message(c: &mut Criterion) {
    let resp = sample_response();
    let wire = resp.to_bytes().unwrap();
    let nxd_wire = nxdomain_response().to_bytes().unwrap();

    let mut group = c.benchmark_group("message");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("parse_referral_response", |b| {
        b.iter(|| black_box(Message::parse(&wire).unwrap()))
    });
    group.bench_function("parse_nxdomain_soa", |b| {
        b.iter(|| black_box(Message::parse(&nxd_wire).unwrap()))
    });
    group.bench_function("build_with_compression", |b| {
        b.iter(|| black_box(resp.to_bytes().unwrap()))
    });
    group.finish();
}

fn bench_name(c: &mut Criterion) {
    // A message with heavy pointer use: parse the last name.
    let resp = sample_response();
    let wire = resp.to_bytes().unwrap();
    let mut group = c.benchmark_group("name");
    group.bench_function("from_ascii", |b| {
        b.iter(|| black_box(Name::from_ascii("static.cdn.some-site.example.org").unwrap()))
    });
    group.bench_function("parse_compressed_message", |b| {
        b.iter(|| {
            // Parsing the full message exercises every compressed name.
            black_box(Message::parse(&wire).unwrap().answers.len())
        })
    });
    group.finish();
}

fn bench_packets(c: &mut Criterion) {
    let resp = sample_response();
    let payload = resp.to_bytes().unwrap();
    let pkt = ip::build_udp_packet(
        "100.64.0.1".parse().unwrap(),
        "40.0.0.53".parse().unwrap(),
        43_210,
        53,
        57,
        &payload,
    );
    let mut group = c.benchmark_group("ip_udp");
    group.throughput(Throughput::Bytes(pkt.len() as u64));
    group.bench_function("parse_udp_packet", |b| {
        b.iter(|| black_box(ip::parse_udp_packet(&pkt).unwrap()))
    });
    group.bench_function("build_udp_packet", |b| {
        b.iter(|| {
            black_box(ip::build_udp_packet(
                "100.64.0.1".parse().unwrap(),
                "40.0.0.53".parse().unwrap(),
                43_210,
                53,
                57,
                &payload,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_message, bench_name, bench_packets);
criterion_main!(benches);
