//! End-to-end pipeline benchmarks: transactions/second through
//! summarization and tracking, single-threaded vs the stage-ring pipeline
//! — the numbers that decide whether the platform keeps up with the
//! paper's 200 k transactions/second feed.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dns_observatory::{Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TxSummary};
use psl::Psl;
use simnet::{SimConfig, Simulation, Transaction};

fn sample_transactions(secs: f64) -> Vec<Transaction> {
    let mut sim = Simulation::from_config(SimConfig::small());
    sim.collect(secs)
}

fn obs_config() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 5_000),
            (Dataset::Qname, 5_000),
            (Dataset::Qtype, 64),
        ],
        window_secs: 1.0,
        ..ObservatoryConfig::default()
    }
}

fn bench_summarize(c: &mut Criterion) {
    let txs = sample_transactions(2.0);
    let psl = Psl::embedded();
    let mut group = c.benchmark_group("summarize");
    group.throughput(Throughput::Elements(txs.len() as u64));
    group.bench_function("structured", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for tx in &txs {
                n += TxSummary::from_transaction(tx, &psl).qdots as usize;
            }
            black_box(n)
        })
    });
    // The raw-packet path includes IP/UDP/DNS parse.
    let packets: Vec<_> = txs
        .iter()
        .map(|tx| {
            let (q, r) = tx.to_packets();
            (q, r, tx.time, tx.contributor, tx.delay_ms)
        })
        .collect();
    group.bench_function("from_raw_packets", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (q, r, time, contrib, delay) in &packets {
                if let Some(s) =
                    TxSummary::from_packets(q, r.as_deref(), *time, *contrib, *delay, &psl)
                {
                    n += s.qdots as usize;
                }
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let txs = sample_transactions(2.0);
    let mut group = c.benchmark_group("observatory");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txs.len() as u64));
    group.bench_function("ingest_single_thread", |b| {
        b.iter(|| {
            let mut obs = Observatory::new(obs_config());
            for tx in &txs {
                obs.ingest(tx);
            }
            black_box(obs.finish().windows().len())
        })
    });
    group.bench_function("threaded_pipeline_4_workers", |b| {
        b.iter(|| {
            let pipeline = ThreadedPipeline::new(obs_config(), 4);
            black_box(pipeline.run(txs.clone()).windows().len())
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("generate_1s_small_world", |b| {
        b.iter(|| {
            let mut sim = Simulation::from_config(SimConfig::small());
            let mut n = 0u64;
            sim.run(1.0, &mut |_| n += 1);
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_summarize, bench_ingest, bench_simulator);
criterion_main!(benches);
