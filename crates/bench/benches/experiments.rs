//! One Criterion benchmark per paper table/figure: each bench runs the
//! corresponding analysis over a pre-collected miniature dataset, so
//! `cargo bench` exercises every reproduction code path and reports its
//! cost. The full-scale regenerators are the `expt-*` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dns_observatory::analysis::{asn, delays, distribution, happy, hilbert, qmin, represent, ttl};
use dns_observatory::{Dataset, Observatory, ObservatoryConfig, TimeSeriesStore};
use simnet::{Scenario, ScenarioEvent, ScenarioKind, SimConfig, Simulation};
use std::collections::HashSet;
use std::sync::OnceLock;

struct Fixture {
    store: TimeSeriesStore,
    records: Vec<represent::ReprRecord>,
    servers: HashSet<std::net::IpAddr>,
    pool: Vec<std::net::IpAddr>,
    asdb: asdb::AsDb,
    total: u64,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = Scenario::from_events([
            ScenarioEvent {
                at: 0.0,
                domain: 5,
                kind: ScenarioKind::SetATtl(120),
            },
            ScenarioEvent {
                at: 10.0,
                domain: 5,
                kind: ScenarioKind::SetATtl(10),
            },
        ]);
        let mut sim = Simulation::new(SimConfig::small(), scenario);
        let mut obs = Observatory::new(ObservatoryConfig {
            datasets: vec![
                (Dataset::SrvIp, 5_000),
                (Dataset::Qname, 5_000),
                (Dataset::Esld, 5_000),
                (Dataset::Qtype, 64),
                (Dataset::SrcSrv, 10_000),
                (Dataset::AaFqdn, 5_000),
            ],
            window_secs: 5.0,
            ..ObservatoryConfig::default()
        });
        let mut records = Vec::new();
        let mut servers = HashSet::new();
        sim.run(20.0, &mut |tx| {
            obs.ingest(tx);
            servers.insert(tx.nameserver);
            records.push(represent::ReprRecord {
                time: tx.time,
                resolver: tx.resolver,
                nameserver: tx.nameserver,
                tld: None,
            });
        });
        let total = obs.ingested();
        let pool = (0..sim.world().plan.resolver_count())
            .map(|r| sim.world().plan.resolver_ip(r))
            .collect();
        Fixture {
            store: obs.finish(),
            records,
            servers,
            pool,
            asdb: sim.world().plan.build_asdb(),
            total,
        }
    })
}

fn bench_experiments(c: &mut Criterion) {
    let f = fixture();
    let srvip = f.store.cumulative(Dataset::SrvIp);
    let qname = f.store.cumulative(Dataset::Qname);
    let qtype = f.store.cumulative(Dataset::Qtype);
    let srcsrv = f.store.cumulative(Dataset::SrcSrv);

    let mut g = c.benchmark_group("paper_experiments");
    g.sample_size(10);

    g.bench_function("fig2_traffic_distribution", |b| {
        b.iter(|| {
            let d = distribution::traffic_distribution(black_box(&srvip));
            black_box(d.curves[0].rank_for_share(0.5))
        })
    });
    g.bench_function("table1_org_aggregation", |b| {
        b.iter(|| black_box(asn::org_table(&srvip, &f.asdb, f.total).len()))
    });
    g.bench_function("table2_qtype_table", |b| {
        b.iter(|| black_box(dns_observatory::analysis::qtypes::qtype_table(&qtype).len()))
    });
    g.bench_function("fig3_delay_analysis", |b| {
        b.iter(|| {
            let d = delays::server_delays(&srvip);
            let cdf = delays::delay_cdf(&d);
            let groups = delays::delay_by_rank(&d, 100);
            black_box((cdf.regime_shares(), groups.len()))
        })
    });
    g.bench_function("table3_qmin_classify", |b| {
        b.iter(|| {
            let v = qmin::classify(
                &srcsrv,
                &qmin::QminConfig {
                    level_of: qmin::sim_level_of,
                    lenient_tld: false,
                },
            );
            black_box(qmin::summarize(&v))
        })
    });
    g.bench_function("fig4_representativeness", |b| {
        b.iter(|| {
            black_box(represent::sample_curves(
                &f.records,
                &f.pool,
                &[0.2, 1.0],
                2,
                100,
                7,
            ))
        })
    });
    g.bench_function("fig5_servers_over_time", |b| {
        b.iter(|| black_box(represent::nameservers_over_time(&f.records, 5.0).len()))
    });
    g.bench_function("fig6_hilbert_heatmap", |b| {
        b.iter(|| black_box(hilbert::heatmap_of(f.servers.iter().copied(), 8).occupied()))
    });
    g.bench_function("fig7_key_series", |b| {
        let windows = f.store.dataset(Dataset::Esld);
        let key = &windows[0]
            .rows
            .first()
            .map(|(k, _)| k.clone())
            .unwrap_or_default();
        b.iter(|| black_box(ttl::key_series(&windows, key).len()))
    });
    g.bench_function("fig8_ttl_traffic_changes", |b| {
        let windows = f.store.dataset(Dataset::Esld);
        let mid = windows.len() / 2;
        b.iter(|| black_box(ttl::ttl_traffic_changes(&windows[..mid], &windows[mid..]).len()))
    });
    g.bench_function("table4_change_detection", |b| {
        let windows = f.store.dataset(Dataset::AaFqdn);
        b.iter(|| black_box(ttl::detect_changes(&windows).len()))
    });
    g.bench_function("fig9_happy_eyeballs", |b| {
        b.iter(|| {
            let rows = happy::happy_rows(&qname, 200);
            black_box(happy::quotient_share_correlation(&rows))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
