//! Store lifecycle: open with crash recovery, append, read, resume.
//!
//! A store directory contains exactly one [`MANIFEST`] plus the segment
//! files it references. Every mutation follows the same discipline:
//!
//! 1. write new segment(s) to `*.tmp`, rename to `*.seg`;
//! 2. write the new manifest to `MANIFEST.tmp`, rename over `MANIFEST`;
//! 3. only then unlink any replaced input segments.
//!
//! The manifest rename is the commit point. [`Store::open`] recovers
//! from a crash at any step by sweeping temp files and unreferenced
//! segments into a [`RecoveryReport`] — removed, ledgered, never
//! silently kept — while a *referenced but missing* segment is a hard
//! typed error (that store lost data and must not answer queries).
//!
//! [`MANIFEST`]: crate::manifest::MANIFEST_NAME

use crate::compact::CrashFs;
use crate::manifest::{valid_segment_name, Manifest, SegmentMeta, MANIFEST_NAME};
use crate::segment::{self, window_us, SegmentFooter};
use crate::StoreError;
use sketchwire::WindowState;
use std::path::{Path, PathBuf};
use telemetry::trace::{TraceEvent, TraceKind, TraceRing};
use telemetry::{Counter, Registry};

/// Trace stage name for store events.
const STAGE: &str = "store";

/// What [`Store::open`] swept up after a crash. Nothing is ever removed
/// silently: every swept file is named here for the caller to ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Temp files from interrupted writes, removed.
    pub removed_tmp: Vec<String>,
    /// Segment files not referenced by the manifest (a crash between
    /// segment rename and manifest swap), removed.
    pub removed_orphans: Vec<String>,
}

impl RecoveryReport {
    /// True when recovery had nothing to sweep (clean shutdown).
    pub fn is_clean(&self) -> bool {
        self.removed_tmp.is_empty() && self.removed_orphans.is_empty()
    }
}

/// Store/compaction counters, mirrored into a telemetry registry.
#[derive(Debug)]
pub(crate) struct StoreMetrics {
    pub(crate) appends: Counter,
    pub(crate) segments_written: Counter,
    pub(crate) records_written: Counter,
    pub(crate) compactions: Counter,
    pub(crate) compaction_inputs: Counter,
    pub(crate) recovery_tmp: Counter,
    pub(crate) recovery_orphans: Counter,
    pub(crate) expired_segments: Counter,
}

impl StoreMetrics {
    fn register(registry: &Registry) -> StoreMetrics {
        StoreMetrics {
            appends: registry.counter("store_appends_total"),
            segments_written: registry.counter("store_segments_written_total"),
            records_written: registry.counter("store_records_written_total"),
            compactions: registry.counter("store_compactions_total"),
            compaction_inputs: registry.counter("store_compaction_input_segments_total"),
            recovery_tmp: registry.counter("store_recovery_tmp_removed_total"),
            recovery_orphans: registry.counter("store_recovery_orphans_removed_total"),
            expired_segments: registry.counter("store_expired_segments_total"),
        }
    }
}

/// What one retention pass removed. Expiry is segment-granular: only
/// segments *wholly* past the horizon are dropped, so a window is never
/// partially forgotten.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpiryReport {
    /// The horizon applied (µs): segments with `end_us < horizon` go.
    pub horizon_us: u64,
    /// Manifest rows of the segments removed, in manifest order.
    pub expired: Vec<SegmentMeta>,
}

impl ExpiryReport {
    /// Windows covered by the expired segments.
    pub fn windows(&self) -> u64 {
        self.expired.iter().map(|s| s.windows as u64).sum()
    }

    /// Records covered by the expired segments.
    pub fn records(&self) -> u64 {
        self.expired.iter().map(|s| s.records as u64).sum()
    }
}

/// An open historical window store.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    manifest: Manifest,
    pub(crate) metrics: Option<StoreMetrics>,
    pub(crate) trace: TraceRing,
    pub(crate) now_us: u64,
}

impl Store {
    /// Open `dir`, creating an empty store if it does not exist yet, and
    /// sweep crash leftovers. See the module docs for the recovery
    /// contract.
    pub fn open(dir: &Path) -> Result<(Store, RecoveryReport), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest = match std::fs::read(&manifest_path) {
            Ok(bytes) => {
                let text = String::from_utf8(bytes).map_err(|_| StoreError::Manifest {
                    what: "manifest is not UTF-8".into(),
                })?;
                Manifest::decode(&text)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // A fresh directory gets an empty manifest — but segment
                // files without any manifest mean the commit record was
                // destroyed, which recovery must not paper over.
                if dir_has_segments(dir)? {
                    return Err(StoreError::Manifest {
                        what: "manifest missing but segment files present".into(),
                    });
                }
                let empty = Manifest::default();
                write_atomic(dir, MANIFEST_NAME, empty.encode().as_bytes())?;
                empty
            }
            Err(e) => return Err(StoreError::io(&manifest_path, e)),
        };

        let mut report = RecoveryReport::default();
        let mut present = std::collections::BTreeSet::new();
        let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == MANIFEST_NAME {
                continue;
            }
            if name.ends_with(".tmp") {
                std::fs::remove_file(entry.path()).map_err(|e| StoreError::io(&entry.path(), e))?;
                report.removed_tmp.push(name);
            } else if name.ends_with(".seg") {
                present.insert(name);
            }
            // Anything else in the directory is not ours to touch.
        }
        for meta in &manifest.segments {
            if !present.remove(&meta.name) {
                return Err(StoreError::MissingSegment {
                    segment: meta.name.clone(),
                });
            }
        }
        for orphan in present {
            let path = dir.join(&orphan);
            std::fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
            report.removed_orphans.push(orphan);
        }
        report.removed_tmp.sort();
        report.removed_orphans.sort();

        Ok((
            Store {
                dir: dir.to_path_buf(),
                manifest,
                metrics: None,
                trace: TraceRing::disabled(),
                now_us: 0,
            },
            report,
        ))
    }

    /// Mirror store counters into `registry` (builder style). Pass the
    /// recovery report so swept files are counted, not just printed.
    pub fn with_registry(mut self, registry: &Registry, recovered: &RecoveryReport) -> Store {
        let metrics = StoreMetrics::register(registry);
        metrics.recovery_tmp.inc(recovered.removed_tmp.len() as u64);
        metrics
            .recovery_orphans
            .inc(recovered.removed_orphans.len() as u64);
        self.metrics = Some(metrics);
        self
    }

    /// Record provenance events into `ring` (builder style).
    pub fn with_trace(mut self, ring: TraceRing) -> Store {
        self.trace = ring;
        self
    }

    /// Inject the current clock reading (µs) for trace timestamps.
    pub fn set_now_us(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live segments, in manifest order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.manifest.segments
    }

    /// Manifest swap counter.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// The durable watermark frontier: the latest window end (µs) any
    /// live segment covers. A restarted collector resumes from here.
    pub fn frontier_us(&self) -> Option<u64> {
        self.manifest.segments.iter().map(|s| s.end_us).max()
    }

    /// Append a batch of window states as one new level-0 segment.
    pub fn append(&mut self, states: &[WindowState]) -> Result<SegmentMeta, StoreError> {
        self.append_with(states, &mut CrashFs::durable())
    }

    /// [`Store::append`] with every filesystem mutation routed through
    /// `fs`, so the chaos suite can crash the append at any syscall.
    pub fn append_with(
        &mut self,
        states: &[WindowState],
        fs: &mut CrashFs,
    ) -> Result<SegmentMeta, StoreError> {
        if states.is_empty() {
            return Err(StoreError::Manifest {
                what: "refusing to append an empty batch".into(),
            });
        }
        let meta = self.write_segment(0, states, fs)?;
        let mut next = self.manifest.clone();
        next.generation += 1;
        next.segments.push(meta.clone());
        self.swap_manifest(next, fs)?;
        if let Some(m) = &self.metrics {
            m.appends.inc(1);
        }
        self.trace_event(TraceKind::Seal, meta.start_us, meta.records as u64);
        Ok(meta)
    }

    /// Drop every segment wholly before `horizon_us` (retention). The
    /// manifest swap is the commit point, exactly as for appends: the
    /// shrunk manifest lands first, then the dead segment files are
    /// unlinked. A crash in between leaves unreferenced `.seg` files,
    /// which the next [`Store::open`] sweeps and ledgers in its
    /// [`RecoveryReport`] — the deletion is never silent either way.
    pub fn expire_before(&mut self, horizon_us: u64) -> Result<ExpiryReport, StoreError> {
        self.expire_before_with(horizon_us, &mut CrashFs::durable())
    }

    /// [`Store::expire_before`] with filesystem mutations routed through
    /// `fs`, so the chaos suite can crash the retention pass mid-flight.
    pub fn expire_before_with(
        &mut self,
        horizon_us: u64,
        fs: &mut CrashFs,
    ) -> Result<ExpiryReport, StoreError> {
        let expired: Vec<SegmentMeta> = self
            .manifest
            .segments
            .iter()
            .filter(|s| s.end_us < horizon_us)
            .cloned()
            .collect();
        if expired.is_empty() {
            return Ok(ExpiryReport {
                horizon_us,
                expired,
            });
        }
        let mut next = self.manifest.clone();
        next.generation += 1;
        next.segments.retain(|s| s.end_us >= horizon_us);
        self.swap_manifest(next, fs)?;
        for meta in &expired {
            fs.remove(&self.dir.join(&meta.name))?;
            self.trace_event(TraceKind::Drop, meta.start_us, meta.records as u64);
        }
        if let Some(m) = &self.metrics {
            m.expired_segments.inc(expired.len() as u64);
        }
        Ok(ExpiryReport {
            horizon_us,
            expired,
        })
    }

    /// Write one segment (temp + rename) and return its manifest row.
    /// The segment is durable but *unreferenced* until the caller swaps
    /// the manifest — exactly the window the chaos axis crashes into.
    pub(crate) fn write_segment(
        &mut self,
        level: u8,
        states: &[WindowState],
        fs: &mut CrashFs,
    ) -> Result<SegmentMeta, StoreError> {
        let (bytes, footer) = segment::encode_segment(level, states);
        let name = format!(
            "L{level}-{:016}-g{:06}.seg",
            footer.start_us,
            self.manifest.generation + 1
        );
        debug_assert!(valid_segment_name(&name));
        let tmp = self.dir.join(format!("{name}.tmp"));
        fs.write(&tmp, &bytes)?;
        fs.rename(&tmp, &self.dir.join(&name))?;
        if let Some(m) = &self.metrics {
            m.segments_written.inc(1);
            m.records_written.inc(states.len() as u64);
        }
        Ok(SegmentMeta {
            name,
            level,
            start_us: footer.start_us,
            end_us: footer.end_us,
            windows: footer.windows,
            records: footer.records,
        })
    }

    /// Swap in `next` as the live manifest (temp + rename commit point).
    pub(crate) fn swap_manifest(
        &mut self,
        next: Manifest,
        fs: &mut CrashFs,
    ) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        fs.write(&tmp, next.encode().as_bytes())?;
        fs.rename(&tmp, &self.dir.join(MANIFEST_NAME))?;
        self.manifest = next;
        Ok(())
    }

    pub(crate) fn trace_event(&self, kind: TraceKind, window_us: u64, value: u64) {
        if self.trace.is_enabled() {
            self.trace.record(
                TraceEvent::new(self.now_us, STAGE, kind)
                    .window(window_us)
                    .value(value),
            );
        }
    }

    /// Read and fully validate one live segment.
    pub fn read_segment(
        &self,
        meta: &SegmentMeta,
    ) -> Result<(SegmentFooter, Vec<WindowState>), StoreError> {
        let path = self.dir.join(&meta.name);
        let bytes = std::fs::read(&path).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => StoreError::MissingSegment {
                segment: meta.name.clone(),
            },
            _ => StoreError::io(&path, e),
        })?;
        segment::decode_segment(&bytes, &meta.name)
    }

    /// Read only a segment's footer index (no record decoding).
    pub fn read_footer(&self, meta: &SegmentMeta) -> Result<SegmentFooter, StoreError> {
        let path = self.dir.join(&meta.name);
        let bytes = std::fs::read(&path).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => StoreError::MissingSegment {
                segment: meta.name.clone(),
            },
            _ => StoreError::io(&path, e),
        })?;
        segment::read_footer(&bytes, &meta.name).map(|(f, _)| f)
    }

    /// The newest durable window: its start time and all of its states
    /// (every dataset, every chunk). This is the resume point — the
    /// compactor never rolls the newest level-0 window (see
    /// [`crate::compact`]), so the states here are verbatim tracker
    /// exports, not cross-window merges.
    pub fn last_window(&self) -> Result<Option<(f64, Vec<WindowState>)>, StoreError> {
        let newest = self
            .manifest
            .segments
            .iter()
            .filter(|s| s.level == 0)
            .max_by_key(|s| s.end_us);
        let Some(meta) = newest else {
            return Ok(None);
        };
        let (_, states) = self.read_segment(meta)?;
        let last_us = states.iter().map(|ws| window_us(ws.start)).max();
        let Some(last_us) = last_us else {
            return Ok(None);
        };
        let mut last: Vec<WindowState> = states
            .into_iter()
            .filter(|ws| window_us(ws.start) == last_us)
            .collect();
        last.sort_by(|a, b| {
            a.topk
                .dataset
                .cmp(&b.topk.dataset)
                .then(a.topk.chunk.cmp(&b.topk.chunk))
        });
        let start = last.first().map(|ws| ws.start).unwrap_or_default();
        Ok(Some((start, last)))
    }
}

fn dir_has_segments(dir: &Path) -> Result<bool, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        if entry.file_name().to_string_lossy().ends_with(".seg") {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Plain durable temp-write + rename, for paths outside fault injection.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, bytes).map_err(|e| StoreError::io(&tmp, e))?;
    let to = dir.join(name);
    std::fs::rename(&tmp, &to).map_err(|e| StoreError::io(&to, e))?;
    Ok(())
}
