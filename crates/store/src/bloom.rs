//! Serializable per-segment key bloom.
//!
//! Each segment footer carries a small bloom filter over every entry key
//! in the segment, so a history-of-object query can skip whole segments
//! without decoding a single record. Unlike `sketches::BloomFilter`
//! (a live, mutable gate), this one is built once at segment-write time
//! and its raw bits travel inside the CRC-protected footer, so the
//! layout is part of the segment format and versioned with it.

/// Number of hash probes per key. Fixed: the value is baked into the
/// segment format rather than tuned per segment.
const PROBES: u32 = 4;

/// Bits budgeted per distinct key (≈ 2.4 % false-positive rate at 4
/// probes). Queries only use the bloom to *skip* segments, so a false
/// positive costs one segment decode, never a wrong answer.
const BITS_PER_KEY: usize = 10;

/// A fixed-size split-free bloom filter over segment keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyBloom {
    bits: Vec<u8>,
}

impl KeyBloom {
    /// An empty bloom sized for `keys` distinct keys.
    pub fn with_keys(keys: usize) -> KeyBloom {
        let nbits = (keys.max(1) * BITS_PER_KEY).next_power_of_two().max(64);
        KeyBloom {
            bits: vec![0u8; nbits / 8],
        }
    }

    /// Rebuild a bloom from serialized bits (footer decode path).
    /// `None` when the bit vector has an invalid (non-power-of-two or
    /// zero) length.
    pub fn from_bits(bits: Vec<u8>) -> Option<KeyBloom> {
        if bits.is_empty() || !(bits.len() * 8).is_power_of_two() {
            return None;
        }
        Some(KeyBloom { bits })
    }

    /// The raw bit vector (footer encode path).
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// Add one key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hash_pair(key);
        let nbits = (self.bits.len() * 8) as u64;
        for i in 0..PROBES as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & (nbits - 1);
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    /// True when `key` *may* be present; false means definitely absent.
    pub fn maybe_contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash_pair(key);
        let nbits = (self.bits.len() * 8) as u64;
        (0..PROBES as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & (nbits - 1);
            self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
        })
    }
}

/// Two independent 64-bit FNV-1a style hashes for double hashing.
fn hash_pair(key: &[u8]) -> (u64, u64) {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
    for &b in key {
        h1 = (h1 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        h2 = (h2 ^ b as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        h2 = h2.rotate_left(31);
    }
    // An even h2 would cycle over a power-of-two range; force odd.
    (h1, h2 | 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_found() {
        let mut b = KeyBloom::with_keys(100);
        for i in 0..100u32 {
            b.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..100u32 {
            assert!(b.maybe_contains(format!("key-{i}").as_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_small() {
        let mut b = KeyBloom::with_keys(1_000);
        for i in 0..1_000u32 {
            b.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..10_000u32)
            .filter(|i| b.maybe_contains(format!("absent-{i}").as_bytes()))
            .count();
        assert!(fp < 800, "false positives {fp}/10000");
    }

    #[test]
    fn bits_round_trip() {
        let mut b = KeyBloom::with_keys(10);
        b.insert(b"x");
        let back = KeyBloom::from_bits(b.bits().to_vec()).expect("valid bits");
        assert_eq!(back, b);
        assert!(back.maybe_contains(b"x"));
    }

    #[test]
    fn from_bits_rejects_bad_lengths() {
        assert!(KeyBloom::from_bits(vec![]).is_none());
        assert!(KeyBloom::from_bits(vec![0u8; 3]).is_none());
        assert!(KeyBloom::from_bits(vec![0u8; 8]).is_some());
    }
}
