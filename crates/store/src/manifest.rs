//! The store's single mutable file: a checksummed text manifest.
//!
//! The manifest is the store's commit point. Every mutation — append,
//! compaction — writes new segment files first, then replaces the
//! manifest by write-temp + rename. A crash therefore leaves either the
//! old manifest (new segments become ledgered orphans) or the new one
//! (dropped inputs become ledgered orphans); the set of *referenced*
//! windows is never half-updated. The format is human-readable on
//! purpose — CI uploads manifests as failure artifacts — with a trailing
//! CRC line so a torn or hand-mangled manifest is a typed error, not a
//! confused store:
//!
//! ```text
//! dnsobs-store v1 generation 42
//! segment  <name>  <level>  <start_us>  <end_us>  <windows>  <records>
//! ...
//! crc  <hex8>
//! ```
//! (fields are tab-separated; the CRC covers every preceding byte).

use crate::StoreError;
use feed::crc32::crc32;
use std::fmt::Write as _;

/// Manifest file name inside the store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// First-line prefix (format version lives here).
const HEADER_PREFIX: &str = "dnsobs-store v1 generation ";

/// One live segment as the manifest records it. The footer holds the
/// full index (datasets, bloom); the manifest keeps just enough to plan
/// queries and compactions without opening any segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment file name (relative to the store directory).
    pub name: String,
    /// Compaction level (0 = raw appends, then hour/day/month).
    pub level: u8,
    /// Earliest window start, µs.
    pub start_us: u64,
    /// Latest window end, µs.
    pub end_us: u64,
    /// Distinct window starts covered.
    pub windows: u32,
    /// Serialized record count.
    pub records: u32,
}

/// The decoded manifest: a generation counter plus the live segment set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic swap counter; also salts new segment file names so a
    /// recovered store never reuses an orphan's name.
    pub generation: u64,
    /// Live segments, in manifest order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// Render the manifest to its on-disk text form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER_PREFIX}{}", self.generation);
        for s in &self.segments {
            let _ = writeln!(
                out,
                "segment\t{}\t{}\t{}\t{}\t{}\t{}",
                s.name, s.level, s.start_us, s.end_us, s.windows, s.records
            );
        }
        let crc = crc32(out.as_bytes());
        let _ = writeln!(out, "crc\t{crc:08x}");
        out
    }

    /// Parse and checksum an on-disk manifest. Every malformed input is
    /// a typed [`StoreError::Manifest`]; this function never panics.
    pub fn decode(text: &str) -> Result<Manifest, StoreError> {
        let bad = |what: String| StoreError::Manifest { what };
        // Split off the CRC line first: it covers all preceding bytes.
        let body_end = text
            .rfind("crc\t")
            .ok_or_else(|| bad("missing crc line".into()))?;
        let (body, crc_line) = text.split_at(body_end);
        let crc_hex = crc_line
            .strip_prefix("crc\t")
            .and_then(|s| s.strip_suffix('\n'))
            .ok_or_else(|| bad("malformed crc line".into()))?;
        let want = u32::from_str_radix(crc_hex, 16).map_err(|_| bad("malformed crc hex".into()))?;
        let got = crc32(body.as_bytes());
        if want != got {
            return Err(bad(format!(
                "crc mismatch: stored {want:08x}, computed {got:08x}"
            )));
        }

        let mut lines = body.lines();
        let header = lines.next().ok_or_else(|| bad("empty manifest".into()))?;
        let generation = header
            .strip_prefix(HEADER_PREFIX)
            .ok_or_else(|| bad(format!("unsupported header: {header:?}")))?
            .parse::<u64>()
            .map_err(|_| bad("malformed generation".into()))?;

        let mut segments = Vec::new();
        for line in lines {
            let mut f = line.split('\t');
            if f.next() != Some("segment") {
                return Err(bad(format!("unknown line: {line:?}")));
            }
            let name = f
                .next()
                .ok_or_else(|| bad("segment line missing name".into()))?
                .to_string();
            if !valid_segment_name(&name) {
                return Err(bad(format!("invalid segment name: {name:?}")));
            }
            let mut num = |what: &str| -> Result<u64, StoreError> {
                f.next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| bad(format!("segment {name}: bad {what}")))
            };
            let level = num("level")?;
            if level > u8::MAX as u64 {
                return Err(bad(format!("segment {name}: level out of range")));
            }
            let start_us = num("start_us")?;
            let end_us = num("end_us")?;
            if end_us < start_us {
                return Err(bad(format!("segment {name}: time range inverted")));
            }
            let windows = num("windows")?;
            let records = num("records")?;
            if windows > u32::MAX as u64 || records > u32::MAX as u64 {
                return Err(bad(format!("segment {name}: count out of range")));
            }
            if f.next().is_some() {
                return Err(bad(format!("segment {name}: trailing fields")));
            }
            segments.push(SegmentMeta {
                name,
                level: level as u8,
                start_us,
                end_us,
                windows: windows as u32,
                records: records as u32,
            });
        }
        Ok(Manifest {
            generation,
            segments,
        })
    }
}

/// Segment names are store-relative single path components ending in
/// `.seg` — anything else is either corruption or an escape attempt.
pub fn valid_segment_name(name: &str) -> bool {
    !name.is_empty()
        && name.ends_with(".seg")
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        && !name.contains("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 7,
            segments: vec![
                SegmentMeta {
                    name: "L0-0000-g1.seg".into(),
                    level: 0,
                    start_us: 0,
                    end_us: 600_000_000,
                    windows: 1,
                    records: 2,
                },
                SegmentMeta {
                    name: "L1-3600-g6.seg".into(),
                    level: 1,
                    start_us: 3_600_000_000,
                    end_us: 7_200_000_000,
                    windows: 6,
                    records: 6,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let text = m.encode();
        assert_eq!(Manifest::decode(&text).expect("decode"), m);
    }

    #[test]
    fn empty_store_roundtrips() {
        let m = Manifest::default();
        assert_eq!(Manifest::decode(&m.encode()).expect("decode"), m);
    }

    #[test]
    fn any_byte_flip_is_a_typed_error() {
        let text = sample().encode();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x01;
            // Flips can produce invalid UTF-8; both paths must error.
            if let Ok(s) = std::str::from_utf8(&bad) {
                assert!(Manifest::decode(s).is_err(), "flip at {i} decoded");
            }
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let text = sample().encode();
        for cut in 0..text.len() {
            if let Some(prefix) = text.get(..cut) {
                assert!(Manifest::decode(prefix).is_err(), "cut at {cut} decoded");
            }
        }
    }

    #[test]
    fn name_validation_rejects_path_escapes() {
        assert!(valid_segment_name("L0-123-g4.seg"));
        assert!(!valid_segment_name("../evil.seg"));
        assert!(!valid_segment_name("a/b.seg"));
        assert!(!valid_segment_name("plain.txt"));
        assert!(!valid_segment_name(""));
    }
}
