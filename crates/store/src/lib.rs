//! Append-only columnar historical window store (the paper's DNSDB-style
//! lookback, rebuilt on sketch state instead of raw transactions).
//!
//! The Observatory seals one 10-minute window at a time; the paper then
//! aggregates those windows up an hour/day/month hierarchy and answers
//! "history of object X" queries over months. This crate is that tier:
//!
//! * [`segment`] — CRC-framed, versioned segment files holding serialized
//!   [`sketchwire::WindowState`] records, closed by a footer index (time
//!   range, datasets, key bloom) readable from the file tail without
//!   touching the record body.
//! * [`manifest`] — the store's single mutable file: a checksummed text
//!   manifest listing live segments, replaced only by write-temp +
//!   rename, so every crash leaves either the old or the new store view.
//! * [`store`] — open/append/scan plus crash recovery: orphan segments
//!   and temp files are swept into a [`RecoveryReport`] (ledgered, never
//!   silent), and the newest durable window defines the resume frontier.
//! * [`compact`] — rolls fine segments up the hour/day/month hierarchy by
//!   *merging serialized sketch state* with `sketchwire`'s associative
//!   merge operators — raw transactions are never re-scanned, and the
//!   merged error bound is the sum of the inputs' bounds at every level.
//!   All filesystem mutations route through a fault-injectable
//!   [`compact::CrashFs`] so the chaos suite can kill the compactor at
//!   any seeded syscall.
//! * [`query`] — window reassembly and fold helpers behind `dnsobs
//!   query`: bloom- and time-pruned segment selection, per-window chunk
//!   reassembly, and the whole-store reference fold the chaos
//!   differential compares against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod compact;
pub mod manifest;
pub mod query;
pub mod segment;
pub mod store;

pub use bloom::KeyBloom;
pub use compact::{compact, compact_with, CompactionPolicy, CompactionReport, CrashFs, CrashPlan};
pub use manifest::{Manifest, SegmentMeta};
pub use query::{fold_states, HistoryPoint, QueryStats, WindowGroup};
pub use segment::{SegmentFooter, SEGMENT_MAGIC, SEGMENT_VERSION};
pub use store::{ExpiryReport, RecoveryReport, Store};

use std::fmt;

/// Every way the store can fail. Decoding is total: corrupt bytes map to
/// a typed error naming the segment, never a panic or a wrong answer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A segment file failed structural validation or record decoding.
    Segment {
        /// File name of the bad segment.
        segment: String,
        /// What was wrong.
        source: feed::FeedError,
    },
    /// A segment file is structurally corrupt (bad magic, truncated
    /// footer, footer CRC mismatch, impossible lengths).
    Corrupt {
        /// File name of the bad segment.
        segment: String,
        /// What was wrong.
        what: &'static str,
    },
    /// The manifest failed to parse or checksum.
    Manifest {
        /// What was wrong.
        what: String,
    },
    /// The manifest references a segment file that does not exist — the
    /// store lost data and must not silently serve partial answers.
    MissingSegment {
        /// File name of the missing segment.
        segment: String,
    },
    /// Sketch-state merge failed during compaction or query reassembly.
    Merge {
        /// Segment (or context) the states came from.
        context: String,
        /// Underlying merge error.
        source: sketchwire::StateError,
    },
    /// An injected fault killed the operation mid-flight (chaos only).
    Crashed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "io error at {path}: {source}"),
            StoreError::Segment { segment, source } => {
                write!(f, "bad segment {segment}: {source}")
            }
            StoreError::Corrupt { segment, what } => {
                write!(f, "bad segment {segment}: {what}")
            }
            StoreError::Manifest { what } => write!(f, "bad manifest: {what}"),
            StoreError::MissingSegment { segment } => {
                write!(f, "manifest references missing segment {segment}")
            }
            StoreError::Merge { context, source } => {
                write!(f, "merge failed ({context}): {source}")
            }
            StoreError::Crashed => write!(f, "injected crash"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Segment { source, .. } => Some(source),
            StoreError::Merge { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// The segment file name this error points at, if any — what `dnsobs
    /// query` prints so the operator knows which file to quarantine.
    pub fn bad_segment(&self) -> Option<&str> {
        match self {
            StoreError::Segment { segment, .. }
            | StoreError::Corrupt { segment, .. }
            | StoreError::MissingSegment { segment } => Some(segment),
            _ => None,
        }
    }

    /// Shorthand for an io error at `path`.
    pub fn io(path: &std::path::Path, source: std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            source,
        }
    }
}
