//! Segment file codec: the store's immutable on-disk unit.
//!
//! A segment holds serialized [`WindowState`] records between a fixed
//! header and a footer *index* that is readable from the file tail
//! without decoding any record:
//!
//! ```text
//! header  (8)  "DOSG" | version u8 | level u8 | reserved u16
//! records (..) N × SKW1 record            (sketchwire::write_record)
//! footer  (..) "DOSF" | payload_len u32 LE | payload | crc32 u32 LE
//! trailer (8)  footer_frame_len u32 LE | "DOSE"
//! ```
//!
//! The footer payload carries the segment's time range, window and
//! record counts, dataset names, and a [`KeyBloom`] over every entry
//! key — everything a query needs to decide whether the record body is
//! worth decoding. The trailer's length-then-magic lets a reader find
//! the footer with one seek from the end.
//!
//! Decoding is total: every malformed input — truncated file, flipped
//! byte, impossible length — maps to a typed [`StoreError`] naming the
//! segment, never a panic.

use crate::bloom::KeyBloom;
use crate::StoreError;
use feed::crc32::crc32;
use sketchwire::{RecordReader, WindowState};
use std::collections::BTreeSet;

/// Segment header magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"DOSG";
/// Footer frame magic.
pub const FOOTER_MAGIC: [u8; 4] = *b"DOSF";
/// Trailer end magic.
pub const END_MAGIC: [u8; 4] = *b"DOSE";
/// Segment format version.
pub const SEGMENT_VERSION: u8 = 1;

/// Fixed header length.
const HEADER_LEN: usize = 8;
/// Fixed trailer length (footer-frame length + end magic).
const TRAILER_LEN: usize = 8;
/// Hard cap on one footer frame; larger is corruption.
const MAX_FOOTER: usize = 16 << 20;

/// Microseconds per second — the same window-key convention the
/// aggregator uses on the wire (`window_us = round(start · 10⁶)`).
const US: f64 = 1e6;

/// A window's µs key from its start time.
pub fn window_us(start: f64) -> u64 {
    (start * US).round() as u64
}

/// The decoded footer index of one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentFooter {
    /// Compaction level (0 = raw appends, then hour/day/month).
    pub level: u8,
    /// Earliest window start in the segment, µs.
    pub start_us: u64,
    /// Latest window end (start + length) in the segment, µs.
    pub end_us: u64,
    /// Serialized record count.
    pub records: u32,
    /// Distinct window starts covered.
    pub windows: u32,
    /// Sorted distinct dataset names present.
    pub datasets: Vec<String>,
    /// Bloom over every entry key in the segment.
    pub bloom: KeyBloom,
}

/// Encode a complete segment for `states` at compaction `level`.
///
/// Returns the file image and its footer. `states` must be non-empty;
/// the footer's time range and window count are derived from the states
/// themselves, so the index can never disagree with the body.
pub fn encode_segment(level: u8, states: &[WindowState]) -> (Vec<u8>, SegmentFooter) {
    assert!(!states.is_empty(), "a segment holds at least one record");
    let mut out = Vec::new();
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.push(SEGMENT_VERSION);
    out.push(level);
    out.extend_from_slice(&[0u8, 0u8]);

    let mut windows = BTreeSet::new();
    let mut datasets = BTreeSet::new();
    let mut nkeys = 0usize;
    let (mut start_us, mut end_us) = (u64::MAX, 0u64);
    for ws in states {
        sketchwire::write_record(ws, &mut out);
        windows.insert(window_us(ws.start));
        datasets.insert(ws.topk.dataset.clone());
        nkeys += ws.topk.entries.len();
        start_us = start_us.min(window_us(ws.start));
        end_us = end_us.max(window_us(ws.start + ws.length));
    }
    let mut bloom = KeyBloom::with_keys(nkeys);
    for ws in states {
        for e in &ws.topk.entries {
            bloom.insert(e.key.as_bytes());
        }
    }
    let footer = SegmentFooter {
        level,
        start_us,
        end_us,
        records: states.len() as u32,
        windows: windows.len() as u32,
        datasets: datasets.into_iter().collect(),
        bloom,
    };
    let frame = encode_footer(&footer);
    out.extend_from_slice(&frame);
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(&END_MAGIC);
    (out, footer)
}

fn encode_footer(f: &SegmentFooter) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(f.level);
    payload.extend_from_slice(&f.start_us.to_le_bytes());
    payload.extend_from_slice(&f.end_us.to_le_bytes());
    payload.extend_from_slice(&f.records.to_le_bytes());
    payload.extend_from_slice(&f.windows.to_le_bytes());
    payload.extend_from_slice(&(f.datasets.len() as u16).to_le_bytes());
    for name in &f.datasets {
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
    }
    payload.extend_from_slice(&(f.bloom.bits().len() as u32).to_le_bytes());
    payload.extend_from_slice(f.bloom.bits());

    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&FOOTER_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame
}

/// A forward-only bounds-checked cursor; every read that would run past
/// the end yields `None` (mapped to a typed error by the caller).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn corrupt(segment: &str, what: &'static str) -> StoreError {
    StoreError::Corrupt {
        segment: segment.to_string(),
        what,
    }
}

/// Decode only the footer index of a segment image (header + tail are
/// validated; the record body is *not* decoded). Returns the footer and
/// the byte range of the record region.
pub fn read_footer(
    bytes: &[u8],
    segment: &str,
) -> Result<(SegmentFooter, std::ops::Range<usize>), StoreError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(corrupt(segment, "file shorter than header + trailer"));
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(corrupt(segment, "bad segment magic"));
    }
    if bytes[4] != SEGMENT_VERSION {
        return Err(corrupt(segment, "unsupported segment version"));
    }
    let header_level = bytes[5];
    if bytes[6] != 0 || bytes[7] != 0 {
        return Err(corrupt(segment, "reserved header bytes not zero"));
    }
    let tail = &bytes[bytes.len() - TRAILER_LEN..];
    if tail[4..] != END_MAGIC {
        return Err(corrupt(segment, "bad end magic"));
    }
    let frame_len = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")) as usize;
    if !(12..=MAX_FOOTER).contains(&frame_len) {
        return Err(corrupt(segment, "impossible footer length"));
    }
    let body_len = bytes.len() - TRAILER_LEN;
    let frame_start = body_len
        .checked_sub(frame_len)
        .filter(|&s| s >= HEADER_LEN)
        .ok_or_else(|| corrupt(segment, "footer overlaps header"))?;
    let frame = &bytes[frame_start..body_len];
    if frame[..4] != FOOTER_MAGIC {
        return Err(corrupt(segment, "bad footer magic"));
    }
    let payload_len = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes")) as usize;
    if payload_len != frame_len - 12 {
        return Err(corrupt(segment, "footer length mismatch"));
    }
    let payload = &frame[8..8 + payload_len];
    let want_crc = u32::from_le_bytes(frame[8 + payload_len..].try_into().expect("4 bytes"));
    if crc32(payload) != want_crc {
        return Err(corrupt(segment, "footer crc mismatch"));
    }

    let mut c = Cursor::new(payload);
    let level = c.u8().ok_or_else(|| corrupt(segment, "footer truncated"))?;
    if level != header_level {
        return Err(corrupt(segment, "footer level disagrees with header"));
    }
    let start_us = c
        .u64()
        .ok_or_else(|| corrupt(segment, "footer truncated"))?;
    let end_us = c
        .u64()
        .ok_or_else(|| corrupt(segment, "footer truncated"))?;
    if end_us < start_us {
        return Err(corrupt(segment, "footer time range inverted"));
    }
    let records = c
        .u32()
        .ok_or_else(|| corrupt(segment, "footer truncated"))?;
    let windows = c
        .u32()
        .ok_or_else(|| corrupt(segment, "footer truncated"))?;
    let nds = c
        .u16()
        .ok_or_else(|| corrupt(segment, "footer truncated"))?;
    let mut datasets = Vec::with_capacity(nds as usize);
    for _ in 0..nds {
        let len = c
            .u16()
            .ok_or_else(|| corrupt(segment, "footer truncated"))?;
        let raw = c
            .take(len as usize)
            .ok_or_else(|| corrupt(segment, "footer truncated"))?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| corrupt(segment, "dataset name not utf-8"))?
            .to_string();
        datasets.push(name);
    }
    let bloom_len = c
        .u32()
        .ok_or_else(|| corrupt(segment, "footer truncated"))?;
    let bits = c
        .take(bloom_len as usize)
        .ok_or_else(|| corrupt(segment, "footer truncated"))?;
    let bloom =
        KeyBloom::from_bits(bits.to_vec()).ok_or_else(|| corrupt(segment, "bad bloom length"))?;
    if !c.done() {
        return Err(corrupt(segment, "trailing bytes after footer payload"));
    }
    Ok((
        SegmentFooter {
            level,
            start_us,
            end_us,
            records,
            windows,
            datasets,
            bloom,
        },
        HEADER_LEN..frame_start,
    ))
}

/// Decode a whole segment image: footer, then every record, with the
/// footer's record count cross-checked against the body.
pub fn decode_segment(
    bytes: &[u8],
    segment: &str,
) -> Result<(SegmentFooter, Vec<WindowState>), StoreError> {
    let (footer, body) = read_footer(bytes, segment)?;
    let mut reader = RecordReader::new();
    reader.push(&bytes[body]);
    let mut states = Vec::with_capacity(footer.records as usize);
    loop {
        match reader.next_record() {
            Ok(Some(ws)) => states.push(ws),
            Ok(None) => break,
            Err(source) => {
                return Err(StoreError::Segment {
                    segment: segment.to_string(),
                    source,
                })
            }
        }
    }
    if reader.buffered() != 0 {
        return Err(corrupt(segment, "trailing bytes in record region"));
    }
    if states.len() != footer.records as usize {
        return Err(corrupt(segment, "footer record count disagrees with body"));
    }
    Ok((footer, states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchwire::{FeatureState, TopKEntry, TopKState};

    fn tiny_state(start: f64, dataset: &str, keys: &[&str]) -> WindowState {
        let entries = keys
            .iter()
            .enumerate()
            .map(|(i, k)| TopKEntry {
                key: k.to_string(),
                count: 5 + i as u64,
                error: 0,
                inserted_at: 0.0,
                features: FeatureState {
                    adds: vec![3, 1],
                    maxes: vec![2],
                    hlls: vec![],
                    source_cap: 4,
                    sources: vec![1],
                    tops: vec![],
                    hists: vec![],
                },
            })
            .collect();
        WindowState {
            upstream: 1,
            start,
            length: 600.0,
            topk: TopKState {
                dataset: dataset.to_string(),
                capacity: 8,
                observed: 20,
                min_count: 0,
                error_bound: 2,
                evictions: 0,
                kept: 10,
                dropped: 0,
                filtered: 0,
                chunk: 0,
                chunks: 1,
                entries,
                gate: None,
            },
        }
    }

    #[test]
    fn roundtrip_and_footer_index() {
        let states = vec![
            tiny_state(0.0, "esld", &["a.example", "b.example"]),
            tiny_state(600.0, "esld", &["a.example"]),
            tiny_state(600.0, "qtype", &["A", "AAAA"]),
        ];
        let (bytes, footer) = encode_segment(0, &states);
        assert_eq!(footer.records, 3);
        assert_eq!(footer.windows, 2);
        assert_eq!(footer.start_us, 0);
        assert_eq!(footer.end_us, 1_200_000_000);
        assert_eq!(footer.datasets, vec!["esld", "qtype"]);
        assert!(footer.bloom.maybe_contains(b"a.example"));

        let (tail_footer, _) = read_footer(&bytes, "t.seg").expect("footer");
        assert_eq!(tail_footer, footer);
        let (full_footer, back) = decode_segment(&bytes, "t.seg").expect("decode");
        assert_eq!(full_footer, footer);
        assert_eq!(back, states);
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let (bytes, _) = encode_segment(1, &[tiny_state(0.0, "esld", &["a"])]);
        for cut in 0..bytes.len() {
            let err = decode_segment(&bytes[..cut], "t.seg").expect_err("truncated");
            assert_eq!(err.bad_segment(), Some("t.seg"), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn flipped_byte_is_a_typed_error() {
        let (bytes, _) = encode_segment(0, &[tiny_state(0.0, "esld", &["a", "b"])]);
        // Flipping any single byte must never produce a clean decode of
        // different content, and must never panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            if let Ok((_, states)) = decode_segment(&bad, "t.seg") {
                panic!("flip at {i} decoded cleanly to {} states", states.len());
            }
        }
    }
}
