//! Merge-based compaction up the hour/day/month hierarchy.
//!
//! The compactor never re-scans raw transactions: a coarser window is
//! the `sketchwire` merge of its finer inputs' serialized sketch state
//! (`merge_chunks` to reassemble, `merge_topk`/`merge_features` to
//! fold), so per-window feature counters sum exactly and the stated
//! Space-Saving error bound of every rolled window is the *sum* of its
//! inputs' bounds — conservative at every level, never understated.
//!
//! One [`compact`] call runs the target levels in ascending order
//! (hour, then day, then month), so fresh hourly output feeds the daily
//! pass in the same call. A bucket is rolled only when it is *ripe*:
//! its end lies strictly behind the store frontier. Strictness is what
//! guarantees the newest level-0 window — the crash-recovery resume
//! point — is never folded into a coarser segment.
//!
//! Every filesystem mutation goes through a [`CrashFs`], the injection
//! surface of the kill-mid-compaction chaos axis: a seeded [`CrashPlan`]
//! kills the compactor at an exact syscall (optionally mid-write, so a
//! torn segment or manifest temp file lands on disk). The write-temp →
//! rename → manifest-swap → unlink-inputs order makes every crash point
//! recoverable: the store reopens as either the pre- or post-compaction
//! view, both of which fold to the same global state.

use crate::query::fold_states;
use crate::store::Store;
use crate::StoreError;
use sketchwire::WindowState;
use std::collections::BTreeMap;
use std::path::Path;
use telemetry::trace::TraceKind;

/// Compaction hierarchy: `spans_us[i]` is the bucket span of target
/// level `i + 1`. Level 0 is whatever the collector appended.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Bucket spans (µs) for levels 1.., ascending.
    pub spans_us: Vec<u64>,
}

impl Default for CompactionPolicy {
    /// The paper's hierarchy: hour, day, 30-day month.
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            spans_us: vec![3_600_000_000, 86_400_000_000, 30 * 86_400_000_000],
        }
    }
}

/// One rolled bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolledBucket {
    /// Target level the bucket was rolled to.
    pub level: u8,
    /// Bucket start, µs.
    pub start_us: u64,
    /// Input segments merged away.
    pub inputs: usize,
}

/// What one [`compact`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Buckets rolled, in execution order.
    pub rolled: Vec<RolledBucket>,
}

impl CompactionReport {
    /// Total input segments merged away.
    pub fn inputs(&self) -> usize {
        self.rolled.iter().map(|r| r.inputs).sum()
    }
}

/// A seeded crash point: kill the process (well, the operation) at
/// filesystem op number `crash_at_op`, writing only `partial_millis`/1000
/// of the bytes when that op is a write — so the fault set covers
/// "after segment write", "before manifest swap", and "mid-footer".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Zero-based filesystem op index to crash at.
    pub crash_at_op: u64,
    /// Thousandths of the crashing write actually flushed (0..=1000).
    pub partial_millis: u32,
}

impl CrashPlan {
    /// Expand a schedule seed into a crash point within `max_ops`
    /// filesystem operations (learned from an unfaulted reference run).
    /// The mixing constant keeps this axis' schedules decorrelated from
    /// the other chaos axes even when a sweep reuses seed values.
    pub fn from_seed(seed: u64, max_ops: u64) -> CrashPlan {
        let mut x = seed ^ 0x51_0b5e_c09a_47d5;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        CrashPlan {
            crash_at_op: next() % max_ops.max(1),
            partial_millis: (next() % 1001) as u32,
        }
    }
}

/// The compactor's filesystem: counts every mutation and, under a
/// [`CrashPlan`], dies at the planned op. The no-fault path performs
/// exactly the same syscalls, so op indices learned durably transfer to
/// faulted runs.
#[derive(Debug)]
pub struct CrashFs {
    ops: u64,
    plan: Option<CrashPlan>,
    fired: bool,
}

impl CrashFs {
    /// A fault-free filesystem.
    pub fn durable() -> CrashFs {
        CrashFs {
            ops: 0,
            plan: None,
            fired: false,
        }
    }

    /// A filesystem that crashes per `plan`.
    pub fn with_plan(plan: CrashPlan) -> CrashFs {
        CrashFs {
            ops: 0,
            plan: Some(plan),
            fired: false,
        }
    }

    /// Filesystem mutations performed (or attempted) so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// True once the planned crash fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Should the op that just claimed index `op` crash?
    fn crashes_now(&mut self) -> bool {
        let op = self.ops;
        self.ops += 1;
        if self.fired {
            return true; // a dead process performs no further io
        }
        if self.plan.is_some_and(|p| p.crash_at_op == op) {
            self.fired = true;
            return true;
        }
        false
    }

    /// Write a file in full — or, when the crash lands here, a torn
    /// prefix of it.
    pub fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        if self.crashes_now() {
            if self.plan.is_some_and(|p| p.crash_at_op + 1 == self.ops) {
                let keep = bytes.len() * self.plan.expect("checked").partial_millis as usize / 1000;
                // A torn write is still a write: flush the prefix.
                let _ = std::fs::write(path, &bytes[..keep]);
            }
            return Err(StoreError::Crashed);
        }
        std::fs::write(path, bytes).map_err(|e| StoreError::io(path, e))
    }

    /// Atomically rename `from` to `to`.
    pub fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError> {
        if self.crashes_now() {
            return Err(StoreError::Crashed);
        }
        std::fs::rename(from, to).map_err(|e| StoreError::io(to, e))
    }

    /// Unlink `path`.
    pub fn remove(&mut self, path: &Path) -> Result<(), StoreError> {
        if self.crashes_now() {
            return Err(StoreError::Crashed);
        }
        std::fs::remove_file(path).map_err(|e| StoreError::io(path, e))
    }
}

/// Roll every ripe bucket up the hierarchy (durable filesystem).
pub fn compact(
    store: &mut Store,
    policy: &CompactionPolicy,
) -> Result<CompactionReport, StoreError> {
    compact_with(store, policy, &mut CrashFs::durable())
}

/// [`compact`] with every filesystem mutation routed through `fs`.
pub fn compact_with(
    store: &mut Store,
    policy: &CompactionPolicy,
    fs: &mut CrashFs,
) -> Result<CompactionReport, StoreError> {
    let mut report = CompactionReport::default();
    for (i, &span) in policy.spans_us.iter().enumerate() {
        let target = (i + 1) as u8;
        if span == 0 {
            return Err(StoreError::Manifest {
                what: "compaction policy has a zero-length span".into(),
            });
        }
        let Some(frontier) = store.frontier_us() else {
            break; // empty store
        };
        // Buckets whose whole input set fits and whose end lies strictly
        // behind the frontier (never the newest window's bucket).
        let mut buckets: BTreeMap<u64, Vec<crate::manifest::SegmentMeta>> = BTreeMap::new();
        for seg in store.segments() {
            if seg.level >= target {
                continue;
            }
            let bucket = seg.start_us / span;
            let bucket_end = (bucket + 1).saturating_mul(span);
            if seg.end_us <= bucket_end && bucket_end < frontier {
                buckets.entry(bucket).or_default().push(seg.clone());
            }
        }
        for (bucket, inputs) in buckets {
            roll_bucket(store, fs, target, span, bucket, &inputs)?;
            report.rolled.push(RolledBucket {
                level: target,
                start_us: bucket * span,
                inputs: inputs.len(),
            });
        }
    }
    Ok(report)
}

/// Merge `inputs` into one level-`target` segment covering the bucket.
fn roll_bucket(
    store: &mut Store,
    fs: &mut CrashFs,
    target: u8,
    span: u64,
    bucket: u64,
    inputs: &[crate::manifest::SegmentMeta],
) -> Result<(), StoreError> {
    let start_us = bucket * span;
    let mut states = Vec::new();
    for meta in inputs {
        let (_, mut s) = store.read_segment(meta)?;
        states.append(&mut s);
    }
    let upstream = states.iter().map(|ws| ws.upstream).min().unwrap_or(0);
    let folded = fold_states(&states).map_err(|source| StoreError::Merge {
        context: format!("bucket {start_us} -> level {target}"),
        source,
    })?;
    let merged: Vec<WindowState> = folded
        .into_values()
        .map(|topk| WindowState {
            upstream,
            start: start_us as f64 / 1e6,
            length: span as f64 / 1e6,
            topk,
        })
        .collect();
    if merged.is_empty() {
        return Ok(()); // inputs held no records; nothing to roll
    }

    // 1. New segment becomes durable (but unreferenced).
    let meta = store.write_segment(target, &merged, fs)?;
    // 2. Manifest swap: the commit point.
    let mut next = crate::manifest::Manifest {
        generation: store.generation() + 1,
        segments: Vec::with_capacity(store.segments().len()),
    };
    let drop: std::collections::BTreeSet<&str> = inputs.iter().map(|m| m.name.as_str()).collect();
    for seg in store.segments() {
        if !drop.contains(seg.name.as_str()) {
            next.segments.push(seg.clone());
        }
    }
    next.segments.push(meta.clone());
    store.swap_manifest(next, fs)?;
    if let Some(m) = &store.metrics {
        m.compactions.inc(1);
        m.compaction_inputs.inc(inputs.len() as u64);
    }
    store.trace_event(TraceKind::Close, start_us, inputs.len() as u64);
    // 3. Inputs are no longer referenced; unlink them. A crash here
    //    leaves orphans for recovery to sweep — never data loss.
    for meta in inputs {
        let path = store.dir().join(&meta.name);
        fs.remove(&path)?;
    }
    Ok(())
}
