//! Query planning and sketch-state folding over the store.
//!
//! Queries answer from two index tiers before touching any record body:
//! the manifest's per-segment time ranges, then the footer's dataset
//! list and key bloom. Only segments that survive both prunes are
//! decoded. All folding goes through the same `sketchwire` merge
//! operators the compactor uses, so a query over mixed granularities
//! (10-min level-0 tail + hourly/daily/monthly rollups) is exact with a
//! stated bound: per-window feature counters are exact sums, and each
//! window's Space-Saving `error_bound` is the sum of whatever inputs
//! were merged into it, at any compaction level.

use crate::store::Store;
use crate::StoreError;
use sketchwire::{merge_chunks, merge_topk, StateError, TopKState, WindowState};
use std::collections::BTreeMap;

/// Query-planner accounting: what was pruned where. `dnsobs query`
/// prints this so "answered in 3 ms" is auditable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Live segments in the manifest.
    pub segments_total: usize,
    /// Skipped on the manifest time range alone.
    pub pruned_time: usize,
    /// Skipped because the footer lacks the dataset.
    pub pruned_dataset: usize,
    /// Skipped because the footer bloom excludes the key.
    pub pruned_bloom: usize,
    /// Segments whose record body was decoded.
    pub segments_scanned: usize,
    /// Records decoded across scanned segments.
    pub records_decoded: usize,
}

/// One window of one dataset, chunk-reassembled and upstream-merged.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowGroup {
    /// Window start, seconds.
    pub start: f64,
    /// Window length, seconds.
    pub length: f64,
    /// Compaction level of the segment this window came from.
    pub level: u8,
    /// The merged sketch state.
    pub state: TopKState,
}

/// One point in an object's history.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryPoint {
    /// Window start, seconds.
    pub start: f64,
    /// Window length, seconds.
    pub length: f64,
    /// Compaction level the point was answered from.
    pub level: u8,
    /// Space-Saving count (an upper bound on the true count).
    pub count: u64,
    /// Maximum overestimation of `count`.
    pub error: u64,
    /// Exact per-window hits from the feature counters.
    pub hits: u64,
    /// The window's stated Space-Saving error bound.
    pub error_bound: u64,
}

/// Reassemble chunked records and fold everything into one state per
/// dataset. This is the canonical fold: the compactor applies it per
/// bucket, queries per window, and the chaos differential applies it to
/// the *entire* store versus the original appended states — compaction
/// must not change its result.
///
/// Duplicate (window, upstream, dataset, chunk) records are a chunk
/// conflict, so an accidentally double-appended window is a typed error,
/// never a silent double count.
pub fn fold_states(states: &[WindowState]) -> Result<BTreeMap<String, TopKState>, StateError> {
    // (dataset, window_us, upstream) → chunks.
    let mut groups: BTreeMap<(String, u64, u64), Vec<&WindowState>> = BTreeMap::new();
    for ws in states {
        groups
            .entry((
                ws.topk.dataset.clone(),
                crate::segment::window_us(ws.start),
                ws.upstream,
            ))
            .or_default()
            .push(ws);
    }
    let mut folded: BTreeMap<String, TopKState> = BTreeMap::new();
    for ((dataset, _, _), group) in groups {
        let parts: Vec<TopKState> = group.iter().map(|ws| ws.topk.clone()).collect();
        let assembled = merge_chunks(&parts)?;
        let merged = match folded.remove(&dataset) {
            Some(acc) => merge_topk(&acc, &assembled)?,
            None => assembled,
        };
        folded.insert(dataset, merged);
    }
    Ok(folded)
}

/// All windows of `dataset` intersecting `[t0_us, t1_us)`, each
/// chunk-reassembled and merged across upstreams. `key` (canonical key
/// bytes) additionally prunes segments through the footer blooms.
pub fn windows_in(
    store: &Store,
    dataset: &str,
    t0_us: u64,
    t1_us: u64,
    key: Option<&[u8]>,
) -> Result<(Vec<WindowGroup>, QueryStats), StoreError> {
    let mut stats = QueryStats {
        segments_total: store.segments().len(),
        ..QueryStats::default()
    };
    // window_us → (length, level, states)
    let mut windows: BTreeMap<u64, (f64, u8, Vec<WindowState>)> = BTreeMap::new();
    for meta in store.segments() {
        if meta.end_us <= t0_us || meta.start_us >= t1_us {
            stats.pruned_time += 1;
            continue;
        }
        let footer = store.read_footer(meta)?;
        if !footer.datasets.iter().any(|d| d == dataset) {
            stats.pruned_dataset += 1;
            continue;
        }
        if let Some(key) = key {
            if !footer.bloom.maybe_contains(key) {
                stats.pruned_bloom += 1;
                continue;
            }
        }
        let (_, states) = store.read_segment(meta)?;
        stats.segments_scanned += 1;
        stats.records_decoded += states.len();
        for ws in states {
            if ws.topk.dataset != dataset {
                continue;
            }
            let w_us = crate::segment::window_us(ws.start);
            let end_us = crate::segment::window_us(ws.start + ws.length);
            if end_us <= t0_us || w_us >= t1_us {
                continue;
            }
            windows
                .entry(w_us)
                .or_insert_with(|| (ws.length, meta.level, Vec::new()))
                .2
                .push(ws);
        }
    }
    let mut out = Vec::with_capacity(windows.len());
    for (w_us, (length, level, states)) in windows {
        let mut folded = fold_states(&states).map_err(|source| StoreError::Merge {
            context: format!("window {w_us} of {dataset}"),
            source,
        })?;
        let Some(state) = folded.remove(dataset) else {
            continue;
        };
        out.push(WindowGroup {
            start: w_us as f64 / 1e6,
            length,
            level,
            state,
        });
    }
    Ok((out, stats))
}

/// History of one object: its per-window presence over `[t0_us, t1_us)`,
/// plus the summed error bound over every window the object appears in.
pub fn history(
    store: &Store,
    dataset: &str,
    key: &str,
    t0_us: u64,
    t1_us: u64,
) -> Result<(Vec<HistoryPoint>, u64, QueryStats), StoreError> {
    let (groups, stats) = windows_in(store, dataset, t0_us, t1_us, Some(key.as_bytes()))?;
    let mut points = Vec::new();
    let mut total_bound = 0u64;
    for g in groups {
        let Some(e) = g.state.entries.iter().find(|e| e.key == key) else {
            continue;
        };
        total_bound = total_bound.saturating_add(g.state.error_bound);
        points.push(HistoryPoint {
            start: g.start,
            length: g.length,
            level: g.level,
            count: e.count,
            error: e.error,
            hits: e.features.adds.first().copied().unwrap_or(0),
            error_bound: g.state.error_bound,
        });
    }
    Ok((points, total_bound, stats))
}

/// The window of `dataset` covering instant `at_us`, if any.
pub fn topk_at(
    store: &Store,
    dataset: &str,
    at_us: u64,
) -> Result<(Option<WindowGroup>, QueryStats), StoreError> {
    let (groups, stats) = windows_in(store, dataset, at_us, at_us.saturating_add(1), None)?;
    // Multiple levels never cover the same instant (compaction unlinks
    // its inputs), but prefer the finest if a torn store disagrees.
    let best = groups.into_iter().min_by_key(|g| g.level);
    Ok((best, stats))
}
