//! Shared helpers for the store integration tests: a unique temp dir
//! per test and a miniature deterministic window-state generator with
//! the same invariants real tracker exports carry (cumulative counts,
//! per-window feature deltas, single-chunk records).

use sketchwire::{FeatureState, TopKEntry, TopKState, TopValuesState, WindowState};
use std::path::PathBuf;

/// A fresh, empty temp directory unique to (test, process).
pub fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnsobs-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn features(seed: u64, hits: u64) -> FeatureState {
    FeatureState {
        adds: vec![hits, seed % 3],
        maxes: vec![seed % 5],
        hlls: vec![],
        source_cap: 8,
        sources: vec![(seed % 100) as u16],
        tops: vec![TopValuesState {
            capacity: 4,
            observed: hits,
            slots: vec![(60 * (1 + seed % 4), hits)],
        }],
        hists: vec![],
    }
}

/// Deterministic stream of consecutive 600-second windows. Counts are
/// cumulative across windows (like live Space-Saving exports); the
/// per-window delta rides in `features.adds[0]`.
pub struct MiniSynth {
    datasets: Vec<String>,
    keys: usize,
    counts: Vec<u64>,
    w: usize,
}

pub const WINDOW_SECS: f64 = 600.0;

impl MiniSynth {
    pub fn new(datasets: &[&str], keys: usize) -> MiniSynth {
        MiniSynth {
            datasets: datasets.iter().map(|d| d.to_string()).collect(),
            keys,
            counts: vec![0; keys],
            w: 0,
        }
    }

    /// Generate the next window (one state per dataset).
    pub fn next_window(&mut self) -> Vec<WindowState> {
        let w = self.w;
        self.w += 1;
        let mut window_hits = 0;
        for (k, c) in self.counts.iter_mut().enumerate() {
            let delta = 5 + ((k + w) % 7) as u64;
            *c += delta;
            window_hits += delta;
        }
        let observed: u64 = self.counts.iter().sum();
        self.datasets
            .iter()
            .map(|dataset| WindowState {
                upstream: 1,
                start: w as f64 * WINDOW_SECS,
                length: WINDOW_SECS,
                topk: TopKState {
                    dataset: dataset.clone(),
                    capacity: 16,
                    observed,
                    min_count: 0,
                    error_bound: observed / 16,
                    evictions: 0,
                    kept: window_hits,
                    dropped: 0,
                    filtered: 0,
                    chunk: 0,
                    chunks: 1,
                    entries: (0..self.keys)
                        .map(|k| TopKEntry {
                            key: format!("k{k:02}"),
                            count: self.counts[k],
                            error: 0,
                            inserted_at: 0.0,
                            features: features(
                                ((k as u64) << 8) | (w as u64 & 0xff),
                                5 + ((k + w) % 7) as u64,
                            ),
                        })
                        .collect(),
                    gate: None,
                },
            })
            .collect()
    }

    /// Generate `n` consecutive windows, flattened.
    #[allow(dead_code)] // shared across test targets; not every target calls it
    pub fn take(&mut self, n: usize) -> Vec<WindowState> {
        let mut out = Vec::new();
        for _ in 0..n {
            out.extend(self.next_window());
        }
        out
    }
}

/// Every state currently durable in the store, read segment by segment.
#[allow(dead_code)] // shared across test targets; not every target calls it
pub fn all_states(store: &store::Store) -> Vec<WindowState> {
    let mut out = Vec::new();
    for meta in store.segments().to_vec() {
        let (_, states) = store.read_segment(&meta).expect("readable segment");
        out.extend(states);
    }
    out
}
