//! Totality property tests (dnswire style): no sequence of on-disk
//! corruptions — truncated files, flipped bytes, stale or mangled
//! manifests — may ever panic, loop, or silently yield a different
//! answer. Everything maps to a typed [`store::StoreError`], and errors
//! that implicate a file name carry it, which is what `dnsobs query`
//! prints so the operator knows which segment to quarantine.

mod common;

use common::{temp_store, MiniSynth};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use store::{Store, StoreError};

/// One master store built once: 6 windows appended as 3 segments.
/// Corruption cases copy these bytes into fresh directories.
struct Master {
    manifest: Vec<u8>,
    /// (name, bytes) of each live segment.
    segments: Vec<(String, Vec<u8>)>,
}

fn master() -> &'static Master {
    static MASTER: OnceLock<Master> = OnceLock::new();
    MASTER.get_or_init(|| {
        let dir = temp_store("prop-master");
        let (mut store, _) = Store::open(&dir).expect("open master");
        let mut synth = MiniSynth::new(&["esld", "srvip"], 4);
        for _ in 0..3 {
            let batch = synth.take(2);
            store.append(&batch).expect("append master");
        }
        let manifest = std::fs::read(dir.join("MANIFEST")).expect("manifest bytes");
        let segments = store
            .segments()
            .iter()
            .map(|m| {
                let bytes = std::fs::read(dir.join(&m.name)).expect("segment bytes");
                (m.name.clone(), bytes)
            })
            .collect();
        Master { manifest, segments }
    })
}

/// Materialize the master store with segment `victim` replaced by
/// `bytes` (or dropped entirely when `bytes` is `None`).
fn materialize(tag: &str, victim: usize, bytes: Option<&[u8]>) -> PathBuf {
    let m = master();
    let dir = temp_store(tag);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("MANIFEST"), &m.manifest).expect("write manifest");
    for (i, (name, original)) in m.segments.iter().enumerate() {
        if i == victim {
            if let Some(b) = bytes {
                std::fs::write(dir.join(name), b).expect("write victim")
            }
        } else {
            std::fs::write(dir.join(name), original).expect("write segment");
        }
    }
    dir
}

/// Run the full query surface over a store; any error must name the
/// victim segment. Returns whether anything errored.
fn query_all(dir: &Path, expect_bad: &str) -> bool {
    let (store, report) = Store::open(dir).expect("open never fails on body corruption");
    assert!(report.is_clean());
    let t1 = store.frontier_us().unwrap_or(u64::MAX);
    let mut failed = false;
    let outcomes: [Result<(), StoreError>; 3] = [
        store::query::history(&store, "esld", "k01", 0, t1).map(|_| ()),
        store::query::topk_at(&store, "srvip", 15 * 60 * 1_000_000).map(|_| ()),
        store::query::windows_in(&store, "esld", 0, t1, None).map(|_| ()),
    ];
    for outcome in outcomes {
        if let Err(e) = outcome {
            failed = true;
            assert_eq!(
                e.bad_segment(),
                Some(expect_bad),
                "error must implicate the corrupt segment: {e}"
            );
        }
    }
    failed
}

proptest! {
    /// Any single flipped byte in any segment is a typed error naming
    /// that segment — the CRC frames, header checks, and footer trailer
    /// leave no unprotected byte.
    #[test]
    fn flipped_segment_byte_is_typed_and_named(
        victim in 0usize..3,
        pos_seed in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let (name, original) = &master().segments[victim];
        let pos = (pos_seed % original.len() as u64) as usize;
        let mut bytes = original.clone();
        bytes[pos] ^= mask;
        let dir = materialize(&format!("prop-flip-{victim}-{pos}-{mask}"), victim, Some(&bytes));
        let failed = query_all(&dir, name);
        prop_assert!(failed, "flip at {pos} mask {mask:#x} went undetected");
    }

    /// Any truncation of a segment (including to zero bytes) is a typed
    /// error naming that segment.
    #[test]
    fn truncated_segment_is_typed_and_named(
        victim in 0usize..3,
        cut_seed in any::<u64>(),
    ) {
        let (name, original) = &master().segments[victim];
        let cut = (cut_seed % original.len() as u64) as usize;
        let dir = materialize(&format!("prop-trunc-{victim}-{cut}"), victim, Some(&original[..cut]));
        let failed = query_all(&dir, name);
        prop_assert!(failed, "truncation to {cut} bytes went undetected");
    }

    /// A stale manifest — one that references a segment no longer on
    /// disk — refuses to open with a typed error naming the segment.
    #[test]
    fn stale_manifest_refuses_to_open(victim in 0usize..3) {
        let (name, _) = &master().segments[victim];
        let dir = materialize(&format!("prop-stale-{victim}"), victim, None);
        match Store::open(&dir) {
            Err(e) => prop_assert_eq!(e.bad_segment(), Some(name.as_str())),
            Ok(_) => prop_assert!(false, "stale manifest must not open"),
        }
    }

    /// Any single flipped byte in the manifest fails decode (CRC line,
    /// structural checks) — the store never opens on a mangled commit
    /// record.
    #[test]
    fn flipped_manifest_byte_refuses_to_open(
        pos_seed in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let m = master();
        let pos = (pos_seed % m.manifest.len() as u64) as usize;
        let mut bytes = m.manifest.clone();
        bytes[pos] ^= mask;
        // Skip the rare flip that keeps the text identical semantics
        // impossible: any flip changes bytes, and the CRC covers all of
        // them, so decode must fail.
        let dir = temp_store(&format!("prop-manifest-{pos}-{mask}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("MANIFEST"), &bytes).expect("write manifest");
        for (name, original) in &m.segments {
            std::fs::write(dir.join(name), original).expect("write segment");
        }
        match Store::open(&dir) {
            Err(StoreError::Manifest { .. }) | Err(StoreError::MissingSegment { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {}", e),
            Ok(_) => prop_assert!(false, "flip at {} mask {:#x} opened anyway", pos, mask),
        }
    }
}
