//! Store lifecycle integration tests: append/reopen durability, the
//! compaction hierarchy's fold-equality contract, window conservation,
//! and a deterministic crash sweep over every filesystem op of a
//! compaction run.

mod common;

use common::{all_states, temp_store, MiniSynth, WINDOW_SECS};
use sketchwire::WindowState;
use store::{
    compact, compact_with, fold_states, CompactionPolicy, CrashFs, CrashPlan, Store, StoreError,
};

const HOUR_US: u64 = 3_600_000_000;
const DAY_US: u64 = 86_400_000_000;

#[test]
fn open_append_reopen_roundtrip() {
    let dir = temp_store("roundtrip");
    let (mut store, report) = Store::open(&dir).expect("open fresh");
    assert!(report.is_clean());
    assert_eq!(store.frontier_us(), None);
    assert!(store.last_window().expect("empty last").is_none());

    let mut synth = MiniSynth::new(&["esld", "srvip"], 4);
    let mut appended: Vec<Vec<WindowState>> = Vec::new();
    for _ in 0..3 {
        let states = synth.next_window();
        store.append(&states).expect("append");
        appended.push(states);
    }
    assert_eq!(store.segments().len(), 3);
    let frontier = store.frontier_us();
    assert_eq!(frontier, Some(3 * 600 * 1_000_000));

    // Reopen: same manifest, same frontier, and the last window comes
    // back verbatim (the resume path feeds it to TopKTracker::restore).
    let (back, report) = Store::open(&dir).expect("reopen");
    assert!(report.is_clean());
    assert_eq!(back.segments(), store.segments());
    assert_eq!(back.frontier_us(), frontier);
    let (start, mut last) = back.last_window().expect("readable").expect("non-empty");
    assert_eq!(start, 2.0 * WINDOW_SECS);
    let mut want = appended[2].clone();
    last.sort_by(|a, b| a.topk.dataset.cmp(&b.topk.dataset));
    want.sort_by(|a, b| a.topk.dataset.cmp(&b.topk.dataset));
    assert_eq!(last, want);
}

#[test]
fn generation_advances_and_empty_append_rejected() {
    let dir = temp_store("gen");
    let (mut store, _) = Store::open(&dir).expect("open");
    let g0 = store.generation();
    let states = MiniSynth::new(&["esld"], 2).next_window();
    store.append(&states).expect("append");
    assert!(store.generation() > g0);
    assert!(store.append(&[]).is_err(), "empty append is a typed error");
}

#[test]
fn compaction_preserves_fold_and_conserves_windows() {
    let dir = temp_store("compact");
    let (mut store, _) = Store::open(&dir).expect("open");
    let mut synth = MiniSynth::new(&["esld"], 5);
    let mut raw: Vec<WindowState> = Vec::new();
    // 30 windows of 10 min = 5 h: four ripe hour buckets, one guarded.
    for _ in 0..30 {
        let states = synth.next_window();
        store.append(&states).expect("append");
        raw.extend(states);
    }
    let frontier_before = store.frontier_us();
    let policy = CompactionPolicy::default();
    let report = compact(&mut store, &policy).expect("compact");
    assert!(!report.rolled.is_empty(), "hour buckets must roll");
    assert!(report.inputs() > report.rolled.len());

    // The newest window is protected: still level 0 and returned
    // verbatim by last_window().
    let newest = store
        .segments()
        .iter()
        .max_by_key(|m| m.end_us)
        .expect("non-empty store");
    assert_eq!(newest.level, 0, "frontier window must never compact");
    assert_eq!(store.frontier_us(), frontier_before);

    // Window conservation: every original 10-min window start is inside
    // exactly one live segment's range, and total records shrink while
    // the fold stays byte-equal.
    let after = all_states(&store);
    let folded_after = fold_states(&after).expect("fold store");
    let folded_raw = fold_states(&raw).expect("fold raw");
    assert_eq!(
        folded_after, folded_raw,
        "compaction must not change the fold"
    );
    assert!(after.len() < raw.len(), "rollups must consolidate records");

    // Compaction is idempotent once everything ripe has rolled.
    let again = compact(&mut store, &policy).expect("recompact");
    assert!(again.rolled.is_empty(), "second pass has nothing to do");
}

#[test]
fn hierarchical_rollup_is_byte_identical_to_oneshot() {
    // Path A: 10-min → hour → day. Path B: 10-min → day directly.
    // The merged day-level records must be byte-identical — the
    // compaction hierarchy is just an association order of the same
    // merge algebra.
    let days = 2;
    let windows = days * 144;
    let dir_a = temp_store("assoc-a");
    let dir_b = temp_store("assoc-b");
    let (mut a, _) = Store::open(&dir_a).expect("open a");
    let (mut b, _) = Store::open(&dir_b).expect("open b");
    let mut synth = MiniSynth::new(&["esld", "qtype"], 3);
    for _ in 0..windows {
        let states = synth.next_window();
        a.append(&states).expect("append a");
        b.append(&states).expect("append b");
    }
    compact(&mut a, &CompactionPolicy::default()).expect("compact a");
    compact(
        &mut b,
        &CompactionPolicy {
            spans_us: vec![DAY_US],
        },
    )
    .expect("compact b");

    let day_states = |store: &Store, span: u64| -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for meta in store.segments() {
            if meta.end_us - meta.start_us == span {
                let (_, states) = store.read_segment(meta).expect("readable");
                for ws in states {
                    let mut buf = Vec::new();
                    sketchwire::write_record(&ws, &mut buf);
                    out.push(buf);
                }
            }
        }
        out.sort();
        out
    };
    let a_days = day_states(&a, DAY_US);
    let b_days = day_states(&b, DAY_US);
    assert_eq!(
        a_days.len(),
        (days - 1) * 2,
        "one guarded day, two datasets"
    );
    assert_eq!(a_days, b_days, "rollup association order leaked into bytes");
    // And both agree with the pure in-memory fold.
    assert_eq!(
        fold_states(&all_states(&a)).expect("fold a"),
        fold_states(&all_states(&b)).expect("fold b"),
    );
}

#[test]
fn crash_at_every_op_recovers_without_losing_windows() {
    // Reference: an uninterrupted run. Count its filesystem ops, then
    // re-run the same compaction crashing at each op in turn; recovery
    // must always restore a store whose fold equals the reference and
    // whose frontier survives.
    let build = |tag: &str| -> (Store, Vec<WindowState>) {
        let dir = temp_store(tag);
        let (mut store, _) = Store::open(&dir).expect("open");
        let mut synth = MiniSynth::new(&["esld"], 4);
        let mut raw = Vec::new();
        for _ in 0..13 {
            let states = synth.next_window();
            store.append(&states).expect("append");
            raw.extend(states);
        }
        (store, raw)
    };
    let policy = CompactionPolicy {
        spans_us: vec![HOUR_US],
    };
    let (mut reference, raw) = build("crash-ref");
    let mut durable = CrashFs::durable();
    compact_with(&mut reference, &policy, &mut durable).expect("reference compaction");
    let total_ops = durable.ops();
    assert!(total_ops >= 6, "two ripe hour buckets → several ops");
    let reference_fold = fold_states(&raw).expect("reference fold");
    let frontier = reference.frontier_us();

    for op in 0..total_ops {
        let (mut victim, _) = build(&format!("crash-{op}"));
        let mut fs = CrashFs::with_plan(CrashPlan {
            crash_at_op: op,
            partial_millis: 500,
        });
        let err = compact_with(&mut victim, &policy, &mut fs)
            .expect_err("every op index inside the run must crash");
        assert!(matches!(err, StoreError::Crashed));
        assert!(fs.fired());

        let dir = victim.dir().to_path_buf();
        drop(victim);
        let (recovered, report) = Store::open(&dir).expect("recovery always opens");
        // Leftovers are ledgered, never silently deleted: at most one
        // in-flight tmp plus one bucket's worth of replaced inputs
        // (crash mid-unlink leaves the rest as orphans).
        assert!(report.removed_tmp.len() <= 1, "crash op {op}: {report:?}");
        assert!(
            report.removed_orphans.len() <= 6,
            "crash op {op}: {report:?}"
        );
        assert_eq!(
            recovered.frontier_us(),
            frontier,
            "crash op {op} moved the frontier"
        );
        let fold = fold_states(&all_states(&recovered)).expect("recovered fold");
        assert_eq!(
            fold, reference_fold,
            "crash op {op} lost or double-counted a window"
        );
        // And the recovered store finishes the job cleanly.
        let (mut recovered, _) = Store::open(&dir).expect("reopen");
        compact(&mut recovered, &policy).expect("resume compaction");
        let fold = fold_states(&all_states(&recovered)).expect("resumed fold");
        assert_eq!(fold, reference_fold);
    }
}

#[test]
fn query_history_topk_and_stats() {
    let dir = temp_store("query");
    let (mut store, _) = Store::open(&dir).expect("open");
    let mut synth = MiniSynth::new(&["esld", "srvip"], 4);
    let mut raw = Vec::new();
    for _ in 0..18 {
        let states = synth.next_window();
        store.append(&states).expect("append");
        raw.extend(states);
    }
    compact(&mut store, &CompactionPolicy::default()).expect("compact");

    // history over the full range: every window contains the key.
    let t1 = store.frontier_us().expect("frontier");
    let (points, total_bound, stats) =
        store::query::history(&store, "esld", "k01", 0, t1).expect("history");
    // 18 ten-minute windows compact into 2 hourly rollups + 6 level-0
    // windows — history reflects the stored granularity.
    assert_eq!(points.len(), 8, "2 hourly points + 6 ten-minute points");
    assert_eq!(points.iter().filter(|p| p.level >= 1).count(), 2);
    assert_eq!(stats.segments_total, store.segments().len());
    assert!(stats.segments_scanned <= stats.segments_total);
    for pair in points.windows(2) {
        assert!(pair[1].start > pair[0].start);
    }
    // Per-window hits are exact deltas, so they are conserved across
    // compaction: the sum over all points equals the raw per-window sum.
    let raw_hits: u64 = (0..18).map(|w| 5 + ((1 + w) % 7) as u64).sum();
    assert_eq!(points.iter().map(|p| p.hits).sum::<u64>(), raw_hits);
    assert_eq!(
        total_bound,
        points.iter().map(|p| p.error_bound).sum::<u64>()
    );

    // Dataset pruning: a dataset the store never saw scans nothing.
    let (points, _, stats) =
        store::query::history(&store, "qname", "k01", 0, t1).expect("absent dataset");
    assert!(points.is_empty());
    assert_eq!(stats.segments_scanned, 0);
    assert_eq!(
        stats.pruned_dataset + stats.pruned_time,
        stats.segments_total
    );

    // Bloom pruning: an absent key is pruned without decoding anything
    // (FP rate of the per-segment blooms is ~1% — 0 scans expected here).
    let (points, _, stats) =
        store::query::history(&store, "esld", "definitely-absent-key", 0, t1).expect("absent key");
    assert!(points.is_empty());
    assert!(
        stats.pruned_bloom + stats.pruned_time + stats.pruned_dataset >= stats.segments_total - 1,
        "bloom should prune nearly everything: {stats:?}"
    );

    // topk_at: a mid-range instant answers from the hourly rollup.
    let (group, _) = store::query::topk_at(&store, "esld", 45 * 60 * 1_000_000).expect("topk");
    let group = group.expect("instant covered");
    assert!(group.level >= 1, "instant inside a rolled hour");
    assert_eq!(group.state.entries.len(), 4);

    // The whole-store fold still matches the raw fold after queries.
    assert_eq!(
        fold_states(&all_states(&store)).expect("fold"),
        fold_states(&raw).expect("raw fold"),
    );
}

#[test]
fn expire_drops_whole_segments_behind_the_horizon() {
    let dir = temp_store("expire");
    let (mut store, _) = Store::open(&dir).expect("open");
    let mut synth = MiniSynth::new(&["esld"], 4);
    for _ in 0..8 {
        let states = synth.next_window();
        store.append(&states).expect("append");
    }
    let frontier = store.frontier_us().expect("nonempty");
    let gen_before = store.generation();

    // A horizon before everything is a no-op — and must not burn a
    // manifest generation.
    let report = store.expire_before(0).expect("noop expiry");
    assert!(report.expired.is_empty());
    assert_eq!(store.generation(), gen_before);

    // Retain the last three windows (end_us >= horizon is live, strict
    // `<` expires): segments wholly before the horizon go; the frontier
    // (and the resume window) survive.
    let horizon = frontier - 2 * (WINDOW_SECS as u64) * 1_000_000;
    let report = store.expire_before(horizon).expect("expiry");
    assert_eq!(report.horizon_us, horizon);
    assert_eq!(report.expired.len(), 5, "five single-window segments");
    assert!(report.windows() == 5 && report.records() > 0);
    assert!(store.segments().iter().all(|s| s.end_us >= horizon));
    assert_eq!(store.frontier_us(), Some(frontier));

    // Expired files are really gone from disk, and a reopen is clean:
    // nothing to sweep, nothing missing.
    for meta in &report.expired {
        assert!(!dir.join(&meta.name).exists(), "{} survived", meta.name);
    }
    drop(store);
    let (reopened, recovery) = Store::open(&dir).expect("reopen");
    assert!(recovery.is_clean());
    assert_eq!(reopened.segments().len(), 3);
    assert_eq!(reopened.frontier_us(), Some(frontier));
}

#[test]
fn expire_crash_at_every_op_never_loses_live_windows() {
    // Build a reference store, expire it cleanly, then re-run the same
    // expiry crashing at every filesystem op. After recovery the live
    // fold must equal the reference's: the manifest swap is the commit
    // point, and a crash mid-unlink only leaves ledgered orphans.
    let build = |tag: &str| {
        let dir = temp_store(tag);
        let (mut store, _) = Store::open(&dir).expect("open");
        let mut synth = MiniSynth::new(&["esld", "srvip"], 3);
        for _ in 0..6 {
            let states = synth.next_window();
            store.append(&states).expect("append");
        }
        store
    };
    let mut reference = build("expire-crash-ref");
    let frontier = reference.frontier_us().expect("nonempty");
    let horizon = frontier - 2 * (WINDOW_SECS as u64) * 1_000_000;
    let mut durable = CrashFs::durable();
    reference
        .expire_before_with(horizon, &mut durable)
        .expect("reference expiry");
    let total_ops = durable.ops();
    assert!(total_ops >= 3, "manifest swap plus unlinks");
    let reference_fold = fold_states(&all_states(&reference)).expect("reference fold");

    for op in 0..total_ops {
        let mut victim = build(&format!("expire-crash-{op}"));
        let mut fs = CrashFs::with_plan(CrashPlan {
            crash_at_op: op,
            partial_millis: 500,
        });
        let err = victim
            .expire_before_with(horizon, &mut fs)
            .expect_err("every op index inside the run must crash");
        assert!(matches!(err, StoreError::Crashed));
        let dir = victim.dir().to_path_buf();
        drop(victim);
        let (recovered, report) = Store::open(&dir).expect("recovery always opens");
        assert_eq!(recovered.frontier_us(), Some(frontier));
        if op < 2 {
            // Crashed before the manifest commit: nothing expired yet.
            // A partial MANIFEST.tmp may be swept (ledgered), but no
            // segment is orphaned and every window is still live.
            assert!(
                report.removed_orphans.is_empty(),
                "crash op {op}: {report:?}"
            );
            assert_eq!(recovered.segments().len(), 6, "crash op {op}");
        }
        // Re-running the expiry converges to the reference state.
        let (mut recovered, _) = Store::open(&dir).expect("reopen");
        recovered.expire_before(horizon).expect("resume expiry");
        let fold = fold_states(&all_states(&recovered)).expect("recovered fold");
        assert_eq!(fold, reference_fold, "crash op {op} diverged");
    }
}
