//! Canonical window states and the snapshot⊕delta law.
//!
//! The broker publishes each dataset's sealed window either whole (a
//! *snapshot*) or as the difference against the previously published
//! window (a *delta*: full replacement entries for changed/new keys plus
//! the keys that left the Top-k). The one law everything rests on — and
//! the crate's proptests pin — is
//!
//! ```text
//! apply_delta(prev, diff_states(prev_us, prev, next_us, next)) == next
//! ```
//!
//! for any two *canonical* states of the same dataset. Canonical means
//! key-ascending entries, whole (`chunk == 0`, `chunks == 1`) and
//! gate-free: subscribers consume an aggregate view of the window, never
//! resume state, so the admission gate is stripped before publication.

use std::collections::BTreeMap;

use feed::codec::write_varint;
use feed::{ByteReader, FeedError};
use sketchwire::{FeatureState, TopKEntry, TopKState};

/// Longest accepted dataset name (mirrors the state codec).
const MAX_DATASET_BYTES: usize = 256;
/// Longest accepted removed key (mirrors the state codec's key cap).
const MAX_KEY_BYTES: usize = 4096;

/// A window's integer identity on the wire: its start in microseconds of
/// virtual time. Starts are window-aligned multiples of the window length,
/// so the rounding is exact for any realistic window geometry.
pub fn window_id_us(start_secs: f64) -> u64 {
    (start_secs * 1e6).round() as u64
}

/// Put a reassembled tracker state into the canonical published form:
/// key-ascending entries, whole, and without the admission gate (the
/// subscription tier serves aggregates, not resumable tracker state).
pub fn canonicalize(mut state: TopKState) -> TopKState {
    state.entries.sort_by(|a, b| a.key.cmp(&b.key));
    state.chunk = 0;
    state.chunks = 1;
    state.gate = None;
    state
}

/// The canonical empty feature accumulator used by feature-stripped
/// (`topk` topic) frames. `source_cap` of 1 keeps the state valid under
/// the codec's `source_cap > 0` invariant.
fn empty_features() -> FeatureState {
    FeatureState {
        adds: Vec::new(),
        maxes: Vec::new(),
        hlls: Vec::new(),
        source_cap: 1,
        sources: Vec::new(),
        tops: Vec::new(),
        hists: Vec::new(),
    }
}

/// The feature-stripped view of a canonical state: same header and
/// Space-Saving counter pairs, every entry's feature accumulator replaced
/// by the canonical empty one. This is what `topk`-topic subscribers
/// receive — rank and bound data at a fraction of the bytes.
pub fn strip_features(state: &TopKState) -> TopKState {
    TopKState {
        entries: state
            .entries
            .iter()
            .map(|e| TopKEntry {
                key: e.key.clone(),
                count: e.count,
                error: e.error,
                inserted_at: e.inserted_at,
                features: empty_features(),
            })
            .collect(),
        ..state.clone()
    }
}

/// One dataset's window-to-window difference: the full header of the new
/// window, replacement entries for keys that changed or appeared, and the
/// keys that left. Applying it to the basis window (see [`apply_delta`])
/// reproduces the new window exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDelta {
    /// Dataset name.
    pub dataset: String,
    /// Identity of the basis window this delta applies to.
    pub prev_window_us: u64,
    /// Identity of the window this delta produces.
    pub window_us: u64,
    /// New window's start, seconds of virtual time.
    pub start: f64,
    /// New window's length, seconds.
    pub length: f64,
    /// New window's tracker capacity.
    pub capacity: u64,
    /// New window's total observations.
    pub observed: u64,
    /// New window's `min_count`.
    pub min_count: u64,
    /// New window's stated error bound.
    pub error_bound: u64,
    /// New window's eviction total.
    pub evictions: u64,
    /// New window's kept-transaction count.
    pub kept: u64,
    /// New window's dropped-transaction count.
    pub dropped: u64,
    /// New window's gate-filtered count.
    pub filtered: u64,
    /// Full replacement entries for changed or new keys, key-ascending.
    pub changed: Vec<TopKEntry>,
    /// Keys present in the basis but absent from the new window,
    /// key-ascending and disjoint from `changed`.
    pub removed: Vec<String>,
}

impl WindowDelta {
    /// Encode into `out` (the pub/sub codec frames this as a payload body).
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.dataset.len() as u64, out);
        out.extend_from_slice(self.dataset.as_bytes());
        write_varint(self.prev_window_us, out);
        write_varint(self.window_us, out);
        out.extend_from_slice(&self.start.to_bits().to_le_bytes());
        out.extend_from_slice(&self.length.to_bits().to_le_bytes());
        write_varint(self.capacity, out);
        write_varint(self.observed, out);
        write_varint(self.min_count, out);
        write_varint(self.error_bound, out);
        write_varint(self.evictions, out);
        write_varint(self.kept, out);
        write_varint(self.dropped, out);
        write_varint(self.filtered, out);
        write_varint(self.changed.len() as u64, out);
        for e in &self.changed {
            e.encode(out);
        }
        write_varint(self.removed.len() as u64, out);
        for k in &self.removed {
            write_varint(k.len() as u64, out);
            out.extend_from_slice(k.as_bytes());
        }
    }

    /// Decode and validate one delta.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<WindowDelta, FeedError> {
        let dataset = read_string(r, MAX_DATASET_BYTES, "delta dataset")?;
        let prev_window_us = r.varint()?;
        let window_us = r.varint()?;
        if prev_window_us >= window_us {
            return Err(FeedError::Invalid("delta window order"));
        }
        let start = r.f64("delta start")?;
        if !(start.is_finite() && start >= 0.0) {
            return Err(FeedError::Invalid("delta start out of range"));
        }
        let length = r.f64("delta length")?;
        if !(length.is_finite() && length > 0.0) {
            return Err(FeedError::Invalid("delta length out of range"));
        }
        let capacity = r.varint()?;
        if capacity == 0 {
            return Err(FeedError::Invalid("delta capacity zero"));
        }
        let observed = r.varint()?;
        let min_count = r.varint()?;
        let error_bound = r.varint()?;
        if min_count > error_bound {
            return Err(FeedError::Invalid("delta min_count exceeds error bound"));
        }
        let evictions = r.varint()?;
        let kept = r.varint()?;
        let dropped = r.varint()?;
        let filtered = r.varint()?;
        let n_changed = r.count(16, "delta changed entries")?;
        let mut changed = Vec::with_capacity(n_changed);
        for _ in 0..n_changed {
            let e = TopKEntry::decode(r)?;
            if e.count > observed {
                return Err(FeedError::Invalid("delta entry count exceeds observed"));
            }
            changed.push(e);
        }
        if changed.windows(2).any(|w| w[0].key >= w[1].key) {
            return Err(FeedError::Invalid("delta changed keys not ascending"));
        }
        let n_removed = r.count(1, "delta removed keys")?;
        let mut removed = Vec::with_capacity(n_removed);
        for _ in 0..n_removed {
            removed.push(read_string(r, MAX_KEY_BYTES, "delta removed key")?);
        }
        if removed.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FeedError::Invalid("delta removed keys not ascending"));
        }
        // Both lists are sorted; a merge walk finds any shared key.
        let (mut i, mut j) = (0, 0);
        while i < changed.len() && j < removed.len() {
            match changed[i].key.as_str().cmp(removed[j].as_str()) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    return Err(FeedError::Invalid("delta changed/removed overlap"))
                }
            }
        }
        Ok(WindowDelta {
            dataset,
            prev_window_us,
            window_us,
            start,
            length,
            capacity,
            observed,
            min_count,
            error_bound,
            evictions,
            kept,
            dropped,
            filtered,
            changed,
            removed,
        })
    }
}

fn read_string(
    r: &mut ByteReader<'_>,
    max: usize,
    what: &'static str,
) -> Result<String, FeedError> {
    let len = r.count(1, what)?;
    if len > max {
        return Err(FeedError::Invalid(what));
    }
    let bytes = r.bytes(len, what)?;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => Err(FeedError::Invalid(what)),
    }
}

/// Diff two canonical states of the same dataset into the delta that
/// turns `prev` into `next`. Both inputs must be canonical (see
/// [`canonicalize`]); the diff compares whole entries, so a key whose
/// counter pair *or* features changed is re-sent in full — features reset
/// each window, which keeps idle keys out of steady-state deltas.
pub fn diff_states(
    prev_window_us: u64,
    prev: &TopKState,
    window_us: u64,
    start: f64,
    length: f64,
    next: &TopKState,
) -> WindowDelta {
    debug_assert_eq!(prev.dataset, next.dataset, "diff across datasets");
    let mut changed = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.entries.len() || j < next.entries.len() {
        let ord = match (prev.entries.get(i), next.entries.get(j)) {
            (Some(p), Some(n)) => p.key.cmp(&n.key),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => unreachable!("loop bound"),
        };
        match ord {
            std::cmp::Ordering::Less => {
                removed.push(prev.entries[i].key.clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                changed.push(next.entries[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if prev.entries[i] != next.entries[j] {
                    changed.push(next.entries[j].clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    WindowDelta {
        dataset: next.dataset.clone(),
        prev_window_us,
        window_us,
        start,
        length,
        capacity: next.capacity,
        observed: next.observed,
        min_count: next.min_count,
        error_bound: next.error_bound,
        evictions: next.evictions,
        kept: next.kept,
        dropped: next.dropped,
        filtered: next.filtered,
        changed,
        removed,
    }
}

/// Apply a delta to its basis window, reproducing the next window's
/// canonical state exactly. Strict about desync: a removed key the basis
/// does not hold, or a dataset mismatch, is an error — the subscriber
/// treats it as a protocol violation rather than guessing.
pub fn apply_delta(prev: &TopKState, d: &WindowDelta) -> Result<TopKState, &'static str> {
    if prev.dataset != d.dataset {
        return Err("delta dataset mismatch");
    }
    let mut entries: BTreeMap<&str, &TopKEntry> =
        prev.entries.iter().map(|e| (e.key.as_str(), e)).collect();
    for k in &d.removed {
        if entries.remove(k.as_str()).is_none() {
            return Err("delta removes a key the basis does not hold");
        }
    }
    for e in &d.changed {
        entries.insert(e.key.as_str(), e);
    }
    Ok(TopKState {
        dataset: d.dataset.clone(),
        capacity: d.capacity,
        observed: d.observed,
        min_count: d.min_count,
        error_bound: d.error_bound,
        evictions: d.evictions,
        kept: d.kept,
        dropped: d.dropped,
        filtered: d.filtered,
        chunk: 0,
        chunks: 1,
        entries: entries.into_values().cloned().collect(),
        gate: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(hits: u64) -> FeatureState {
        FeatureState {
            adds: vec![hits],
            maxes: Vec::new(),
            hlls: Vec::new(),
            source_cap: 4,
            sources: vec![1],
            tops: Vec::new(),
            hists: Vec::new(),
        }
    }

    fn entry(key: &str, count: u64, hits: u64) -> TopKEntry {
        TopKEntry {
            key: key.to_string(),
            count,
            error: 0,
            inserted_at: 0.0,
            features: features(hits),
        }
    }

    fn state(entries: Vec<TopKEntry>, observed: u64) -> TopKState {
        canonicalize(TopKState {
            dataset: "esld".to_string(),
            capacity: 8,
            observed,
            min_count: 0,
            error_bound: observed / 8,
            evictions: 0,
            kept: observed,
            dropped: 0,
            filtered: 0,
            chunk: 0,
            chunks: 1,
            entries,
            gate: None,
        })
    }

    #[test]
    fn diff_apply_roundtrips() {
        let prev = state(
            vec![entry("a", 5, 5), entry("b", 3, 3), entry("c", 2, 2)],
            10,
        );
        // b changed count, c unchanged bytes (stays out of the delta),
        // d is new, a left.
        let next = state(
            vec![entry("b", 7, 4), entry("c", 2, 2), entry("d", 4, 4)],
            17,
        );
        let d = diff_states(600_000_000, &prev, 1_200_000_000, 1200.0, 600.0, &next);
        assert_eq!(d.removed, vec!["a".to_string()]);
        assert_eq!(
            d.changed.iter().map(|e| e.key.as_str()).collect::<Vec<_>>(),
            vec!["b", "d"],
            "unchanged entries stay out of the delta"
        );
        assert_eq!(apply_delta(&prev, &d).unwrap(), next);
    }

    #[test]
    fn unchanged_window_yields_empty_delta() {
        let prev = state(vec![entry("a", 5, 5)], 5);
        let d = diff_states(0, &prev, 600_000_000, 600.0, 600.0, &prev);
        assert!(d.changed.is_empty() && d.removed.is_empty());
        assert_eq!(apply_delta(&prev, &d).unwrap(), prev);
    }

    #[test]
    fn apply_rejects_desync() {
        let prev = state(vec![entry("a", 5, 5)], 5);
        let next = state(vec![entry("b", 1, 1)], 6);
        let mut d = diff_states(0, &prev, 600_000_000, 600.0, 600.0, &next);
        d.removed = vec!["zz".to_string()];
        assert!(apply_delta(&prev, &d).is_err());
    }

    #[test]
    fn delta_codec_roundtrips_and_validates() {
        let prev = state(vec![entry("a", 5, 5), entry("b", 3, 3)], 8);
        let next = state(vec![entry("b", 9, 6)], 14);
        let d = diff_states(0, &prev, 600_000_000, 600.0, 600.0, &next);
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        let back = WindowDelta::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, d);

        // Overlapping changed/removed keys must be rejected.
        let mut bad = d.clone();
        bad.removed = vec!["b".to_string()];
        let mut buf = Vec::new();
        bad.encode(&mut buf);
        assert!(matches!(
            WindowDelta::decode(&mut ByteReader::new(&buf)),
            Err(FeedError::Invalid("delta changed/removed overlap"))
        ));
    }

    #[test]
    fn strip_features_keeps_counters() {
        let s = state(vec![entry("a", 5, 5)], 5);
        let t = strip_features(&s);
        assert_eq!(t.entries[0].count, 5);
        assert!(t.entries[0].features.adds.is_empty());
        assert_eq!(t.observed, s.observed);
    }

    #[test]
    fn canonicalize_sorts_and_strips_gate() {
        let mut s = state(vec![entry("b", 2, 2), entry("a", 3, 3)], 5);
        s.chunk = 0;
        s.chunks = 1;
        let c = canonicalize(s);
        assert_eq!(c.entries[0].key, "a");
        assert!(c.gate.is_none());
    }

    #[test]
    fn window_ids_are_exact_for_aligned_starts() {
        assert_eq!(window_id_us(0.0), 0);
        assert_eq!(window_id_us(600.0), 600_000_000);
        assert_eq!(window_id_us(86_400.0 * 365.0), 31_536_000_000_000);
    }
}
