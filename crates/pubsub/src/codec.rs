//! The subscription wire format: versioned, CRC-framed `DOP1` frames.
//!
//! Same discipline as the sensor→collector feed codec: every frame is a
//! `u32`-length-prefixed payload of `type byte + body + crc32`, decoded
//! through the shared [`dnswire::framing`] reassembler so partial reads,
//! oversized prefixes and CRC damage all surface as typed errors with the
//! stream left aligned on the next frame. Snapshots reuse the federation
//! tier's [`WindowState`] item encoding verbatim; deltas carry the
//! [`WindowDelta`] body.
//!
//! Handshake: the client speaks first — `Hello` (magic + versions) then
//! `Subscribe` (topic list); the broker answers with its own `Hello` and
//! starts pushing. `Evict` and `Bye` are terminal notices from the broker.

use std::fmt;

use feed::codec::write_varint;
use feed::crc32::crc32;
use feed::{ByteReader, FeedError, FeedItem};
use sketchwire::WindowState;

use crate::delta::WindowDelta;

/// Wire magic carried in `Hello`: **D**NS **O**bservatory **P**ub/sub v1.
pub const MAGIC: [u8; 4] = *b"DOP1";

/// Codec version carried in `Hello`; bumped on layout changes.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on one frame. Snapshots carry a whole per-dataset window
/// (the broker reassembles collector chunks before publishing), so the
/// cap is generous; anything larger is corruption, not data.
pub const MAX_FRAME: usize = 64 << 20;

const TYPE_HELLO: u8 = 1;
const TYPE_SUBSCRIBE: u8 = 2;
const TYPE_SNAPSHOT: u8 = 3;
const TYPE_DELTA: u8 = 4;
const TYPE_META: u8 = 5;
const TYPE_EVICT: u8 = 6;
const TYPE_BYE: u8 = 7;

/// Most topics one `Subscribe` may carry.
const MAX_TOPICS: usize = 64;
/// Longest accepted dataset name in a topic filter.
const MAX_DATASET_BYTES: usize = 256;
/// Largest accepted meta (TSV) body.
const MAX_META_BYTES: usize = 1 << 20;

/// One subscription filter. A client's topic list is a union: it receives
/// every frame any of its topics selects. An empty list subscribes to
/// everything at full fidelity (`features` + `meta`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topic {
    /// Window frames with features stripped — ranks and bounds only.
    Topk,
    /// Window frames with full per-key feature state (implies `Topk`'s
    /// information; when both are named, `features` wins).
    Features,
    /// Pipeline meta TSV lines (gap/health summaries).
    Meta,
    /// Restrict window frames to one dataset; repeatable. No dataset
    /// topics means all datasets.
    Dataset(String),
}

impl Topic {
    /// Parse a CLI topic spec: `topk`, `features`, `meta`, or
    /// `dataset=NAME`.
    pub fn parse(s: &str) -> Option<Topic> {
        match s {
            "topk" => Some(Topic::Topk),
            "features" => Some(Topic::Features),
            "meta" => Some(Topic::Meta),
            _ => s
                .strip_prefix("dataset=")
                .filter(|n| !n.is_empty() && n.len() <= MAX_DATASET_BYTES)
                .map(|n| Topic::Dataset(n.to_string())),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Topic::Topk => out.push(1),
            Topic::Features => out.push(2),
            Topic::Meta => out.push(3),
            Topic::Dataset(name) => {
                out.push(4);
                write_varint(name.len() as u64, out);
                out.extend_from_slice(name.as_bytes());
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Topic, FeedError> {
        match r.u8("topic kind")? {
            1 => Ok(Topic::Topk),
            2 => Ok(Topic::Features),
            3 => Ok(Topic::Meta),
            4 => {
                let len = r.count(1, "topic dataset")?;
                if len == 0 || len > MAX_DATASET_BYTES {
                    return Err(FeedError::Invalid("topic dataset length"));
                }
                let bytes = r.bytes(len, "topic dataset")?;
                match std::str::from_utf8(bytes) {
                    Ok(s) => Ok(Topic::Dataset(s.to_string())),
                    Err(_) => Err(FeedError::Invalid("topic dataset utf8")),
                }
            }
            _ => Err(FeedError::Invalid("topic kind")),
        }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topic::Topk => write!(f, "topk"),
            Topic::Features => write!(f, "features"),
            Topic::Meta => write!(f, "meta"),
            Topic::Dataset(name) => write!(f, "dataset={name}"),
        }
    }
}

/// Why the broker terminated a subscription (carried in `Evict` frames
/// and the broker's departure ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The client's egress stayed full through repeated snapshot-recovery
    /// attempts — it cannot keep up, and holding state for it would bound
    /// the seal path.
    TooSlow,
    /// The connection dropped (write/read error or EOF).
    Gone,
    /// The client violated the protocol (bad handshake or frame).
    Protocol,
    /// The broker is shutting down; the departure is not the client's
    /// fault.
    Shutdown,
}

impl EvictReason {
    fn code(self) -> u8 {
        match self {
            EvictReason::TooSlow => 1,
            EvictReason::Gone => 2,
            EvictReason::Protocol => 3,
            EvictReason::Shutdown => 4,
        }
    }

    fn from_code(code: u8) -> Result<EvictReason, FeedError> {
        match code {
            1 => Ok(EvictReason::TooSlow),
            2 => Ok(EvictReason::Gone),
            3 => Ok(EvictReason::Protocol),
            4 => Ok(EvictReason::Shutdown),
            _ => Err(FeedError::Invalid("evict reason")),
        }
    }

    /// Stable lowercase name used in ledgers and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            EvictReason::TooSlow => "too-slow",
            EvictReason::Gone => "gone",
            EvictReason::Protocol => "protocol",
            EvictReason::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for EvictReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One pub/sub frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Version handshake; first frame in each direction. Decode enforces
    /// magic and version equality, so a parsed `Hello` is a compatible
    /// one.
    Hello {
        /// Codec version (always [`PROTOCOL_VERSION`] after decode).
        protocol: u8,
        /// [`WindowState`] item version the peer speaks.
        item_version: u8,
    },
    /// Client's topic filter; second client frame.
    Subscribe {
        /// Union of subscription filters; empty = everything.
        topics: Vec<Topic>,
    },
    /// One dataset's whole published window (`upstream` is always 0: the
    /// broker publishes the merged view, not any one collector's).
    Snapshot(Box<WindowState>),
    /// One dataset's window-to-window difference.
    Delta(Box<WindowDelta>),
    /// Pipeline meta TSV bytes for one window.
    Meta {
        /// Window start, microseconds of virtual time.
        start_us: u64,
        /// Raw meta TSV bytes.
        bytes: Vec<u8>,
    },
    /// Terminal broker notice: the subscription was ended.
    Evict {
        /// Why.
        reason: EvictReason,
        /// Frames the broker had accepted for this client but not yet
        /// delivered at eviction time.
        undelivered: u64,
    },
    /// Clean end of stream (either direction).
    Bye,
}

/// Encode one frame, length-prefixed and CRC-trailed, appending to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    match frame {
        Frame::Hello {
            protocol,
            item_version,
        } => {
            payload.push(TYPE_HELLO);
            payload.extend_from_slice(&MAGIC);
            payload.push(*protocol);
            payload.push(*item_version);
        }
        Frame::Subscribe { topics } => {
            payload.push(TYPE_SUBSCRIBE);
            write_varint(topics.len() as u64, &mut payload);
            for t in topics {
                t.encode(&mut payload);
            }
        }
        Frame::Snapshot(state) => {
            payload.push(TYPE_SNAPSHOT);
            state.encode(&mut payload);
        }
        Frame::Delta(delta) => {
            payload.push(TYPE_DELTA);
            delta.encode(&mut payload);
        }
        Frame::Meta { start_us, bytes } => {
            payload.push(TYPE_META);
            write_varint(*start_us, &mut payload);
            write_varint(bytes.len() as u64, &mut payload);
            payload.extend_from_slice(bytes);
        }
        Frame::Evict {
            reason,
            undelivered,
        } => {
            payload.push(TYPE_EVICT);
            payload.push(reason.code());
            write_varint(*undelivered, &mut payload);
        }
        Frame::Bye => payload.push(TYPE_BYE),
    }
    let crc = crc32(&payload);
    payload.extend_from_slice(&crc.to_le_bytes());
    dnswire::framing::encode_frame_into::<dnswire::framing::U32Prefix>(&payload, out);
}

/// Convenience: encode one frame into a fresh buffer.
pub fn encode_frame_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(frame, &mut out);
    out
}

/// Decode one reassembled payload (length prefix already stripped).
pub fn decode_payload(payload: &[u8]) -> Result<Frame, FeedError> {
    if payload.len() < 5 {
        return Err(FeedError::Truncated("pubsub frame"));
    }
    let (body, crc_bytes) = payload.split_at(payload.len() - 4);
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4 crc bytes"));
    let computed = crc32(body);
    if expected != computed {
        return Err(FeedError::Crc { expected, computed });
    }
    let mut r = ByteReader::new(body);
    let frame = match r.u8("frame type")? {
        TYPE_HELLO => {
            let magic: [u8; 4] = r
                .bytes(4, "hello magic")?
                .try_into()
                .expect("4 magic bytes");
            if magic != MAGIC {
                return Err(FeedError::BadMagic(magic));
            }
            let protocol = r.u8("hello protocol")?;
            if protocol != PROTOCOL_VERSION {
                return Err(FeedError::BadProtocolVersion {
                    got: protocol,
                    want: PROTOCOL_VERSION,
                });
            }
            let item_version = r.u8("hello item version")?;
            if item_version != WindowState::ITEM_VERSION {
                return Err(FeedError::BadItemVersion {
                    got: item_version,
                    want: WindowState::ITEM_VERSION,
                });
            }
            Frame::Hello {
                protocol,
                item_version,
            }
        }
        TYPE_SUBSCRIBE => {
            let n = r.count(1, "subscribe topics")?;
            if n > MAX_TOPICS {
                return Err(FeedError::Invalid("too many topics"));
            }
            let mut topics = Vec::with_capacity(n);
            for _ in 0..n {
                topics.push(Topic::decode(&mut r)?);
            }
            Frame::Subscribe { topics }
        }
        TYPE_SNAPSHOT => Frame::Snapshot(Box::new(WindowState::decode(&mut r)?)),
        TYPE_DELTA => Frame::Delta(Box::new(WindowDelta::decode(&mut r)?)),
        TYPE_META => {
            let start_us = r.varint()?;
            let len = r.count(1, "meta bytes")?;
            if len > MAX_META_BYTES {
                return Err(FeedError::Invalid("meta body too large"));
            }
            Frame::Meta {
                start_us,
                bytes: r.bytes(len, "meta bytes")?.to_vec(),
            }
        }
        TYPE_EVICT => Frame::Evict {
            reason: EvictReason::from_code(r.u8("evict reason")?)?,
            undelivered: r.varint()?,
        },
        TYPE_BYE => Frame::Bye,
        other => return Err(FeedError::BadFrameType(other)),
    };
    if !r.is_empty() {
        return Err(FeedError::TrailingBytes(r.remaining()));
    }
    Ok(frame)
}

/// Incremental frame decoder over arbitrary byte chunks.
///
/// Push bytes as they arrive; pull frames as they complete. A frame that
/// fails CRC or body validation is consumed (the error is returned once
/// and the stream stays aligned on the next length prefix); an oversized
/// or malformed length prefix is fatal.
#[derive(Debug)]
pub struct FrameReader {
    inner: Option<dnswire::framing::Reassembler<dnswire::framing::U32Prefix>>,
    decoded: u64,
}

impl Default for FrameReader {
    fn default() -> FrameReader {
        FrameReader::new()
    }
}

impl FrameReader {
    /// New reader enforcing [`MAX_FRAME`].
    pub fn new() -> FrameReader {
        FrameReader {
            inner: Some(dnswire::framing::Reassembler::new(MAX_FRAME)),
            decoded: 0,
        }
    }

    /// Feed received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if let Some(inner) = &mut self.inner {
            inner.push(bytes);
        }
    }

    /// Frames successfully decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Pull the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FeedError> {
        let inner = match &mut self.inner {
            Some(inner) => inner,
            None => return Err(FeedError::Invalid("frame reader poisoned")),
        };
        match inner.next_frame() {
            Ok(Some(payload)) => {
                let frame = decode_payload(&payload)?;
                self.decoded += 1;
                Ok(Some(frame))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                // A bad length prefix means the stream can never realign.
                self.inner = None;
                Err(FeedError::Framing(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchwire::TopKState;

    fn tiny_window() -> WindowState {
        WindowState {
            upstream: 0,
            start: 600.0,
            length: 600.0,
            topk: TopKState {
                dataset: "esld".to_string(),
                capacity: 8,
                observed: 3,
                min_count: 0,
                error_bound: 0,
                evictions: 0,
                kept: 3,
                dropped: 0,
                filtered: 0,
                chunk: 0,
                chunks: 1,
                entries: Vec::new(),
                gate: None,
            },
        }
    }

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame_vec(&frame);
        let mut rd = FrameReader::new();
        rd.push(&bytes);
        assert_eq!(rd.next_frame().unwrap(), Some(frame));
        assert!(rd.next_frame().unwrap().is_none());
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello {
            protocol: PROTOCOL_VERSION,
            item_version: WindowState::ITEM_VERSION,
        });
        roundtrip(Frame::Subscribe {
            topics: vec![
                Topic::Features,
                Topic::Meta,
                Topic::Dataset("esld".to_string()),
            ],
        });
        roundtrip(Frame::Snapshot(Box::new(tiny_window())));
        roundtrip(Frame::Meta {
            start_us: 600_000_000,
            bytes: b"start\tend\n".to_vec(),
        });
        roundtrip(Frame::Evict {
            reason: EvictReason::TooSlow,
            undelivered: 17,
        });
        roundtrip(Frame::Bye);
    }

    #[test]
    fn split_delivery_reassembles() {
        let bytes = encode_frame_vec(&Frame::Bye);
        let mut rd = FrameReader::new();
        for b in &bytes {
            rd.push(std::slice::from_ref(b));
        }
        assert_eq!(rd.next_frame().unwrap(), Some(Frame::Bye));
    }

    #[test]
    fn crc_damage_is_typed_and_stream_realigns() {
        let mut bytes = encode_frame_vec(&Frame::Snapshot(Box::new(tiny_window())));
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // inside the CRC trailer
        encode_frame(&Frame::Bye, &mut bytes);
        let mut rd = FrameReader::new();
        rd.push(&bytes);
        assert!(matches!(rd.next_frame(), Err(FeedError::Crc { .. })));
        assert_eq!(rd.next_frame().unwrap(), Some(Frame::Bye), "realigned");
    }

    #[test]
    fn hello_version_mismatch_is_typed() {
        let mut payload = vec![1u8]; // TYPE_HELLO
        payload.extend_from_slice(&MAGIC);
        payload.push(99);
        payload.push(1);
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_payload(&payload),
            Err(FeedError::BadProtocolVersion { got: 99, .. })
        ));
    }

    #[test]
    fn unknown_type_and_trailing_bytes_are_typed() {
        let mut payload = vec![42u8];
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_payload(&payload),
            Err(FeedError::BadFrameType(42))
        ));

        let mut payload = vec![TYPE_BYE, 0xaa];
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_payload(&payload),
            Err(FeedError::TrailingBytes(1))
        ));
    }

    #[test]
    fn topic_parse_covers_cli_forms() {
        assert_eq!(Topic::parse("topk"), Some(Topic::Topk));
        assert_eq!(Topic::parse("features"), Some(Topic::Features));
        assert_eq!(Topic::parse("meta"), Some(Topic::Meta));
        assert_eq!(
            Topic::parse("dataset=srvip"),
            Some(Topic::Dataset("srvip".to_string()))
        );
        assert_eq!(Topic::parse("dataset="), None);
        assert_eq!(Topic::parse("nope"), None);
    }
}
