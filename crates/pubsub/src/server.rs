//! Threaded std::net shell around [`BrokerCore`].
//!
//! Thread layout (all io threads use the shared small-stack size):
//!
//! * **ingest ring** — the pipeline's seal path hands sealed windows to a
//!   bounded SPSC ring via [`ServerHandle::publish_windows`]; a full ring
//!   drops the batch and counts it (`pubsub_ingest_dropped_total`) — the
//!   seal path never blocks on the serving tier, full stop;
//! * **broker thread** — drains the ring into the core, processes client
//!   control messages, and carries out the core's actions (queue frame /
//!   evict);
//! * **accept thread** — non-blocking listener, one reader thread per
//!   connection;
//! * **per-client reader** — handshake (`Hello` + `Subscribe`, answered
//!   with the broker's `Hello`), then watches for `Bye`/errors;
//! * **per-client writer** — drains an unbounded channel of pre-encoded
//!   frames into the socket, reporting each write back as a drain so the
//!   core's egress accounting stays authoritative. The channel is
//!   unbounded but its population is bounded by the core: it never holds
//!   more than the client's egress window plus terminal frames.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use feed::FeedItem;
use sketchwire::WindowState;
use telemetry::{Counter, Registry, TraceRing};

use crate::broker::{Action, BrokerConfig, BrokerCore, BrokerReport};
use crate::codec::{encode_frame_vec, EvictReason, Frame, FrameReader, Topic, PROTOCOL_VERSION};

/// Serving-tier configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Broker knobs (egress windows, degradation, eviction).
    pub broker: BrokerConfig,
    /// Seal-path ingest ring capacity, in sealed batches.
    pub ingest_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            broker: BrokerConfig::default(),
            ingest_depth: 256,
        }
    }
}

/// One item on the seal-path ingest ring.
#[derive(Debug)]
pub enum Ingest {
    /// A sealed window batch (all datasets, possibly chunked).
    Windows(Vec<WindowState>),
    /// Meta TSV bytes for one window.
    Meta {
        /// Window start, microseconds.
        start_us: u64,
        /// Raw TSV bytes.
        bytes: Vec<u8>,
    },
}

/// The seal path's non-blocking publish handle (single producer — take it
/// once with [`Server::take_handle`]).
pub struct ServerHandle {
    tx: spsc::Producer<Ingest>,
    dropped: Counter,
}

impl ServerHandle {
    /// Offer a sealed window batch. Returns `false` (and counts the
    /// drop) if the ring is full or the server is gone — never blocks.
    pub fn publish_windows(&mut self, windows: Vec<WindowState>) -> bool {
        self.offer(Ingest::Windows(windows))
    }

    /// Offer one window's meta TSV bytes. Same non-blocking contract.
    pub fn publish_meta(&mut self, start_us: u64, bytes: Vec<u8>) -> bool {
        self.offer(Ingest::Meta { start_us, bytes })
    }

    fn offer(&mut self, ingest: Ingest) -> bool {
        match self.tx.try_push(ingest) {
            Ok(()) => true,
            Err(_) => {
                self.dropped.inc(1);
                false
            }
        }
    }
}

enum WriterMsg {
    Frame(Arc<Vec<u8>>),
    Close,
}

enum Ctl {
    Connect {
        id: u64,
        topics: Vec<Topic>,
        writer: Sender<WriterMsg>,
        writer_thread: JoinHandle<()>,
        stream: TcpStream,
    },
    Drained {
        id: u64,
        n: u64,
    },
    Gone {
        id: u64,
        reason: EvictReason,
    },
}

struct Conn {
    writer: Sender<WriterMsg>,
    writer_thread: Option<JoinHandle<()>>,
    stream: TcpStream,
}

/// A running subscription server.
pub struct Server {
    local_addr: SocketAddr,
    producer: Option<ServerHandle>,
    stop: Arc<AtomicBool>,
    broker_thread: Option<JoinHandle<BrokerReport>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and start the serving tier. Metrics register in
    /// `registry`; broker decisions trace into `trace`.
    pub fn bind(
        addr: &str,
        cfg: ServeConfig,
        registry: &Registry,
        trace: TraceRing,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = spsc::ring::<Ingest>(cfg.ingest_depth.max(1));
        let (ctl_tx, ctl_rx) = mpsc::channel::<Ctl>();
        let stop = Arc::new(AtomicBool::new(false));

        let core = BrokerCore::new(cfg.broker)
            .with_registry(registry)
            .with_trace(trace);
        let seal_errors = registry.counter("pubsub_seal_errors_total");
        let broker_thread = spawn_io("pubsub-broker", move || {
            run_broker(core, rx, ctl_rx, seal_errors)
        })?;
        let accept_stop = stop.clone();
        let accept_thread = spawn_io("pubsub-accept", move || {
            run_accept(listener, ctl_tx, accept_stop)
        })?;

        Ok(Server {
            local_addr,
            producer: Some(ServerHandle {
                tx,
                dropped: registry.counter("pubsub_ingest_dropped_total"),
            }),
            stop,
            broker_thread: Some(broker_thread),
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Take the seal path's publish handle. Single producer: the first
    /// call wins, later calls return `None`.
    pub fn take_handle(&mut self) -> Option<ServerHandle> {
        self.producer.take()
    }

    /// Shut down: stop accepting, drain the ring, `Bye` every client,
    /// and return the broker's report. If [`Server::take_handle`] was
    /// called, the handle must be dropped first — the broker finishes
    /// only once the ingest ring disconnects.
    pub fn finish(mut self) -> BrokerReport {
        self.stop.store(true, Ordering::SeqCst);
        drop(self.producer.take());
        let report = self
            .broker_thread
            .take()
            .map(|t| t.join().unwrap_or_default())
            .unwrap_or_default();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        report
    }
}

fn spawn_io<T: Send + 'static>(
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> std::io::Result<JoinHandle<T>> {
    std::thread::Builder::new()
        .name(name.to_string())
        .stack_size(telemetry::IO_THREAD_STACK_BYTES)
        .spawn(f)
}

fn run_accept(listener: TcpListener, ctl: Sender<Ctl>, stop: Arc<AtomicBool>) {
    let mut next_id: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                next_id += 1;
                let id = next_id;
                let _ = stream.set_nodelay(true);
                let ctl = ctl.clone();
                let spawned = spawn_io(&format!("pubsub-reader-{id}"), move || {
                    run_reader(stream, id, ctl)
                });
                if spawned.is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => return,
        }
    }
}

/// Handshake: the client speaks `Hello` then `Subscribe`; we answer with
/// our own `Hello`. Anything else (or a decode error) aborts the
/// connection before it ever reaches the broker.
fn handshake(stream: &mut TcpStream, rd: &mut FrameReader) -> Result<Vec<Topic>, ()> {
    let mut buf = [0u8; 4096];
    let mut hello_seen = false;
    loop {
        while let Some(frame) = rd.next_frame().map_err(|_| ())? {
            match (hello_seen, frame) {
                (false, Frame::Hello { .. }) => hello_seen = true,
                (true, Frame::Subscribe { topics }) => {
                    let hello = encode_frame_vec(&Frame::Hello {
                        protocol: PROTOCOL_VERSION,
                        item_version: WindowState::ITEM_VERSION,
                    });
                    stream.write_all(&hello).map_err(|_| ())?;
                    return Ok(topics);
                }
                _ => return Err(()),
            }
        }
        let n = stream.read(&mut buf).map_err(|_| ())?;
        if n == 0 {
            return Err(());
        }
        rd.push(&buf[..n]);
    }
}

fn run_reader(mut stream: TcpStream, id: u64, ctl: Sender<Ctl>) {
    let mut rd = FrameReader::new();
    let topics = match handshake(&mut stream, &mut rd) {
        Ok(t) => t,
        Err(()) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let (writer_stream, broker_stream) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let (wtx, wrx) = mpsc::channel::<WriterMsg>();
    let writer_ctl = ctl.clone();
    let writer_thread = match spawn_io(&format!("pubsub-writer-{id}"), move || {
        run_writer(writer_stream, wrx, writer_ctl, id)
    }) {
        Ok(t) => t,
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    if ctl
        .send(Ctl::Connect {
            id,
            topics,
            writer: wtx,
            writer_thread,
            stream: broker_stream,
        })
        .is_err()
    {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let mut buf = [0u8; 4096];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            Err(_) => {
                let _ = ctl.send(Ctl::Gone {
                    id,
                    reason: EvictReason::Gone,
                });
                return;
            }
        };
        if n == 0 {
            let _ = ctl.send(Ctl::Gone {
                id,
                reason: EvictReason::Gone,
            });
            return;
        }
        rd.push(&buf[..n]);
        // Any post-handshake frame ends the connection, so one decode
        // attempt per read suffices: Bye is a clean goodbye, anything
        // else (or damage) is a protocol violation.
        match rd.next_frame() {
            Ok(Some(Frame::Bye)) => {
                let _ = ctl.send(Ctl::Gone {
                    id,
                    reason: EvictReason::Gone,
                });
                return;
            }
            Ok(Some(_)) | Err(_) => {
                let _ = ctl.send(Ctl::Gone {
                    id,
                    reason: EvictReason::Protocol,
                });
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Ok(None) => {}
        }
    }
}

fn run_writer(mut stream: TcpStream, rx: Receiver<WriterMsg>, ctl: Sender<Ctl>, id: u64) {
    // Bound how long one stalled socket can pin this thread; a timed-out
    // write is a departure like any other.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Frame(frame) => {
                if stream.write_all(&frame).is_err() {
                    let _ = ctl.send(Ctl::Gone {
                        id,
                        reason: EvictReason::Gone,
                    });
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                let _ = ctl.send(Ctl::Drained { id, n: 1 });
            }
            WriterMsg::Close => {
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

fn dispatch(conns: &mut HashMap<u64, Conn>, actions: &mut Vec<Action>) {
    for action in actions.drain(..) {
        match action {
            Action::Send { client, frame } => {
                if let Some(conn) = conns.get(&client) {
                    let _ = conn.writer.send(WriterMsg::Frame(frame));
                }
            }
            Action::Evict { client, frame, .. } => {
                if let Some(conn) = conns.remove(&client) {
                    // Best-effort terminal notice, then close; a stalled
                    // writer is unblocked by the shutdown.
                    let _ = conn.writer.send(WriterMsg::Frame(frame));
                    let _ = conn.writer.send(WriterMsg::Close);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

fn run_broker(
    mut core: BrokerCore,
    mut ring: spsc::Consumer<Ingest>,
    ctl: Receiver<Ctl>,
    seal_errors: Counter,
) -> BrokerReport {
    let epoch = Instant::now();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut actions: Vec<Action> = Vec::new();
    let handle = |core: &mut BrokerCore,
                  conns: &mut HashMap<u64, Conn>,
                  actions: &mut Vec<Action>,
                  msg: Ctl| match msg {
        Ctl::Connect {
            id,
            topics,
            writer,
            writer_thread,
            stream,
        } => {
            conns.insert(
                id,
                Conn {
                    writer,
                    writer_thread: Some(writer_thread),
                    stream,
                },
            );
            core.on_client_connect(id, &topics, actions);
        }
        Ctl::Drained { id, n } => core.on_drained(id, n),
        Ctl::Gone { id, reason } => {
            core.on_client_gone(id, reason);
            if let Some(conn) = conns.remove(&id) {
                let _ = conn.writer.send(WriterMsg::Close);
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    };
    loop {
        core.set_now_us(epoch.elapsed().as_micros() as u64);
        let mut ingest_done = false;
        loop {
            match ring.try_pop() {
                Ok(Ingest::Windows(windows)) => {
                    if core.on_sealed(windows, &mut actions).is_err() {
                        seal_errors.inc(1);
                    }
                }
                Ok(Ingest::Meta { start_us, bytes }) => core.on_meta(start_us, bytes, &mut actions),
                Err(spsc::TryPopError::Empty) => break,
                Err(spsc::TryPopError::Disconnected) => {
                    ingest_done = true;
                    break;
                }
            }
        }
        dispatch(&mut conns, &mut actions);
        if ingest_done {
            break;
        }
        match ctl.recv_timeout(Duration::from_millis(5)) {
            Ok(msg) => {
                handle(&mut core, &mut conns, &mut actions, msg);
                while let Ok(msg) = ctl.try_recv() {
                    handle(&mut core, &mut conns, &mut actions, msg);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {}
        }
        dispatch(&mut conns, &mut actions);
    }
    // Drain any last control messages so departures that already
    // happened are ledgered with their true reason.
    while let Ok(msg) = ctl.try_recv() {
        handle(&mut core, &mut conns, &mut actions, msg);
    }
    // Give queued egress a bounded chance to reach the wire before the
    // goodbye, so the final ledger's delivered/undelivered split
    // reflects what the sockets actually took. Stalled clients hit the
    // deadline and keep their undelivered count.
    let deadline = Instant::now() + Duration::from_secs(2);
    while conns
        .keys()
        .any(|id| core.client_depth(*id).unwrap_or(0) > 0)
        && Instant::now() < deadline
    {
        match ctl.recv_timeout(Duration::from_millis(5)) {
            Ok(msg) => {
                handle(&mut core, &mut conns, &mut actions, msg);
                while let Ok(msg) = ctl.try_recv() {
                    handle(&mut core, &mut conns, &mut actions, msg);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        dispatch(&mut conns, &mut actions);
    }
    // Anyone still backed up is stalled: unblock their writer with a
    // socket shutdown so the joins below stay prompt.
    let stalled: Vec<u64> = conns
        .keys()
        .filter(|id| core.client_depth(**id).unwrap_or(0) > 0)
        .copied()
        .collect();
    core.set_now_us(epoch.elapsed().as_micros() as u64);
    let report = core.finish(&mut actions);
    dispatch(&mut conns, &mut actions);
    for (id, mut conn) in conns.drain() {
        if stalled.contains(&id) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let _ = conn.writer.send(WriterMsg::Close);
        if let Some(t) = conn.writer_thread.take() {
            let _ = t.join();
        }
    }
    report
}
