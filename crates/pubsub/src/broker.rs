//! The sans-io broker kernel: sealed windows in, per-client actions out.
//!
//! [`BrokerCore`] owns no sockets and no threads. Events arrive as method
//! calls — a sealed window batch from the pipeline, a client handshake, a
//! drain notification from an io writer — and decisions leave as
//! [`Action`]s: *send this pre-encoded frame to that client* or *evict
//! that client for this reason*. The threaded server in [`crate::server`]
//! is a thin shell around it, and the chaos harness drives the same core
//! on virtual time with scripted subscriber behaviour.
//!
//! # Backpressure contract
//!
//! The seal path is sacred: `on_sealed` never blocks and never waits on
//! any client. Each client has a bounded egress window
//! ([`BrokerConfig::egress_frames`]) accounted here — pushes increment
//! it, io-level drains decrement it. A client whose egress is full
//! degrades: its delta basis is discarded and it receives only periodic
//! snapshot *offers* (every [`BrokerConfig::snapshot_every`] windows);
//! after [`BrokerConfig::evict_after`] failed offers it is evicted with a
//! typed, ledgered reason. Every departure (evicted, vanished, shutdown)
//! lands in the ledger with the client's conservation totals, so
//! `pushed == delivered + undelivered` is checkable per client and in
//! aggregate — the invariant the chaos subscriber axis asserts.

use std::collections::BTreeMap;
use std::sync::Arc;

use sketches::LogBuckets;
use sketchwire::{StateError, TopKState, WindowState};
use telemetry::{Counter, Gauge, Histogram, Registry, TraceEvent, TraceKind, TraceRing};

use crate::codec::{encode_frame_vec, EvictReason, Frame, Topic};
use crate::delta::{canonicalize, diff_states, strip_features, window_id_us};

/// Broker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Per-client egress window, in frames: the most frames accepted for
    /// a client that io has not yet reported drained.
    pub egress_frames: usize,
    /// While degraded, offer a full snapshot resync every this many
    /// sealed windows.
    pub snapshot_every: u32,
    /// Evict a degraded client after this many consecutive failed
    /// snapshot offers.
    pub evict_after: u32,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            egress_frames: 64,
            snapshot_every: 4,
            evict_after: 3,
        }
    }
}

/// A decision the io shell must carry out.
#[derive(Debug, Clone)]
pub enum Action {
    /// Queue this pre-encoded frame for this client.
    Send {
        /// Target client id.
        client: u64,
        /// Shared encoded frame bytes.
        frame: Arc<Vec<u8>>,
    },
    /// Terminate this client: best-effort write the enclosed `Evict`
    /// frame, then close the connection.
    Evict {
        /// Target client id.
        client: u64,
        /// Why — already ledgered by the core.
        reason: EvictReason,
        /// Pre-encoded `Evict` frame to flush before closing.
        frame: Arc<Vec<u8>>,
    },
}

/// A client's cumulative frame accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTotals {
    /// Frames accepted into the client's egress window.
    pub pushed: u64,
    /// Frames io reported written.
    pub delivered: u64,
    /// Frames never accepted (egress full / degraded skips).
    pub dropped: u64,
}

/// One ledgered departure. `TooSlow` and `Protocol` are broker-initiated
/// evictions; `Gone` and `Shutdown` record ordinary departures so the
/// ledger is a complete conservation record: for every client that ever
/// connected, `pushed == delivered + undelivered` holds on its record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionRecord {
    /// Client id.
    pub client: u64,
    /// Why the subscription ended.
    pub reason: EvictReason,
    /// Frames accepted but not yet drained at departure.
    pub undelivered: u64,
    /// The client's totals at departure.
    pub totals: ClientTotals,
    /// Injected time of the departure, microseconds.
    pub at_us: u64,
}

/// End-of-run accounting, aggregated over the complete departure ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BrokerReport {
    /// Sealed window batches ingested.
    pub windows_ingested: u64,
    /// Meta payloads ingested.
    pub metas_ingested: u64,
    /// Distinct clients that ever completed a handshake.
    pub clients_seen: u64,
    /// Sum of per-client `pushed`.
    pub frames_pushed: u64,
    /// Sum of per-client `delivered`.
    pub frames_delivered: u64,
    /// Sum of per-client `dropped`.
    pub frames_dropped: u64,
    /// Sum of per-client undelivered-at-departure.
    pub undelivered: u64,
    /// The complete departure ledger, in departure order.
    pub departures: Vec<EvictionRecord>,
}

/// A client's effective topic filter (the union of its `Subscribe`
/// topics; an empty topic list subscribes to everything at full
/// fidelity).
#[derive(Debug, Clone)]
struct Subscription {
    topk: bool,
    features: bool,
    meta: bool,
    datasets: Vec<String>,
}

impl Subscription {
    fn from_topics(topics: &[Topic]) -> Subscription {
        if topics.is_empty() {
            return Subscription {
                topk: false,
                features: true,
                meta: true,
                datasets: Vec::new(),
            };
        }
        let mut s = Subscription {
            topk: false,
            features: false,
            meta: false,
            datasets: Vec::new(),
        };
        for t in topics {
            match t {
                Topic::Topk => s.topk = true,
                Topic::Features => s.features = true,
                Topic::Meta => s.meta = true,
                Topic::Dataset(name) => {
                    if !s.datasets.contains(name) {
                        s.datasets.push(name.clone());
                    }
                }
            }
        }
        // A bare dataset filter implies window frames.
        if !s.datasets.is_empty() && !s.topk && !s.features {
            s.features = true;
        }
        s
    }

    fn wants_windows(&self) -> bool {
        self.topk || self.features
    }

    fn wants_dataset(&self, ds: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d == ds)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Degraded {
    windows_since: u32,
    failures: u32,
}

#[derive(Debug)]
struct Client {
    subs: Subscription,
    /// Per-dataset window id of the last frame queued — the delta basis.
    basis: BTreeMap<String, u64>,
    /// Frames accepted but not yet reported drained.
    depth: usize,
    /// `Some` while the client is in snapshot-recovery mode.
    degraded: Option<Degraded>,
    totals: ClientTotals,
}

/// One dataset's current published window plus its pre-encoded frames
/// (encoded once, shared by every subscriber and every late joiner).
#[derive(Debug)]
struct Published {
    window_us: u64,
    full: TopKState,
    topk_only: TopKState,
    snap_full: Arc<Vec<u8>>,
    snap_topk: Arc<Vec<u8>>,
}

struct Metrics {
    clients: Gauge,
    windows_ingested: Counter,
    frames_pushed: Counter,
    frames_delivered: Counter,
    frames_dropped: Counter,
    clients_evicted: Counter,
    egress_depth: Histogram,
}

impl Metrics {
    fn new(r: &Registry) -> Metrics {
        Metrics {
            clients: r.gauge("pubsub_clients"),
            windows_ingested: r.counter("pubsub_windows_ingested_total"),
            frames_pushed: r.counter("pubsub_frames_pushed_total"),
            frames_delivered: r.counter("pubsub_frames_delivered_total"),
            frames_dropped: r.counter("pubsub_frames_dropped_total"),
            clients_evicted: r.counter("pubsub_clients_evicted_total"),
            egress_depth: r.histogram("pubsub_egress_depth", LogBuckets::new(1.0, 1024.0, 3)),
        }
    }
}

/// The sans-io subscription broker. See the module docs for the contract.
pub struct BrokerCore {
    cfg: BrokerConfig,
    now_us: u64,
    clients: BTreeMap<u64, Client>,
    published: BTreeMap<String, Published>,
    ledger: Vec<EvictionRecord>,
    windows_ingested: u64,
    metas_ingested: u64,
    clients_seen: u64,
    metrics: Option<Metrics>,
    trace: TraceRing,
}

impl BrokerCore {
    /// New broker with the given knobs.
    pub fn new(cfg: BrokerConfig) -> BrokerCore {
        BrokerCore {
            cfg,
            now_us: 0,
            clients: BTreeMap::new(),
            published: BTreeMap::new(),
            ledger: Vec::new(),
            windows_ingested: 0,
            metas_ingested: 0,
            clients_seen: 0,
            metrics: None,
            trace: TraceRing::disabled(),
        }
    }

    /// Register broker metrics in `registry`.
    pub fn with_registry(mut self, registry: &Registry) -> BrokerCore {
        self.metrics = Some(Metrics::new(registry));
        self
    }

    /// Record flight-recorder trace events into `trace`.
    pub fn with_trace(mut self, trace: TraceRing) -> BrokerCore {
        self.trace = trace;
        self
    }

    /// Inject the current time (stamps ledger records and trace events).
    pub fn set_now_us(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    /// Connected clients.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// The departure ledger so far.
    pub fn ledger(&self) -> &[EvictionRecord] {
        &self.ledger
    }

    /// A connected client's totals (`None` after departure — consult the
    /// ledger instead).
    pub fn client_totals(&self, id: u64) -> Option<ClientTotals> {
        self.clients.get(&id).map(|c| c.totals)
    }

    /// A connected client's undrained egress depth.
    pub fn client_depth(&self, id: u64) -> Option<usize> {
        self.clients.get(&id).map(|c| c.depth)
    }

    /// Whether a connected client is in snapshot-recovery mode.
    pub fn client_degraded(&self, id: u64) -> Option<bool> {
        self.clients.get(&id).map(|c| c.degraded.is_some())
    }

    /// The currently published window id for `dataset`.
    pub fn published_window(&self, dataset: &str) -> Option<u64> {
        self.published.get(dataset).map(|p| p.window_us)
    }

    /// A client completed its handshake. Immediately offers a snapshot of
    /// every published dataset its topics select, so a late joiner is
    /// consistent without waiting for the next seal.
    pub fn on_client_connect(&mut self, id: u64, topics: &[Topic], actions: &mut Vec<Action>) {
        self.clients_seen += 1;
        let mut client = Client {
            subs: Subscription::from_topics(topics),
            basis: BTreeMap::new(),
            depth: 0,
            degraded: None,
            totals: ClientTotals::default(),
        };
        if client.subs.wants_windows() {
            for (ds, p) in &self.published {
                if !client.subs.wants_dataset(ds) {
                    continue;
                }
                let frame = if client.subs.features {
                    p.snap_full.clone()
                } else {
                    p.snap_topk.clone()
                };
                if push_frame(&self.cfg, &self.metrics, id, &mut client, frame, actions) {
                    client.basis.insert(ds.clone(), p.window_us);
                } else {
                    client.degraded = Some(Degraded::default());
                }
            }
        }
        self.clients.insert(id, client);
        if let Some(m) = &self.metrics {
            m.clients.set(self.clients.len() as f64);
        }
        if self.trace.is_enabled() {
            self.trace
                .record(TraceEvent::new(self.now_us, "pubsub", TraceKind::Open).source(id));
        }
    }

    /// The io shell wrote `n` frames to this client's socket.
    pub fn on_drained(&mut self, id: u64, n: u64) {
        if let Some(client) = self.clients.get_mut(&id) {
            let n = (n as usize).min(client.depth);
            client.depth -= n;
            client.totals.delivered += n as u64;
            if let Some(m) = &self.metrics {
                m.frames_delivered.inc(n as u64);
            }
        }
    }

    /// The client disconnected (clean `Bye`, io error, or a protocol
    /// violation detected by the io shell). Ledgers the departure; emits
    /// no action — the connection is already gone.
    pub fn on_client_gone(&mut self, id: u64, reason: EvictReason) {
        if let Some(client) = self.clients.remove(&id) {
            self.ledger_departure(id, &client, reason);
            if reason == EvictReason::Protocol {
                if let Some(m) = &self.metrics {
                    m.clients_evicted.inc(1);
                }
            }
            if let Some(m) = &self.metrics {
                m.clients.set(self.clients.len() as f64);
            }
        }
    }

    /// A sealed window batch from the pipeline/aggregator: chunks of each
    /// dataset reassemble, the canonical state is published, and every
    /// subscriber gets a delta (basis matches) or snapshot (otherwise),
    /// subject to its egress window. Never blocks; cost is bounded by
    /// state size and client count.
    pub fn on_sealed(
        &mut self,
        window: Vec<WindowState>,
        actions: &mut Vec<Action>,
    ) -> Result<(), StateError> {
        if window.is_empty() {
            return Ok(());
        }
        self.windows_ingested += 1;
        if let Some(m) = &self.metrics {
            m.windows_ingested.inc(1);
        }
        let mut by_ds: BTreeMap<String, Vec<WindowState>> = BTreeMap::new();
        for ws in window {
            by_ds.entry(ws.topk.dataset.clone()).or_default().push(ws);
        }
        let sends_before = actions.len();
        let mut updates = Vec::with_capacity(by_ds.len());
        let mut first_window_us = 0;
        for (ds, parts) in by_ds {
            let start = parts[0].start;
            let length = parts[0].length;
            let window_us = window_id_us(start);
            let topks: Vec<TopKState> = parts.into_iter().map(|w| w.topk).collect();
            let full = canonicalize(sketchwire::merge_chunks(&topks)?);
            let topk_only = strip_features(&full);
            let snap_full = Arc::new(encode_frame_vec(&Frame::Snapshot(Box::new(WindowState {
                upstream: 0,
                start,
                length,
                topk: full.clone(),
            }))));
            let snap_topk = Arc::new(encode_frame_vec(&Frame::Snapshot(Box::new(WindowState {
                upstream: 0,
                start,
                length,
                topk: topk_only.clone(),
            }))));
            // Deltas are only worth encoding when someone might consume
            // them; with no clients the seal path pays for snapshots only.
            let (prev_us, delta_full, delta_topk) = match self.published.get(&ds) {
                Some(p) if p.window_us < window_us && !self.clients.is_empty() => {
                    let df = diff_states(p.window_us, &p.full, window_us, start, length, &full);
                    let dt = diff_states(
                        p.window_us,
                        &p.topk_only,
                        window_us,
                        start,
                        length,
                        &topk_only,
                    );
                    (
                        Some(p.window_us),
                        Some(Arc::new(encode_frame_vec(&Frame::Delta(Box::new(df))))),
                        Some(Arc::new(encode_frame_vec(&Frame::Delta(Box::new(dt))))),
                    )
                }
                _ => (None, None, None),
            };
            self.published.insert(
                ds.clone(),
                Published {
                    window_us,
                    full,
                    topk_only,
                    snap_full: snap_full.clone(),
                    snap_topk: snap_topk.clone(),
                },
            );
            if first_window_us == 0 {
                first_window_us = window_us;
            }
            updates.push(Update {
                ds,
                window_us,
                prev_us,
                snap_full,
                snap_topk,
                delta_full,
                delta_topk,
            });
        }

        let mut evict = Vec::new();
        for (&id, client) in self.clients.iter_mut() {
            if !client.subs.wants_windows() {
                continue;
            }
            let wanted: Vec<&Update> = updates
                .iter()
                .filter(|u| client.subs.wants_dataset(&u.ds))
                .collect();
            if wanted.is_empty() {
                continue;
            }
            match client.degraded {
                None => {
                    let mut stalled = false;
                    for u in wanted {
                        if stalled {
                            drop_frame(&self.metrics, client, 1);
                            client.basis.remove(&u.ds);
                            continue;
                        }
                        let use_delta =
                            u.prev_us.is_some() && client.basis.get(&u.ds).copied() == u.prev_us;
                        let frame = match (use_delta, client.subs.features) {
                            (true, true) => u.delta_full.clone().expect("delta encoded"),
                            (true, false) => u.delta_topk.clone().expect("delta encoded"),
                            (false, true) => u.snap_full.clone(),
                            (false, false) => u.snap_topk.clone(),
                        };
                        if push_frame(&self.cfg, &self.metrics, id, client, frame, actions) {
                            client.basis.insert(u.ds.clone(), u.window_us);
                        } else {
                            drop_frame(&self.metrics, client, 1);
                            client.basis.remove(&u.ds);
                            client.degraded = Some(Degraded::default());
                            stalled = true;
                        }
                    }
                }
                Some(mut d) => {
                    d.windows_since += 1;
                    if d.windows_since >= self.cfg.snapshot_every {
                        d.windows_since = 0;
                        let resync: Vec<(&String, &Published)> = self
                            .published
                            .iter()
                            .filter(|(ds, _)| client.subs.wants_dataset(ds))
                            .collect();
                        if self.cfg.egress_frames.saturating_sub(client.depth) >= resync.len() {
                            for (ds, p) in resync {
                                let frame = if client.subs.features {
                                    p.snap_full.clone()
                                } else {
                                    p.snap_topk.clone()
                                };
                                let ok = push_frame(
                                    &self.cfg,
                                    &self.metrics,
                                    id,
                                    client,
                                    frame,
                                    actions,
                                );
                                debug_assert!(ok, "resync capacity was checked");
                                client.basis.insert(ds.clone(), p.window_us);
                            }
                            client.degraded = None;
                            continue;
                        }
                        d.failures += 1;
                        drop_frame(&self.metrics, client, wanted.len() as u64);
                        if d.failures >= self.cfg.evict_after {
                            evict.push(id);
                        } else {
                            client.degraded = Some(d);
                        }
                    } else {
                        drop_frame(&self.metrics, client, wanted.len() as u64);
                        client.degraded = Some(d);
                    }
                }
            }
        }
        for id in evict {
            self.evict_client(id, EvictReason::TooSlow, actions);
        }
        if self.trace.is_enabled() {
            self.trace.record(
                TraceEvent::new(self.now_us, "pubsub", TraceKind::Ingest)
                    .window(first_window_us)
                    .value((actions.len() - sends_before) as u64),
            );
        }
        Ok(())
    }

    /// A meta TSV payload for one window: fan out to `meta` subscribers.
    pub fn on_meta(&mut self, start_us: u64, bytes: Vec<u8>, actions: &mut Vec<Action>) {
        self.metas_ingested += 1;
        let frame = Arc::new(encode_frame_vec(&Frame::Meta { start_us, bytes }));
        for (&id, client) in self.clients.iter_mut() {
            if !client.subs.meta {
                continue;
            }
            if !push_frame(&self.cfg, &self.metrics, id, client, frame.clone(), actions) {
                drop_frame(&self.metrics, client, 1);
            }
        }
    }

    /// Shut down: every remaining client gets a best-effort `Bye` (not
    /// counted in the egress accounting — it is terminal) and a
    /// `Shutdown` ledger record. Returns the aggregate report.
    pub fn finish(&mut self, actions: &mut Vec<Action>) -> BrokerReport {
        let bye = Arc::new(encode_frame_vec(&Frame::Bye));
        let ids: Vec<u64> = self.clients.keys().copied().collect();
        for id in ids {
            let client = self.clients.remove(&id).expect("listed key");
            actions.push(Action::Send {
                client: id,
                frame: bye.clone(),
            });
            self.ledger_departure(id, &client, EvictReason::Shutdown);
        }
        if let Some(m) = &self.metrics {
            m.clients.set(0.0);
        }
        let mut report = BrokerReport {
            windows_ingested: self.windows_ingested,
            metas_ingested: self.metas_ingested,
            clients_seen: self.clients_seen,
            ..BrokerReport::default()
        };
        for rec in &self.ledger {
            report.frames_pushed += rec.totals.pushed;
            report.frames_delivered += rec.totals.delivered;
            report.frames_dropped += rec.totals.dropped;
            report.undelivered += rec.undelivered;
        }
        report.departures = self.ledger.clone();
        report
    }

    fn evict_client(&mut self, id: u64, reason: EvictReason, actions: &mut Vec<Action>) {
        if let Some(client) = self.clients.remove(&id) {
            let undelivered = client.depth as u64;
            let frame = Arc::new(encode_frame_vec(&Frame::Evict {
                reason,
                undelivered,
            }));
            actions.push(Action::Evict {
                client: id,
                reason,
                frame,
            });
            self.ledger_departure(id, &client, reason);
            if let Some(m) = &self.metrics {
                m.clients_evicted.inc(1);
                m.clients.set(self.clients.len() as f64);
            }
        }
    }

    fn ledger_departure(&mut self, id: u64, client: &Client, reason: EvictReason) {
        let undelivered = client.depth as u64;
        self.ledger.push(EvictionRecord {
            client: id,
            reason,
            undelivered,
            totals: client.totals,
            at_us: self.now_us,
        });
        if self.trace.is_enabled() {
            self.trace.record(
                TraceEvent::new(self.now_us, "pubsub", TraceKind::Drop)
                    .source(id)
                    .value(undelivered),
            );
        }
    }
}

/// One dataset's frames for the window being fanned out.
struct Update {
    ds: String,
    window_us: u64,
    prev_us: Option<u64>,
    snap_full: Arc<Vec<u8>>,
    snap_topk: Arc<Vec<u8>>,
    delta_full: Option<Arc<Vec<u8>>>,
    delta_topk: Option<Arc<Vec<u8>>>,
}

/// Try to accept a frame into the client's egress window. Free function
/// (not a method) so `on_sealed` can call it while iterating clients.
fn push_frame(
    cfg: &BrokerConfig,
    metrics: &Option<Metrics>,
    id: u64,
    client: &mut Client,
    frame: Arc<Vec<u8>>,
    actions: &mut Vec<Action>,
) -> bool {
    if client.depth >= cfg.egress_frames {
        return false;
    }
    client.depth += 1;
    client.totals.pushed += 1;
    actions.push(Action::Send { client: id, frame });
    if let Some(m) = metrics {
        m.frames_pushed.inc(1);
        m.egress_depth.record(client.depth as f64);
    }
    true
}

fn drop_frame(metrics: &Option<Metrics>, client: &mut Client, n: u64) {
    client.totals.dropped += n;
    if let Some(m) = metrics {
        m.frames_dropped.inc(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_payload, FrameReader};
    use crate::delta::apply_delta;
    use sketchwire::{FeatureState, TopKEntry};

    fn entry(key: &str, count: u64) -> TopKEntry {
        TopKEntry {
            key: key.to_string(),
            count,
            error: 0,
            inserted_at: 0.0,
            features: FeatureState {
                adds: vec![count],
                maxes: Vec::new(),
                hlls: Vec::new(),
                source_cap: 4,
                sources: vec![1],
                tops: Vec::new(),
                hists: Vec::new(),
            },
        }
    }

    fn sealed(window: u64, entries: Vec<TopKEntry>) -> Vec<WindowState> {
        let observed: u64 = entries.iter().map(|e| e.count).sum();
        vec![WindowState {
            upstream: 7,
            start: (window * 600) as f64,
            length: 600.0,
            topk: TopKState {
                dataset: "esld".to_string(),
                capacity: 8,
                observed,
                min_count: 0,
                error_bound: observed / 8,
                evictions: 0,
                kept: observed,
                dropped: 0,
                filtered: 0,
                chunk: 0,
                chunks: 1,
                entries,
                gate: None,
            },
        }]
    }

    fn decode(frame: &Arc<Vec<u8>>) -> Frame {
        let mut rd = FrameReader::new();
        rd.push(frame);
        rd.next_frame().unwrap().expect("one frame")
    }

    fn sends_for(actions: &[Action], id: u64) -> Vec<Frame> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { client, frame } if *client == id => Some(decode(frame)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn snapshot_then_delta_flow() {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions = Vec::new();
        core.on_client_connect(1, &[Topic::Features], &mut actions);
        assert!(actions.is_empty(), "nothing published yet");

        core.on_sealed(sealed(1, vec![entry("a", 5)]), &mut actions)
            .unwrap();
        let frames = sends_for(&actions, 1);
        assert_eq!(frames.len(), 1);
        let base = match &frames[0] {
            Frame::Snapshot(w) => w.topk.clone(),
            other => panic!("expected snapshot, got {other:?}"),
        };

        actions.clear();
        core.on_sealed(sealed(2, vec![entry("a", 9), entry("b", 2)]), &mut actions)
            .unwrap();
        let frames = sends_for(&actions, 1);
        assert_eq!(frames.len(), 1);
        match &frames[0] {
            Frame::Delta(d) => {
                let next = apply_delta(&base, d).unwrap();
                assert_eq!(next.entries.len(), 2);
                assert_eq!(next.observed, 11);
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn late_joiner_gets_snapshot_immediately() {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions = Vec::new();
        core.on_sealed(sealed(1, vec![entry("a", 5)]), &mut actions)
            .unwrap();
        core.on_client_connect(1, &[], &mut actions);
        let frames = sends_for(&actions, 1);
        assert_eq!(frames.len(), 1);
        assert!(matches!(frames[0], Frame::Snapshot(_)));
    }

    #[test]
    fn topk_topic_strips_features() {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions = Vec::new();
        core.on_client_connect(1, &[Topic::Topk], &mut actions);
        core.on_sealed(sealed(1, vec![entry("a", 5)]), &mut actions)
            .unwrap();
        match &sends_for(&actions, 1)[0] {
            Frame::Snapshot(w) => {
                assert_eq!(w.topk.entries[0].count, 5);
                assert!(w.topk.entries[0].features.adds.is_empty());
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn dataset_filter_applies() {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions = Vec::new();
        core.on_client_connect(1, &[Topic::Dataset("other".to_string())], &mut actions);
        core.on_sealed(sealed(1, vec![entry("a", 5)]), &mut actions)
            .unwrap();
        assert!(sends_for(&actions, 1).is_empty());
    }

    #[test]
    fn slow_client_degrades_then_recovers_via_snapshot() {
        let cfg = BrokerConfig {
            egress_frames: 2,
            snapshot_every: 2,
            evict_after: 10,
        };
        let mut core = BrokerCore::new(cfg);
        let mut actions = Vec::new();
        core.on_client_connect(1, &[Topic::Features], &mut actions);
        // Fill the egress window without draining.
        for w in 1..=3 {
            core.on_sealed(sealed(w, vec![entry("a", w)]), &mut actions)
                .unwrap();
        }
        assert_eq!(core.client_degraded(1), Some(true));
        assert_eq!(core.client_depth(1), Some(2));

        // Drain everything; the next snapshot offer resynchronizes.
        core.on_drained(1, 2);
        actions.clear();
        for w in 4..=6 {
            core.on_sealed(sealed(w, vec![entry("a", w)]), &mut actions)
                .unwrap();
        }
        assert_eq!(core.client_degraded(1), Some(false));
        let frames = sends_for(&actions, 1);
        assert!(
            matches!(frames[0], Frame::Snapshot(_)),
            "recovery is a snapshot"
        );
        // And once healthy, traffic is deltas again.
        core.on_drained(1, frames.len() as u64);
        actions.clear();
        core.on_sealed(sealed(7, vec![entry("a", 7)]), &mut actions)
            .unwrap();
        assert!(matches!(sends_for(&actions, 1)[0], Frame::Delta(_)));
    }

    #[test]
    fn stalled_client_is_evicted_with_ledgered_reason() {
        let cfg = BrokerConfig {
            egress_frames: 1,
            snapshot_every: 1,
            evict_after: 2,
        };
        let mut core = BrokerCore::new(cfg);
        let mut actions = Vec::new();
        core.set_now_us(42);
        core.on_client_connect(1, &[Topic::Features], &mut actions);
        let mut w = 1;
        while core.clients() > 0 {
            core.on_sealed(sealed(w, vec![entry("a", w)]), &mut actions)
                .unwrap();
            w += 1;
            assert!(w < 32, "eviction must converge");
        }
        let evicts: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, Action::Evict { .. }))
            .collect();
        assert_eq!(evicts.len(), 1);
        assert_eq!(core.ledger().len(), 1);
        let rec = core.ledger()[0];
        assert_eq!(rec.reason, EvictReason::TooSlow);
        assert_eq!(rec.at_us, 42);
        // Conservation: everything pushed is still in egress (undelivered).
        assert_eq!(rec.totals.pushed, rec.totals.delivered + rec.undelivered);
        match evicts[0] {
            Action::Evict { frame, .. } => match decode(frame) {
                Frame::Evict {
                    reason,
                    undelivered,
                } => {
                    assert_eq!(reason, EvictReason::TooSlow);
                    assert_eq!(undelivered, rec.undelivered);
                }
                other => panic!("expected evict frame, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn seal_path_cost_is_independent_of_stalled_clients() {
        // A stalled client must not make on_sealed return more actions
        // or error; its frames are simply dropped.
        let cfg = BrokerConfig {
            egress_frames: 1,
            snapshot_every: 100,
            evict_after: 100,
        };
        let mut core = BrokerCore::new(cfg);
        let mut actions = Vec::new();
        core.on_client_connect(1, &[Topic::Features], &mut actions);
        for w in 1..=50 {
            actions.clear();
            core.on_sealed(sealed(w, vec![entry("a", w)]), &mut actions)
                .unwrap();
            assert!(actions.len() <= 1);
        }
        let t = core.client_totals(1).unwrap();
        assert_eq!(t.pushed, 1, "one frame accepted, the rest dropped");
        assert_eq!(t.dropped, 49);
    }

    #[test]
    fn chunked_input_reassembles_before_publication() {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions = Vec::new();
        core.on_client_connect(1, &[Topic::Features], &mut actions);
        let mut window = sealed(1, vec![entry("a", 5), entry("b", 3), entry("c", 2)]);
        let whole = window.pop().unwrap();
        let chunks: Vec<WindowState> = whole
            .topk
            .clone()
            .into_chunks(1)
            .into_iter()
            .map(|c| WindowState {
                upstream: 7,
                start: whole.start,
                length: whole.length,
                topk: c,
            })
            .collect();
        assert!(chunks.len() > 1);
        core.on_sealed(chunks, &mut actions).unwrap();
        match &sends_for(&actions, 1)[0] {
            Frame::Snapshot(w) => {
                assert_eq!(w.topk.chunks, 1);
                assert_eq!(w.topk.entries.len(), 3);
                assert_eq!(w.upstream, 0, "broker publishes the merged view");
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn meta_frames_reach_only_meta_subscribers() {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions = Vec::new();
        core.on_client_connect(1, &[Topic::Meta], &mut actions);
        core.on_client_connect(2, &[Topic::Topk], &mut actions);
        core.on_meta(600_000_000, b"line\n".to_vec(), &mut actions);
        assert_eq!(sends_for(&actions, 1).len(), 1);
        assert!(sends_for(&actions, 2).is_empty());
        match &sends_for(&actions, 1)[0] {
            Frame::Meta { start_us, bytes } => {
                assert_eq!(*start_us, 600_000_000);
                assert_eq!(bytes, b"line\n");
            }
            other => panic!("expected meta, got {other:?}"),
        }
    }

    #[test]
    fn finish_ledgers_every_departure_and_reports_conservation() {
        let mut core = BrokerCore::new(BrokerConfig::default());
        let mut actions = Vec::new();
        core.on_client_connect(1, &[], &mut actions);
        core.on_client_connect(2, &[], &mut actions);
        core.on_sealed(sealed(1, vec![entry("a", 5)]), &mut actions)
            .unwrap();
        core.on_drained(1, 1);
        core.on_client_gone(2, EvictReason::Gone);
        let report = core.finish(&mut actions);
        assert_eq!(report.clients_seen, 2);
        assert_eq!(report.departures.len(), 2);
        assert_eq!(
            report.frames_pushed,
            report.frames_delivered + report.undelivered,
            "ledger-wide conservation"
        );
        for rec in &report.departures {
            assert_eq!(rec.totals.pushed, rec.totals.delivered + rec.undelivered);
        }
        // Both clients got a Bye or were ledgered Gone.
        let byes = actions
            .iter()
            .filter(|a| {
                matches!(a, Action::Send { frame, .. }
                    if matches!(decode_payload(&frame[4..]), Ok(Frame::Bye)))
            })
            .count();
        assert_eq!(byes, 1, "only the still-connected client gets a Bye");
    }
}
