//! The sans-io subscriber kernel: frames in, consistent windows out.
//!
//! [`SubscriberCore`] folds a broker's frame stream back into
//! per-dataset window states. A snapshot installs unconditionally; a
//! delta applies only when its basis matches the held window — anything
//! else is a desync, surfaced as a typed error rather than a silently
//! wrong window. The oracle the crate's tests (and the chaos axis) pin:
//! after any prefix of a well-behaved stream, the held state for a
//! dataset is byte-identical to the broker's published window.

use std::collections::BTreeMap;

use feed::FeedError;
use sketchwire::TopKState;

use crate::codec::{EvictReason, Frame};
use crate::delta::{apply_delta, window_id_us};

/// One held dataset window.
#[derive(Debug, Clone, PartialEq)]
pub struct HeldWindow {
    /// Window identity, microseconds.
    pub window_us: u64,
    /// Window start, seconds of virtual time.
    pub start: f64,
    /// Window length, seconds.
    pub length: f64,
    /// The reassembled canonical state.
    pub state: TopKState,
}

/// Something the stream produced for the application.
#[derive(Debug, Clone, PartialEq)]
pub enum SubEvent {
    /// A dataset advanced to a new consistent window (via snapshot or
    /// delta — the caller cannot tell, which is the point).
    Window(HeldWindow),
    /// Meta TSV bytes for one window.
    Meta {
        /// Window start, microseconds.
        start_us: u64,
        /// Raw TSV bytes.
        bytes: Vec<u8>,
    },
    /// The broker ended the subscription.
    Evicted {
        /// Why.
        reason: EvictReason,
        /// Frames the broker had accepted but not delivered.
        undelivered: u64,
    },
    /// Clean end of stream.
    End,
}

/// A stream-level protocol violation (transport decode errors stay
/// [`FeedError`] and are raised by the frame reader, not here).
#[derive(Debug, Clone, PartialEq)]
pub enum SubError {
    /// A delta arrived whose basis does not match the held window.
    Desync {
        /// Dataset the delta was for.
        dataset: String,
        /// Window the subscriber holds (`None` = nothing yet).
        held_us: Option<u64>,
        /// Basis the delta requires.
        basis_us: u64,
    },
    /// A delta failed to apply (e.g. removes an unheld key).
    Apply(&'static str),
    /// A frame that has no business arriving mid-stream (second `Hello`,
    /// a client-only frame from the broker, ...).
    Unexpected(&'static str),
}

impl std::fmt::Display for SubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubError::Desync {
                dataset,
                held_us,
                basis_us,
            } => write!(
                f,
                "delta desync on {dataset}: held {held_us:?}, basis {basis_us}"
            ),
            SubError::Apply(what) => write!(f, "delta apply failed: {what}"),
            SubError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for SubError {}

/// The sans-io subscriber. Feed it decoded frames; it yields events and
/// keeps the per-dataset current state queryable.
#[derive(Debug, Default)]
pub struct SubscriberCore {
    held: BTreeMap<String, HeldWindow>,
    hello_seen: bool,
    snapshots_applied: u64,
    deltas_applied: u64,
}

impl SubscriberCore {
    /// Fresh subscriber (expects the broker's `Hello` first).
    pub fn new() -> SubscriberCore {
        SubscriberCore::default()
    }

    /// The held window for `dataset`, if any.
    pub fn held(&self, dataset: &str) -> Option<&HeldWindow> {
        self.held.get(dataset)
    }

    /// All held windows, dataset-ascending.
    pub fn held_windows(&self) -> impl Iterator<Item = (&String, &HeldWindow)> {
        self.held.iter()
    }

    /// Snapshots installed so far.
    pub fn snapshots_applied(&self) -> u64 {
        self.snapshots_applied
    }

    /// Deltas applied so far.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Fold one decoded frame. `Ok(None)` means the frame carried no
    /// application-visible event (the handshake `Hello`).
    pub fn on_frame(&mut self, frame: Frame) -> Result<Option<SubEvent>, SubError> {
        match frame {
            Frame::Hello { .. } => {
                if self.hello_seen {
                    return Err(SubError::Unexpected("second hello"));
                }
                self.hello_seen = true;
                Ok(None)
            }
            Frame::Snapshot(ws) => {
                let window_us = window_id_us(ws.start);
                let held = HeldWindow {
                    window_us,
                    start: ws.start,
                    length: ws.length,
                    state: ws.topk,
                };
                self.held.insert(held.state.dataset.clone(), held.clone());
                self.snapshots_applied += 1;
                Ok(Some(SubEvent::Window(held)))
            }
            Frame::Delta(d) => {
                let prev = match self.held.get(&d.dataset) {
                    Some(h) if h.window_us == d.prev_window_us => h,
                    other => {
                        return Err(SubError::Desync {
                            dataset: d.dataset.clone(),
                            held_us: other.map(|h| h.window_us),
                            basis_us: d.prev_window_us,
                        })
                    }
                };
                let state = apply_delta(&prev.state, &d).map_err(SubError::Apply)?;
                let held = HeldWindow {
                    window_us: d.window_us,
                    start: d.start,
                    length: d.length,
                    state,
                };
                self.held.insert(d.dataset.clone(), held.clone());
                self.deltas_applied += 1;
                Ok(Some(SubEvent::Window(held)))
            }
            Frame::Meta { start_us, bytes } => Ok(Some(SubEvent::Meta { start_us, bytes })),
            Frame::Evict {
                reason,
                undelivered,
            } => Ok(Some(SubEvent::Evicted {
                reason,
                undelivered,
            })),
            Frame::Bye => Ok(Some(SubEvent::End)),
            Frame::Subscribe { .. } => Err(SubError::Unexpected("subscribe from broker")),
        }
    }
}

/// Convenience for tests and tools: raise decode errors and protocol
/// violations uniformly as `std::io::Error`.
pub(crate) fn io_err(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Re-exported so shells can map transport errors consistently.
pub(crate) fn feed_io_err(e: FeedError) -> std::io::Error {
    io_err(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{Action, BrokerConfig, BrokerCore};
    use crate::codec::{FrameReader, Topic};
    use sketchwire::{FeatureState, TopKEntry, WindowState};

    fn entry(key: &str, count: u64) -> TopKEntry {
        TopKEntry {
            key: key.to_string(),
            count,
            error: 0,
            inserted_at: 0.0,
            features: FeatureState {
                adds: vec![count],
                maxes: Vec::new(),
                hlls: Vec::new(),
                source_cap: 4,
                sources: vec![1],
                tops: Vec::new(),
                hists: Vec::new(),
            },
        }
    }

    fn sealed(window: u64, entries: Vec<TopKEntry>) -> Vec<WindowState> {
        let observed: u64 = entries.iter().map(|e| e.count).sum();
        vec![WindowState {
            upstream: 3,
            start: (window * 600) as f64,
            length: 600.0,
            topk: sketchwire::TopKState {
                dataset: "aafqdn".to_string(),
                capacity: 8,
                observed,
                min_count: 0,
                error_bound: observed / 8,
                evictions: 0,
                kept: observed,
                dropped: 0,
                filtered: 0,
                chunk: 0,
                chunks: 1,
                entries,
                gate: None,
            },
        }]
    }

    /// Drive a broker and a subscriber end to end in memory: every frame
    /// the broker emits for client 1 is decoded and folded, and after
    /// each window the subscriber's held state must equal the broker's
    /// published window exactly.
    #[test]
    fn subscriber_tracks_broker_exactly() {
        let mut broker = BrokerCore::new(BrokerConfig::default());
        let mut sub = SubscriberCore::new();
        let mut actions = Vec::new();
        broker.on_client_connect(1, &[Topic::Features], &mut actions);

        let windows = [
            vec![entry("a", 5)],
            vec![entry("a", 7), entry("b", 2)],
            vec![entry("b", 9), entry("c", 1)],
            vec![entry("b", 9), entry("c", 1)],
            vec![entry("z", 100)],
        ];
        for (i, entries) in windows.iter().enumerate() {
            actions.clear();
            let states = sealed(i as u64 + 1, entries.clone());
            let expect = crate::delta::canonicalize(states[0].topk.clone());
            broker.on_sealed(states, &mut actions).unwrap();
            let mut rd = FrameReader::new();
            for a in &actions {
                if let Action::Send { client: 1, frame } = a {
                    rd.push(frame);
                }
            }
            let mut last = None;
            while let Some(f) = rd.next_frame().unwrap() {
                last = sub.on_frame(f).unwrap();
            }
            match last {
                Some(SubEvent::Window(h)) => assert_eq!(h.state, expect, "window {i}"),
                other => panic!("expected a window event, got {other:?}"),
            }
            broker.on_drained(1, 1);
        }
        assert_eq!(sub.snapshots_applied(), 1);
        assert_eq!(sub.deltas_applied(), 4);
    }

    #[test]
    fn delta_without_basis_is_a_desync() {
        let mut sub = SubscriberCore::new();
        let d = crate::delta::WindowDelta {
            dataset: "aafqdn".to_string(),
            prev_window_us: 600_000_000,
            window_us: 1_200_000_000,
            start: 1200.0,
            length: 600.0,
            capacity: 8,
            observed: 1,
            min_count: 0,
            error_bound: 0,
            evictions: 0,
            kept: 1,
            dropped: 0,
            filtered: 0,
            changed: vec![entry("a", 1)],
            removed: Vec::new(),
        };
        match sub.on_frame(Frame::Delta(Box::new(d))) {
            Err(SubError::Desync {
                held_us: None,
                basis_us: 600_000_000,
                ..
            }) => {}
            other => panic!("expected desync, got {other:?}"),
        }
    }

    #[test]
    fn terminal_frames_surface_as_events() {
        let mut sub = SubscriberCore::new();
        assert_eq!(
            sub.on_frame(Frame::Evict {
                reason: EvictReason::TooSlow,
                undelivered: 3
            })
            .unwrap(),
            Some(SubEvent::Evicted {
                reason: EvictReason::TooSlow,
                undelivered: 3
            })
        );
        assert_eq!(sub.on_frame(Frame::Bye).unwrap(), Some(SubEvent::End));
    }
}
