//! Blocking subscription client: a thin socket shell around
//! [`SubscriberCore`], shared by `dnsobs subscribe` and the end-to-end
//! tests.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use feed::FeedItem;
use sketchwire::WindowState;

use crate::codec::{encode_frame_vec, Frame, FrameReader, Topic, PROTOCOL_VERSION};
use crate::subscriber::{feed_io_err, io_err, SubEvent, SubscriberCore};

/// A connected, handshaken subscriber.
pub struct SubscribeClient {
    stream: TcpStream,
    rd: FrameReader,
    core: SubscriberCore,
    done: bool,
}

impl SubscribeClient {
    /// Connect, send `Hello` + `Subscribe`, and return a client ready to
    /// pull events. An empty topic list subscribes to everything at full
    /// fidelity.
    pub fn connect(addr: impl ToSocketAddrs, topics: &[Topic]) -> std::io::Result<SubscribeClient> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.write_all(&encode_frame_vec(&Frame::Hello {
            protocol: PROTOCOL_VERSION,
            item_version: WindowState::ITEM_VERSION,
        }))?;
        stream.write_all(&encode_frame_vec(&Frame::Subscribe {
            topics: topics.to_vec(),
        }))?;
        Ok(SubscribeClient {
            stream,
            rd: FrameReader::new(),
            core: SubscriberCore::new(),
            done: false,
        })
    }

    /// The underlying sans-io subscriber (held windows, counters).
    pub fn core(&self) -> &SubscriberCore {
        &self.core
    }

    /// Pull the next event, blocking on the socket as needed. `Ok(None)`
    /// means the stream is over (after `End`/`Evicted`, or on EOF).
    /// Decode errors and protocol violations surface as
    /// `std::io::ErrorKind::InvalidData`.
    pub fn next_event(&mut self) -> std::io::Result<Option<SubEvent>> {
        if self.done {
            return Ok(None);
        }
        let mut buf = [0u8; 16384];
        loop {
            while let Some(frame) = self.rd.next_frame().map_err(feed_io_err)? {
                match self.core.on_frame(frame).map_err(io_err)? {
                    None => continue,
                    Some(ev @ (SubEvent::End | SubEvent::Evicted { .. })) => {
                        self.done = true;
                        return Ok(Some(ev));
                    }
                    Some(ev) => return Ok(Some(ev)),
                }
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                self.done = true;
                return Ok(None);
            }
            self.rd.push(&buf[..n]);
        }
    }

    /// Politely leave: send `Bye` and close. Subsequent `next_event`
    /// calls return `Ok(None)`.
    pub fn bye(mut self) -> std::io::Result<()> {
        self.stream.write_all(&encode_frame_vec(&Frame::Bye))?;
        self.stream.shutdown(Shutdown::Both)?;
        self.done = true;
        Ok(())
    }
}
