//! Live subscription serving tier: delta-encoded window pub/sub.
//!
//! The observatory's existing outputs are batch-shaped — TSV window dumps
//! and the columnar store. This crate adds the live path: a broker sits
//! behind the pipeline/aggregator *seal* path, keeps the current sealed
//! state per dataset, and pushes it to many concurrent subscribers as a
//! **snapshot then deltas** stream. A late joiner gets one snapshot per
//! dataset and is immediately consistent; steady-state traffic is the
//! per-window diff (changed entries + removed keys), which for a stable
//! Top-k is a small fraction of the full state.
//!
//! The layering mirrors the rest of the workspace:
//!
//! * [`codec`] — the versioned, CRC-framed wire format (`DOP1`), the same
//!   discipline as the sensor→collector feed codec;
//! * [`delta`] — canonical window states and the delta law
//!   `apply(prev, diff(prev, next)) == next` the proptests pin;
//! * [`broker`] — the sans-io [`BrokerCore`]: sealed windows in, per-client
//!   send/evict actions out, with bounded egress accounting so one slow
//!   subscriber can never stall the seal path;
//! * [`subscriber`] — the sans-io [`SubscriberCore`] that folds frames back
//!   into per-dataset window states;
//! * [`server`] / [`client`] — thin threaded std::net front ends over the
//!   two cores (`dnsobs … --serve ADDR` and `dnsobs subscribe`).
//!
//! Both cores are event-in/decision-out with injected time, so the chaos
//! harness drives broker and subscribers in the same deterministic loop it
//! uses for the feed and pipeline tiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod client;
pub mod codec;
pub mod delta;
pub mod server;
pub mod subscriber;

pub use broker::{Action, BrokerConfig, BrokerCore, BrokerReport, ClientTotals, EvictionRecord};
pub use client::SubscribeClient;
pub use codec::{
    encode_frame, encode_frame_vec, EvictReason, Frame, FrameReader, Topic, MAGIC, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use delta::{
    apply_delta, canonicalize, diff_states, strip_features, window_id_us, WindowDelta,
};
pub use server::{Ingest, ServeConfig, Server, ServerHandle};
pub use subscriber::{SubError, SubEvent, SubscriberCore};
