//! End-to-end serving-tier test over a real loopback socket: server,
//! broker thread, reader/writer threads, blocking client — asserting the
//! subscriber's reassembled windows equal the published states exactly,
//! including a mid-stream reconnect.

use pubsub::{ServeConfig, Server, SubEvent, SubscribeClient, Topic};
use sketchwire::{FeatureState, TopKEntry, TopKState, WindowState};
use telemetry::{Registry, TraceRing};

fn entry(key: &str, count: u64) -> TopKEntry {
    TopKEntry {
        key: key.to_string(),
        count,
        error: 0,
        inserted_at: 0.0,
        features: FeatureState {
            adds: vec![count],
            maxes: vec![count],
            hlls: Vec::new(),
            source_cap: 4,
            sources: vec![2],
            tops: Vec::new(),
            hists: Vec::new(),
        },
    }
}

fn sealed(window: u64, entries: Vec<TopKEntry>) -> Vec<WindowState> {
    let observed: u64 = entries.iter().map(|e| e.count).sum();
    vec![WindowState {
        upstream: 9,
        start: (window * 600) as f64,
        length: 600.0,
        topk: TopKState {
            dataset: "esld".to_string(),
            capacity: 16,
            observed,
            min_count: 0,
            error_bound: observed / 16,
            evictions: 0,
            kept: observed,
            dropped: 0,
            filtered: 0,
            chunk: 0,
            chunks: 1,
            entries,
            gate: None,
        },
    }]
}

fn expect_window(client: &mut SubscribeClient, want: &TopKState) {
    loop {
        match client.next_event().expect("stream healthy") {
            Some(SubEvent::Window(h)) => {
                assert_eq!(&h.state, want);
                return;
            }
            Some(SubEvent::Meta { .. }) => continue,
            other => panic!("expected a window event, got {other:?}"),
        }
    }
}

#[test]
fn live_snapshot_delta_and_reconnect() {
    let registry = Registry::new();
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServeConfig::default(),
        &registry,
        TraceRing::disabled(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let mut handle = server.take_handle().expect("first take");
    assert!(server.take_handle().is_none(), "single producer");

    let mut client = SubscribeClient::connect(addr, &[Topic::Features]).expect("connect");

    let w1 = sealed(1, vec![entry("a", 5), entry("b", 2)]);
    let want1 = pubsub::canonicalize(w1[0].topk.clone());
    assert!(handle.publish_windows(w1));
    expect_window(&mut client, &want1);

    let w2 = sealed(2, vec![entry("a", 9), entry("c", 4)]);
    let want2 = pubsub::canonicalize(w2[0].topk.clone());
    assert!(handle.publish_windows(w2));
    expect_window(&mut client, &want2);
    assert!(handle.publish_meta(600_000_000, b"meta\tline\n".to_vec()));

    // Mid-stream reconnect: a fresh client is consistent from its very
    // first frame, without waiting for the next seal.
    client.bye().expect("clean bye");
    let mut late = SubscribeClient::connect(addr, &[Topic::Features]).expect("reconnect");
    expect_window(&mut late, &want2);
    assert_eq!(late.core().snapshots_applied(), 1);
    assert_eq!(late.core().deltas_applied(), 0);

    let w3 = sealed(3, vec![entry("a", 9), entry("c", 4), entry("d", 1)]);
    let want3 = pubsub::canonicalize(w3[0].topk.clone());
    assert!(handle.publish_windows(w3));
    expect_window(&mut late, &want3);

    drop(handle);
    let report = server.finish();
    assert_eq!(report.clients_seen, 2);
    for rec in &report.departures {
        assert_eq!(
            rec.totals.pushed,
            rec.totals.delivered + rec.undelivered,
            "per-client conservation on {rec:?}"
        );
    }
    // The still-connected client ends with a Bye; events after the end
    // report the stream as over.
    loop {
        match late.next_event().expect("drain to end") {
            Some(SubEvent::End) | None => break,
            Some(_) => continue,
        }
    }
}

#[test]
fn topk_topic_over_the_wire_strips_features() {
    let registry = Registry::new();
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServeConfig::default(),
        &registry,
        TraceRing::disabled(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let mut handle = server.take_handle().expect("take");
    let mut client = SubscribeClient::connect(addr, &[Topic::Topk]).expect("connect");
    assert!(handle.publish_windows(sealed(1, vec![entry("a", 5)])));
    match client.next_event().expect("stream healthy") {
        Some(SubEvent::Window(h)) => {
            assert_eq!(h.state.entries[0].count, 5);
            assert!(h.state.entries[0].features.adds.is_empty());
        }
        other => panic!("expected a window, got {other:?}"),
    }
    drop(handle);
    let report = server.finish();
    assert_eq!(
        report.frames_pushed,
        report.frames_delivered + report.undelivered
    );
}
