//! Property tests for the subscription wire format and the delta
//! algebra, mirroring `sketchwire/tests/prop.rs`:
//!
//! * **Codec totality**: every frame round-trips exactly; arbitrary
//!   truncation or corruption of an encoded stream is a typed error or
//!   an identical decode — never a panic, never a silently different
//!   frame.
//! * **Delta algebra**: for any window sequence, a snapshot followed by
//!   the per-window deltas reassembles each window's canonical state
//!   exactly — the subscriber's view equals the direct fold.

use proptest::prelude::*;
use pubsub::{
    apply_delta, canonicalize, diff_states, strip_features, EvictReason, Frame, FrameReader, Topic,
    WindowDelta,
};
use sketchwire::{FeatureState, TopKEntry, TopKState, WindowState};

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

prop_compose! {
    fn arb_features()(
        adds in prop::collection::vec(0u64..1_000, 0..3),
        maxes in prop::collection::vec(0u64..255, 0..2),
        raw_sources in prop::collection::vec(any::<u16>(), 0..4),
    ) -> FeatureState {
        let mut sources = raw_sources;
        sources.sort_unstable();
        sources.dedup();
        FeatureState {
            adds,
            maxes,
            hlls: Vec::new(),
            source_cap: 8,
            sources,
            tops: Vec::new(),
            hists: Vec::new(),
        }
    }
}

// Tracker state over a small key pool so consecutive samples overlap on
// some keys (unchanged / changed) and differ on others (added /
// removed) — every delta path gets exercised.
prop_compose! {
    fn arb_topk()(
        raw_entries in prop::collection::vec(
            (0usize..8, 1u64..500, 0u64..20, arb_features()),
            0..=6,
        ),
        capacity in 1u64..64,
        extra_observed in 0u64..1_000,
        min_c in 0u64..40,
        bound_extra in 0u64..100,
        evictions in 0u64..50,
        kept in 0u64..1_000,
        dropped in 0u64..100,
        filtered in 0u64..100,
    ) -> TopKState {
        let mut entries: Vec<TopKEntry> = Vec::new();
        for (idx, count, err, features) in raw_entries {
            let key = format!("k{idx}");
            if entries.iter().any(|e| e.key == key) {
                continue;
            }
            entries.push(TopKEntry {
                key,
                count,
                error: err.min(count),
                inserted_at: 0.0,
                features,
            });
        }
        let max_count = entries.iter().map(|e| e.count).max().unwrap_or(0);
        let observed = (max_count + extra_observed).max(entries.len() as u64);
        let min_count = min_c.min(observed);
        for e in &mut entries {
            e.error = e.error.min(min_count);
        }
        TopKState {
            dataset: "esld".to_string(),
            capacity,
            observed,
            min_count,
            error_bound: min_count + bound_extra,
            evictions,
            kept,
            dropped,
            filtered,
            chunk: 0,
            chunks: 1,
            entries,
            gate: None,
        }
    }
}

prop_compose! {
    fn arb_window(window: u64)(topk in arb_topk()) -> WindowState {
        WindowState {
            upstream: 0,
            start: window as f64 * 600.0,
            length: 600.0,
            topk,
        }
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        // Hello is version-checked at decode time, so only the live
        // protocol round-trips; mismatches are covered by unit tests.
        Just(Frame::Hello {
            protocol: pubsub::PROTOCOL_VERSION,
            item_version: <WindowState as feed::FeedItem>::ITEM_VERSION,
        }),
        prop::collection::vec(
            prop_oneof![
                Just(Topic::Topk),
                Just(Topic::Features),
                Just(Topic::Meta),
                "[a-z]{1,8}".prop_map(Topic::Dataset),
            ],
            0..4,
        )
        .prop_map(|topics| Frame::Subscribe { topics }),
        arb_window(3).prop_map(|ws| Frame::Snapshot(Box::new(ws))),
        (arb_topk(), arb_topk()).prop_map(|(prev, next)| {
            let prev = canonicalize(prev);
            let next = canonicalize(next);
            Frame::Delta(Box::new(diff_states(
                600_000_000,
                &prev,
                1_200_000_000,
                1200.0,
                600.0,
                &next,
            )))
        }),
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(start, bytes)| {
            Frame::Meta {
                start_us: start as u64,
                bytes,
            }
        }),
        (0u64..1_000).prop_map(|undelivered| Frame::Evict {
            reason: EvictReason::TooSlow,
            undelivered,
        }),
        Just(Frame::Bye),
    ]
}

fn encode(frame: &Frame) -> Vec<u8> {
    pubsub::encode_frame_vec(frame)
}

fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, feed::FeedError> {
    let mut rd = FrameReader::new();
    rd.push(bytes);
    let mut out = Vec::new();
    while let Some(f) = rd.next_frame()? {
        out.push(f);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- codec ---------------------------------------------------------

    #[test]
    fn frames_roundtrip(frame in arb_frame()) {
        let back = decode_all(&encode(&frame)).expect("valid frame decodes");
        prop_assert_eq!(back, vec![frame]);
    }

    #[test]
    fn split_delivery_is_invisible(frame in arb_frame(), split in any::<u16>()) {
        // Reassembly across arbitrary read boundaries yields the same
        // frame as one contiguous push.
        let buf = encode(&frame);
        let cut = split as usize % buf.len();
        let mut rd = FrameReader::new();
        rd.push(&buf[..cut]);
        prop_assert!(matches!(rd.next_frame(), Ok(None)) || cut == buf.len());
        rd.push(&buf[cut..]);
        let got = rd.next_frame().expect("whole frame decodes").expect("one frame");
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn truncation_is_detected(frame in arb_frame(), cut in any::<u16>()) {
        // A truncated stream never yields a frame: the reader waits for
        // more bytes (the length prefix says the frame is incomplete).
        let buf = encode(&frame);
        let cut = cut as usize % buf.len();
        // A typed error is also acceptable; a decoded frame is not.
        if let Ok(frames) = decode_all(&buf[..cut]) {
            prop_assert!(frames.is_empty(), "truncated prefix produced a frame");
        }
    }

    #[test]
    fn corruption_is_detected(a in arb_frame(), b in arb_frame(), pos in any::<u16>(), flip in 1u8..=255) {
        // Flip one byte anywhere in a two-frame stream. Allowed
        // outcomes: a typed error, or a decode that only contains
        // frames identical to the originals (CRC realignment may
        // salvage the untouched frame). A silently *different* frame is
        // the one forbidden outcome.
        let mut buf = encode(&a);
        buf.extend_from_slice(&encode(&b));
        let pos = pos as usize % buf.len();
        buf[pos] ^= flip;
        if let Ok(frames) = decode_all(&buf) {
            for f in frames {
                prop_assert!(f == a || f == b, "corruption produced a novel frame");
            }
        }
    }

    // --- delta algebra -------------------------------------------------

    #[test]
    fn delta_roundtrips_on_the_wire(prev in arb_topk(), next in arb_topk()) {
        let prev = canonicalize(prev);
        let next = canonicalize(next);
        let d = diff_states(600_000_000, &prev, 1_200_000_000, 1200.0, 600.0, &next);
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let mut r = feed::ByteReader::new(&buf);
        let back = WindowDelta::decode(&mut r).expect("valid delta decodes");
        prop_assert!(r.is_empty(), "decode must consume every byte");
        prop_assert_eq!(back, d);
    }

    #[test]
    fn snapshot_plus_deltas_equals_direct_fold(
        states in prop::collection::vec(arb_topk(), 1..6),
    ) {
        // The subscriber's state machine: install the first window as a
        // snapshot, then apply one delta per later window. After every
        // step the reassembled state must equal the canonical direct
        // state — including the features, which reset each window.
        let canonical: Vec<TopKState> = states.into_iter().map(canonicalize).collect();
        let mut held = canonical[0].clone();
        for (i, next) in canonical.iter().enumerate().skip(1) {
            let prev_us = i as u64 * 600_000_000;
            let next_us = (i as u64 + 1) * 600_000_000;
            let d = diff_states(
                prev_us,
                &held,
                next_us,
                next_us as f64 / 1e6,
                600.0,
                next,
            );
            held = apply_delta(&held, &d).expect("in-sequence delta applies");
            prop_assert_eq!(&held, next, "window {} diverged", i);
        }
    }

    #[test]
    fn stripped_states_diff_and_apply_too(prev in arb_topk(), next in arb_topk()) {
        // The topk topic replays the same algebra over feature-stripped
        // states: stripping then diffing equals diffing the stripped.
        let prev = canonicalize(strip_features(&prev));
        let next = canonicalize(strip_features(&next));
        let d = diff_states(600_000_000, &prev, 1_200_000_000, 1200.0, 600.0, &next);
        let got = apply_delta(&prev, &d).expect("stripped delta applies");
        prop_assert_eq!(got, next);
    }
}
