//! `psl` — Public Suffix List rules and effective-TLD extraction.
//!
//! The paper defines (§2): *"effective TLDs" (eTLDs) refer to the ICANN
//! domains listed in the Public Suffix List (e.g. `.co.uk`), and
//! "effective SLD" (eSLD) is simply a label directly under an eTLD (e.g.
//! `bbc.co.uk`)*. The `etld` and `esld` Top-k datasets aggregate on these
//! keys, so extraction must be fast and allocation-light.
//!
//! This crate implements the publicsuffix.org matching algorithm — normal
//! rules, wildcard rules (`*.ck`) and exception rules (`!www.ck`) — over a
//! rule set supplied by the caller, plus an embedded snapshot of the most
//! common ICANN suffixes ([`Psl::embedded`]) sufficient for the simulated
//! address plan and for realistic tests.
//!
//! # Example
//!
//! ```
//! use psl::Psl;
//! use dnswire::Name;
//!
//! let psl = Psl::embedded();
//! let name = Name::from_ascii("www.bbc.co.uk").unwrap();
//! assert_eq!(psl.etld(&name).unwrap().to_ascii(), "co.uk");
//! assert_eq!(psl.esld(&name).unwrap().to_ascii(), "bbc.co.uk");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dnswire::Name;
use std::collections::HashMap;

mod rules;

/// Outcome of matching a name against the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleKind {
    /// Plain suffix rule, e.g. `co.uk`.
    Normal,
    /// Wildcard rule `*.<suffix>`: every direct child of `<suffix>` is a
    /// public suffix.
    Wildcard,
    /// Exception `!<name>`: `<name>` is *not* a public suffix even though
    /// a wildcard would make it one.
    Exception,
}

/// A compiled Public Suffix List.
#[derive(Debug, Clone)]
pub struct Psl {
    /// Lowercase dotted suffix → rule kind. Wildcard rules are stored
    /// under their base (the part after `*.`); exceptions under the full
    /// name (without `!`).
    rules: HashMap<String, RuleKind>,
    /// Longest rule length in labels, to bound the matching walk.
    max_labels: usize,
}

impl Psl {
    /// Compile a rule set from presentation-format lines.
    ///
    /// Accepts the publicsuffix.org file syntax: one rule per line,
    /// `*.` prefix for wildcards, `!` prefix for exceptions; empty lines
    /// and `//` comments are ignored.
    pub fn from_rules<'a, I: IntoIterator<Item = &'a str>>(lines: I) -> Psl {
        let mut rules = HashMap::new();
        let mut max_labels = 1;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            let (kind, body) = if let Some(rest) = line.strip_prefix('!') {
                (RuleKind::Exception, rest)
            } else if let Some(rest) = line.strip_prefix("*.") {
                (RuleKind::Wildcard, rest)
            } else {
                (RuleKind::Normal, line)
            };
            let body = body.trim_end_matches('.').to_ascii_lowercase();
            if body.is_empty() {
                continue;
            }
            let labels = body.split('.').count() + usize::from(kind == RuleKind::Wildcard);
            max_labels = max_labels.max(labels);
            rules.insert(body, kind);
        }
        Psl { rules, max_labels }
    }

    /// The embedded snapshot of common ICANN suffixes (see
    /// [`rules::EMBEDDED_RULES`] for the list).
    pub fn embedded() -> Psl {
        Psl::from_rules(rules::EMBEDDED_RULES.iter().copied())
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The effective TLD (public suffix) of `name`, or `None` when the
    /// name itself is a public suffix or the root.
    ///
    /// Per the publicsuffix.org algorithm, an unlisted TLD matches the
    /// implicit `*` rule, so `example.zzztld` has eTLD `zzztld`.
    pub fn etld(&self, name: &Name) -> Option<Name> {
        let labels = self.suffix_len(name)?;
        // A name that *is* its own suffix has no domain below it.
        if labels >= name.label_count() {
            return None;
        }
        Some(name.suffix(labels))
    }

    /// The effective SLD (registrable domain): one label below the eTLD.
    pub fn esld(&self, name: &Name) -> Option<Name> {
        let labels = self.suffix_len(name)?;
        if labels + 1 > name.label_count() {
            return None;
        }
        Some(name.suffix(labels + 1))
    }

    /// True if `name` exactly equals some public suffix.
    pub fn is_public_suffix(&self, name: &Name) -> bool {
        if name.is_root() {
            return false;
        }
        self.suffix_len(name)
            .map(|n| n == name.label_count())
            .unwrap_or(false)
    }

    /// Length (in labels) of the public suffix of `name`.
    fn suffix_len(&self, name: &Name) -> Option<usize> {
        let total = name.label_count();
        if total == 0 {
            return None;
        }
        // Collect lowered labels right-to-left once.
        let labels: Vec<String> = name
            .labels()
            .map(|l| String::from_utf8_lossy(l.as_bytes()).to_ascii_lowercase())
            .collect();

        let mut best = 1; // implicit "*" rule: the bare TLD
        let upper = total.min(self.max_labels);
        let mut candidate = String::new();
        for take in 1..=upper {
            // Build the dotted suffix of `take` labels.
            candidate.clear();
            for (i, label) in labels[total - take..].iter().enumerate() {
                if i > 0 {
                    candidate.push('.');
                }
                candidate.push_str(label);
            }
            match self.rules.get(candidate.as_str()) {
                Some(RuleKind::Normal) => best = best.max(take),
                Some(RuleKind::Wildcard) => best = best.max(take + 1),
                Some(RuleKind::Exception) => {
                    // Exception wins immediately: the public suffix is one
                    // label shorter than the exception name.
                    return Some(take - 1);
                }
                None => {}
            }
        }
        Some(best.min(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    #[test]
    fn basic_single_label_tld() {
        let psl = Psl::embedded();
        assert_eq!(psl.etld(&name("www.example.com")).unwrap(), name("com"));
        assert_eq!(
            psl.esld(&name("www.example.com")).unwrap(),
            name("example.com")
        );
    }

    #[test]
    fn multi_label_suffix() {
        let psl = Psl::embedded();
        assert_eq!(psl.etld(&name("www.bbc.co.uk")).unwrap(), name("co.uk"));
        assert_eq!(psl.esld(&name("www.bbc.co.uk")).unwrap(), name("bbc.co.uk"));
        assert_eq!(psl.etld(&name("x.org.il")).unwrap(), name("org.il"));
        assert_eq!(psl.etld(&name("a.b.net.me")).unwrap(), name("net.me"));
    }

    #[test]
    fn suffix_itself_has_no_etld() {
        let psl = Psl::embedded();
        assert_eq!(psl.etld(&name("co.uk")), None);
        assert_eq!(psl.esld(&name("co.uk")), None);
        assert_eq!(psl.etld(&name("com")), None);
        assert!(psl.is_public_suffix(&name("co.uk")));
        assert!(psl.is_public_suffix(&name("com")));
        assert!(!psl.is_public_suffix(&name("example.com")));
    }

    #[test]
    fn root_has_nothing() {
        let psl = Psl::embedded();
        assert_eq!(psl.etld(&Name::root()), None);
        assert_eq!(psl.esld(&Name::root()), None);
        assert!(!psl.is_public_suffix(&Name::root()));
    }

    #[test]
    fn unlisted_tld_uses_implicit_star() {
        let psl = Psl::embedded();
        assert_eq!(psl.etld(&name("foo.zzztld")).unwrap(), name("zzztld"));
        assert_eq!(psl.esld(&name("a.foo.zzztld")).unwrap(), name("foo.zzztld"));
    }

    #[test]
    fn wildcard_rules() {
        let psl = Psl::from_rules(["com", "*.ck", "!www.ck"]);
        // Every child of .ck is a public suffix...
        assert_eq!(psl.etld(&name("shop.foo.ck")).unwrap(), name("foo.ck"));
        assert_eq!(
            psl.esld(&name("x.shop.foo.ck")).unwrap(),
            name("shop.foo.ck")
        );
        // ...except www.ck, whose registrable domain is www.ck itself.
        assert_eq!(psl.etld(&name("www.ck")).unwrap(), name("ck"));
        assert_eq!(psl.esld(&name("a.www.ck")).unwrap(), name("www.ck"));
    }

    #[test]
    fn case_insensitive_matching() {
        let psl = Psl::embedded();
        assert_eq!(psl.etld(&name("WWW.BBC.CO.UK")).unwrap(), name("co.uk"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let psl = Psl::from_rules(["// comment", "", "com", "  co.uk  "]);
        assert_eq!(psl.len(), 2);
        assert_eq!(psl.etld(&name("a.co.uk")).unwrap(), name("co.uk"));
    }

    #[test]
    fn esld_of_direct_child_of_etld() {
        let psl = Psl::embedded();
        // bbc.co.uk is an eSLD: its own esld() is itself.
        assert_eq!(psl.esld(&name("bbc.co.uk")).unwrap(), name("bbc.co.uk"));
        // One label under com.
        assert_eq!(psl.esld(&name("example.com")).unwrap(), name("example.com"));
    }

    #[test]
    fn embedded_has_reasonable_size() {
        let psl = Psl::embedded();
        assert!(psl.len() > 100, "embedded PSL too small: {}", psl.len());
        assert!(!psl.is_empty());
    }
}
