//! Embedded snapshot of common ICANN public-suffix rules.
//!
//! This is a deliberately compact subset of the publicsuffix.org list:
//! every gTLD and ccTLD used by the simulated address plan, the classic
//! multi-label ccTLD families (uk, au, jp, br, nz, za, il, me, ...), the
//! `.arpa` reverse-DNS suffixes, and the wildcard/exception pair for `.ck`
//! that the PSL algorithm is traditionally tested against. Production
//! deployments should load the full list with [`crate::Psl::from_rules`].

/// One rule per entry, publicsuffix.org syntax.
pub const EMBEDDED_RULES: &[&str] = &[
    // --- Generic TLDs -----------------------------------------------------
    "com", "net", "org", "info", "biz", "name", "pro", "mobi", "asia",
    "edu", "gov", "mil", "int", "aero", "coop", "museum", "jobs", "travel",
    "xyz", "top", "site", "online", "club", "shop", "app", "dev", "page",
    "cloud", "live", "store", "tech", "space", "fun", "icu", "vip", "work",
    "link", "win", "loan", "men", "download", "stream", "date", "racing",
    "io", "co", "me", "tv", "cc", "ws", "blog", "wiki", "news", "zone",
    // --- .arpa (reverse DNS, per the PTR analysis) -------------------------
    "arpa", "in-addr.arpa", "ip6.arpa",
    // --- Country codes, single label --------------------------------------
    "us", "ca", "mx", "de", "fr", "nl", "be", "ch", "at", "it", "es", "pt",
    "se", "no", "dk", "fi", "pl", "cz", "sk", "hu", "ro", "bg", "gr", "ie",
    "ru", "ua", "by", "kz", "tr", "sa", "ae", "ir", "cn", "hk", "tw", "sg",
    "my", "th", "vn", "ph", "id", "in", "pk", "bd", "lk", "kr", "jp", "au",
    "nz", "za", "ng", "ke", "eg", "ma", "br", "ar", "cl", "pe", "ve", "uy",
    "is", "lt", "lv", "ee", "si", "hr", "rs", "md", "ge", "am", "az", "uk",
    "il", "ck",
    // --- United Kingdom ----------------------------------------------------
    "co.uk", "org.uk", "me.uk", "ltd.uk", "plc.uk", "net.uk", "sch.uk",
    "ac.uk", "gov.uk", "nhs.uk", "police.uk",
    // --- Australia ----------------------------------------------------------
    "com.au", "net.au", "org.au", "edu.au", "gov.au", "asn.au", "id.au",
    // --- Japan ---------------------------------------------------------------
    "co.jp", "ne.jp", "or.jp", "ac.jp", "ad.jp", "ed.jp", "go.jp", "gr.jp",
    "lg.jp",
    // --- Brazil -------------------------------------------------------------
    "com.br", "net.br", "org.br", "gov.br", "edu.br", "blog.br", "eco.br",
    // --- New Zealand ---------------------------------------------------------
    "co.nz", "net.nz", "org.nz", "govt.nz", "ac.nz", "school.nz", "geek.nz",
    // --- South Africa ---------------------------------------------------------
    "co.za", "net.za", "org.za", "gov.za", "ac.za", "web.za",
    // --- Israel (the paper's .org.il example) -----------------------------
    "co.il", "org.il", "net.il", "ac.il", "gov.il", "muni.il", "k12.il",
    // --- Montenegro (.me hosts .net.me, per the paper's §3.6) -------------
    "co.me", "net.me", "org.me", "edu.me", "ac.me", "gov.me", "its.me",
    "priv.me",
    // --- China / India / Russia ------------------------------------------
    "com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn", "ac.cn",
    "co.in", "net.in", "org.in", "firm.in", "gen.in", "ind.in", "ac.in",
    "gov.in", "edu.in", "res.in",
    "com.ru", "net.ru", "org.ru", "pp.ru", "msk.ru", "spb.ru",
    // --- Turkey / Mexico / Argentina ---------------------------------------
    "com.tr", "net.tr", "org.tr", "gov.tr", "edu.tr", "web.tr",
    "com.mx", "net.mx", "org.mx", "gob.mx", "edu.mx",
    "com.ar", "net.ar", "org.ar", "gob.ar", "edu.ar",
    // --- Misc multi-label families often seen in DNS traffic -------------
    "com.sg", "net.sg", "org.sg", "edu.sg", "gov.sg",
    "com.hk", "net.hk", "org.hk", "edu.hk", "gov.hk",
    "com.tw", "net.tw", "org.tw", "edu.tw", "gov.tw",
    "co.kr", "ne.kr", "or.kr", "re.kr", "go.kr", "ac.kr",
    "com.ua", "net.ua", "org.ua", "edu.ua", "gov.ua", "in.ua",
    "co.th", "ac.th", "go.th", "in.th", "or.th", "net.th",
    "com.my", "net.my", "org.my", "edu.my", "gov.my",
    "com.ph", "net.ph", "org.ph", "edu.ph", "gov.ph",
    "co.id", "or.id", "net.id", "ac.id", "go.id", "web.id", "sch.id",
    "com.vn", "net.vn", "org.vn", "edu.vn", "gov.vn",
    "com.eg", "net.eg", "org.eg", "edu.eg", "gov.eg",
    "com.sa", "net.sa", "org.sa", "edu.sa", "gov.sa", "med.sa",
    "com.pk", "net.pk", "org.pk", "edu.pk", "gov.pk",
    "com.bd", "net.bd", "org.bd", "edu.bd", "gov.bd",
    // --- The PSL's canonical wildcard/exception example ---------------------
    "*.ck", "!www.ck",
];
