//! Property-based tests for Public Suffix List extraction laws.

use dnswire::Name;
use proptest::prelude::*;
use psl::Psl;

fn arb_label() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'z'), 1..=8)
        .prop_map(|cs| cs.into_iter().collect())
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(arb_label(), 1..=5)
        .prop_map(|labels| Name::from_ascii(&labels.join(".")).expect("lowercase labels are valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The eSLD is always exactly one label longer than the eTLD, and the
    /// name is a subdomain of both.
    #[test]
    fn esld_extends_etld_by_one(name in arb_name()) {
        let psl = Psl::embedded();
        match (psl.etld(&name), psl.esld(&name)) {
            (Some(etld), Some(esld)) => {
                prop_assert_eq!(esld.label_count(), etld.label_count() + 1);
                prop_assert!(esld.is_subdomain_of(&etld));
                prop_assert!(name.is_subdomain_of(&esld));
                prop_assert!(name.is_subdomain_of(&etld));
            }
            (Some(etld), None) => {
                // Name *is* its own suffix plus nothing below.
                prop_assert!(name.is_subdomain_of(&etld));
            }
            (None, Some(_)) => prop_assert!(false, "esld without etld"),
            (None, None) => {
                // The name must itself be a public suffix (or the root).
                prop_assert!(psl.is_public_suffix(&name) || name.is_root());
            }
        }
    }

    /// Extraction is invariant under case.
    #[test]
    fn case_invariance(name in arb_name()) {
        let psl = Psl::embedded();
        let upper = Name::from_ascii(&name.to_ascii().to_ascii_uppercase()).unwrap();
        prop_assert_eq!(psl.etld(&name), psl.etld(&upper));
        prop_assert_eq!(psl.esld(&name), psl.esld(&upper));
    }

    /// Extending a name with more labels on the left never changes its
    /// eTLD or eSLD.
    #[test]
    fn prepending_labels_is_stable(name in arb_name(), label in arb_label()) {
        let psl = Psl::embedded();
        let Some(esld) = psl.esld(&name) else { return Ok(()); };
        if let Ok(longer) = name.prepend(label.as_bytes()) {
            prop_assert_eq!(psl.etld(&longer), psl.etld(&name));
            prop_assert_eq!(psl.esld(&longer).unwrap(), esld);
        }
    }

    /// The eSLD of an eSLD is itself (idempotence of registrable-domain
    /// extraction).
    #[test]
    fn esld_is_idempotent(name in arb_name()) {
        let psl = Psl::embedded();
        if let Some(esld) = psl.esld(&name) {
            prop_assert_eq!(psl.esld(&esld), Some(esld.clone()));
        }
    }

    /// A one-label name never has an eSLD, and its eTLD is None (the
    /// label is treated as the public suffix itself).
    #[test]
    fn single_labels_are_suffixes(label in arb_label()) {
        let psl = Psl::embedded();
        let name = Name::from_ascii(&label).unwrap();
        prop_assert_eq!(psl.esld(&name), None);
        prop_assert_eq!(psl.etld(&name), None);
    }
}
