//! `spsc` — lock-free single-producer/single-consumer stage rings and
//! bounded buffer pools for the pipeline hot path.
//!
//! The threaded Observatory pipeline is a chain of stages (feeder →
//! summarizer workers → sequencer → tracker shards) where every edge has
//! exactly one producer and one consumer. That topology admits the
//! cheapest possible hand-off: a fixed-capacity ring where the producer
//! owns the tail index, the consumer owns the head index, and a transfer
//! costs one slot write plus one release store — no locks, no CAS, no
//! syscalls in the steady state. The workspace's `crossbeam-channel`
//! stand-in (a `Mutex` + `Condvar` MPMC queue, see `stubs/README.md`)
//! takes a lock and often a futex wake *per message*; measured on the
//! committed `BENCH_pipeline.json` grid that overhead inverted the
//! scaling curve (workers=2 ran at half the single-threaded rate).
//!
//! Blocking is handled with a spin → yield → timed-park ladder
//! ([`Backoff`]): a few pipeline-friendly spins for the
//! producer-and-consumer-both-hot case, `yield_now` so a single-core host
//! schedules the peer instead of burning the quantum, and finally a
//! `Condvar` park with a 1 ms lease so a missed wakeup can only cost a
//! millisecond, never a deadlock. The park flag is checked by the fast
//! path with a single relaxed load, so an awake peer pays nothing.
//!
//! This crate is the only place in the workspace that uses `unsafe`; the
//! ring is the textbook Lamport SPSC queue (slot publication ordered by
//! the release store of the index), kept small enough to audit by hand
//! and stress-tested cross-thread in the unit tests below.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Pad hot atomics to their own cache line so the producer's tail and
/// the consumer's head never false-share.
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Slot storage; length is a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`, for index masking.
    mask: usize,
    /// Next position to write (monotonic, wraps at `usize::MAX`).
    tail: CachePadded<AtomicUsize>,
    /// Next position to read.
    head: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    /// Set by a side that is about to park; the peer `swap`s it back to
    /// false and notifies under the lock.
    consumer_parked: AtomicBool,
    producer_parked: AtomicBool,
    lock: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
}

// SAFETY: the ring transfers `T` values between exactly two threads; all
// slot accesses are ordered by the acquire/release pair on `tail`
// (publication) and `head` (reclamation), and each index is written by
// exactly one side.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (`Arc` refcount reached zero), so the
        // indices are stable and access is exclusive.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut pos = head;
        while pos != tail {
            let slot = &self.slots[pos & self.mask];
            // SAFETY: positions in `head..tail` hold initialized values
            // that were never popped; we have `&mut self`.
            unsafe { slot.get().cast::<T>().drop_in_place() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Why a non-blocking push did not happen.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The ring is full; the value is handed back.
    Full(T),
    /// The consumer is gone; the value is handed back.
    Disconnected(T),
}

/// Why a non-blocking pop returned nothing.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPopError {
    /// Nothing buffered right now; the producer is still alive.
    Empty,
    /// Nothing buffered and the producer is gone: the stream is over.
    Disconnected,
}

/// Spin → yield → timed-park backoff ladder shared by both endpoints.
#[derive(Debug, Default)]
struct Backoff {
    step: u32,
}

/// Busy-spin steps before the first yield.
const SPINS: u32 = 16;
/// `yield_now` steps before the first timed park. Generous because on a
/// loaded single-core host a yield is exactly the right thing to do.
const YIELDS: u32 = 64;
/// Park lease: an unlucky lost-wakeup race costs at most this long.
const PARK: Duration = Duration::from_millis(1);

impl Backoff {
    /// Returns `true` when the caller should park instead of retrying.
    fn snooze(&mut self) -> bool {
        if self.step < SPINS {
            std::hint::spin_loop();
        } else if self.step < SPINS + YIELDS {
            std::thread::yield_now();
        } else {
            return true;
        }
        self.step += 1;
        false
    }

    /// After a park the channel state may have changed wholesale; resume
    /// at the yield rung rather than the spin rung.
    fn after_park(&mut self) {
        self.step = SPINS;
    }
}

/// The sending half of a ring. Not cloneable — single producer.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer-private copy of `tail` (only we advance it).
    tail: usize,
    /// Last observed `head`; refreshed only when the ring looks full.
    cached_head: usize,
}

/// The receiving half of a ring. Not cloneable — single consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer-private copy of `head` (only we advance it).
    head: usize,
    /// Last observed `tail`; refreshed only when the ring looks empty.
    cached_tail: usize,
}

/// Create a ring with room for at least `capacity` in-flight values
/// (rounded up to a power of two, minimum 2).
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        mask: cap - 1,
        tail: CachePadded(AtomicUsize::new(0)),
        head: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        consumer_parked: AtomicBool::new(false),
        producer_parked: AtomicBool::new(false),
        lock: Mutex::new(()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            shared,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Ring capacity in values.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Values currently in flight (exact from the producer side).
    pub fn len(&self) -> usize {
        self.tail
            .wrapping_sub(self.shared.head.0.load(Ordering::Relaxed))
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push.
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        let cap = self.shared.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap {
                return if self.shared.consumer_alive.load(Ordering::Acquire) {
                    Err(TryPushError::Full(value))
                } else {
                    Err(TryPushError::Disconnected(value))
                };
            }
        }
        if !self.shared.consumer_alive.load(Ordering::Relaxed) {
            return Err(TryPushError::Disconnected(value));
        }
        let slot = &self.shared.slots[self.tail & self.shared.mask];
        // SAFETY: `head..tail` never reaches this slot (checked above),
        // so the consumer is not reading it; the slot is empty (either
        // never used or already popped). Publication to the consumer is
        // ordered by the release store of `tail` below.
        unsafe { slot.get().write(MaybeUninit::new(value)) };
        self.tail = self.tail.wrapping_add(1);
        self.shared.tail.0.store(self.tail, Ordering::Release);
        if self.shared.consumer_parked.swap(false, Ordering::SeqCst) {
            let _guard = self.shared.lock.lock().unwrap();
            self.shared.not_empty.notify_all();
        }
        Ok(())
    }

    /// Blocking push. Returns the value back if the consumer is gone.
    pub fn push(&mut self, mut value: T) -> Result<(), T> {
        let mut backoff = Backoff::default();
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Disconnected(v)) => return Err(v),
                Err(TryPushError::Full(v)) => value = v,
            }
            if backoff.snooze() {
                self.shared.producer_parked.store(true, Ordering::SeqCst);
                // Re-check before sleeping: the consumer may have drained
                // the ring (or died) between the failed push and the flag.
                let head = self.shared.head.0.load(Ordering::Acquire);
                let full = self.tail.wrapping_sub(head) == self.shared.mask + 1;
                let alive = self.shared.consumer_alive.load(Ordering::Acquire);
                if full && alive {
                    let guard = self.shared.lock.lock().unwrap();
                    let _ = self.shared.not_full.wait_timeout(guard, PARK).unwrap();
                }
                self.shared.producer_parked.store(false, Ordering::SeqCst);
                backoff.after_park();
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Release);
        let _guard = self.shared.lock.lock().unwrap();
        self.shared.not_empty.notify_all();
    }
}

impl<T> Consumer<T> {
    /// Ring capacity in values.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Values currently in flight (exact from the consumer side).
    pub fn len(&self) -> usize {
        self.shared
            .tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(self.head)
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking pop.
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        if self.cached_tail == self.head {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.cached_tail == self.head {
                // Order matters: read `producer_alive` first, then re-read
                // `tail`. The producer's last push happens-before its
                // alive=false store, so a dead flag with an unchanged tail
                // really means the stream is complete.
                let alive = self.shared.producer_alive.load(Ordering::Acquire);
                self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
                if self.cached_tail == self.head {
                    return if alive {
                        Err(TryPopError::Empty)
                    } else {
                        Err(TryPopError::Disconnected)
                    };
                }
            }
        }
        let slot = &self.shared.slots[self.head & self.shared.mask];
        // SAFETY: `head < tail` (acquire-loaded above), so this slot was
        // written and released by the producer and not yet consumed.
        let value = unsafe { slot.get().read().assume_init() };
        self.head = self.head.wrapping_add(1);
        self.shared.head.0.store(self.head, Ordering::Release);
        if self.shared.producer_parked.swap(false, Ordering::SeqCst) {
            let _guard = self.shared.lock.lock().unwrap();
            self.shared.not_full.notify_all();
        }
        Ok(value)
    }

    /// Blocking pop. `None` means the producer is gone and the ring is
    /// fully drained — the stream is over.
    pub fn pop(&mut self) -> Option<T> {
        let mut backoff = Backoff::default();
        loop {
            match self.try_pop() {
                Ok(v) => return Some(v),
                Err(TryPopError::Disconnected) => return None,
                Err(TryPopError::Empty) => {}
            }
            if backoff.snooze() {
                self.shared.consumer_parked.store(true, Ordering::SeqCst);
                let tail = self.shared.tail.0.load(Ordering::Acquire);
                let alive = self.shared.producer_alive.load(Ordering::Acquire);
                if tail == self.head && alive {
                    let guard = self.shared.lock.lock().unwrap();
                    let _ = self.shared.not_empty.wait_timeout(guard, PARK).unwrap();
                }
                self.shared.consumer_parked.store(false, Ordering::SeqCst);
                backoff.after_park();
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
        let _guard = self.shared.lock.lock().unwrap();
        self.shared.not_full.notify_all();
    }
}

/// A bounded pool of reusable `Vec<T>` buffers.
///
/// Stage code `get`s an empty buffer, fills and ships it, and the final
/// owner `put`s it back; the steady state allocates no batch storage.
/// The pool is bounded so a stalled stage cannot accumulate idle
/// buffers without limit — an over-capacity `put` simply drops the
/// buffer (allocation pressure, never memory growth).
pub struct Pool<T> {
    inner: Arc<PoolInner<T>>,
}

struct PoolInner<T> {
    stack: Mutex<Vec<Vec<T>>>,
    cap: usize,
}

impl<T> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Pool<T> {
    /// A pool retaining at most `cap` idle buffers.
    pub fn new(cap: usize) -> Pool<T> {
        Pool {
            inner: Arc::new(PoolInner {
                stack: Mutex::new(Vec::with_capacity(cap.min(1_024))),
                cap: cap.max(1),
            }),
        }
    }

    /// Take an empty buffer (recycled if one is idle, fresh otherwise).
    pub fn get(&self) -> Vec<T> {
        self.inner.stack.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a buffer. It is cleared here; dropped if the pool is full.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() == 0 {
            return; // nothing worth retaining
        }
        let mut stack = self.inner.stack.lock().unwrap();
        if stack.len() < self.inner.cap {
            stack.push(buf);
        }
    }

    /// Idle buffers currently retained (tests and gauges).
    pub fn idle(&self) -> usize {
        self.inner.stack.lock().unwrap().len()
    }

    /// Wrap a filled buffer so that dropping it returns the storage to
    /// this pool — for buffers whose last owner is dynamic (e.g. shared
    /// behind an `Arc` across tracker shards).
    pub fn wrap(&self, buf: Vec<T>) -> Recycled<T> {
        Recycled {
            buf: Some(buf),
            pool: self.clone(),
        }
    }
}

/// A `Vec<T>` that returns its storage to a [`Pool`] on drop.
pub struct Recycled<T> {
    buf: Option<Vec<T>>,
    pool: Pool<T>,
}

impl<T> std::ops::Deref for Recycled<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.buf.as_deref().expect("buffer present until drop")
    }
}

impl<T> Drop for Recycled<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert!(matches!(tx.try_push(9), Err(TryPushError::Full(9))));
        for v in 0..4 {
            assert_eq!(rx.try_pop().unwrap(), v);
        }
        assert_eq!(rx.try_pop(), Err(TryPopError::Empty));
    }

    #[test]
    fn wraps_many_times() {
        let (mut tx, mut rx) = ring::<u64>(2);
        for v in 0..10_000u64 {
            tx.push(v).unwrap();
            assert_eq!(rx.pop(), Some(v));
        }
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(64);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for v in 0..N {
                    tx.push(v).unwrap();
                }
            });
            let mut expect = 0u64;
            while let Some(v) = rx.pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
            assert_eq!(expect, N);
        });
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (mut tx, mut rx) = ring::<u8>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let handle = std::thread::spawn(move || {
            tx.push(3).unwrap(); // blocks until a pop frees a slot
            tx
        });
        assert_eq!(rx.pop(), Some(1));
        let _tx = handle.join().unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn push_fails_after_consumer_drop() {
        let (mut tx, rx) = ring::<u8>(4);
        drop(rx);
        assert_eq!(tx.push(7), Err(7));
        assert!(matches!(tx.try_push(8), Err(TryPushError::Disconnected(8))));
    }

    #[test]
    fn pop_drains_then_reports_disconnect() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
    }

    #[test]
    fn dropping_ring_drops_in_flight_values() {
        let marker = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(8);
        for _ in 0..5 {
            tx.try_push(Arc::clone(&marker)).unwrap();
        }
        assert_eq!(Arc::strong_count(&marker), 6);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&marker), 1, "in-flight values leaked");
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = ring::<u8>(4);
        assert!(tx.is_empty());
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.try_pop().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn pool_recycles_and_bounds() {
        let pool = Pool::<u32>::new(2);
        let mut a = pool.get();
        a.extend([1, 2, 3]);
        let cap_a = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap_a, "storage was actually reused");
        // Over-capacity puts are dropped, not retained.
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn recycled_returns_storage_on_drop() {
        let pool = Pool::<u32>::new(4);
        let mut v = pool.get();
        v.extend([5, 6]);
        let wrapped = pool.wrap(v);
        assert_eq!(&*wrapped, &[5, 6]);
        drop(wrapped);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn ping_pong_through_two_rings() {
        // A miniature two-stage pipeline: values go out, doubled values
        // and the recycled buffers come back.
        let (mut task_tx, mut task_rx) = ring::<Vec<u32>>(2);
        let (mut done_tx, mut done_rx) = ring::<Vec<u32>>(2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                while let Some(mut batch) = task_rx.pop() {
                    for v in &mut batch {
                        *v *= 2;
                    }
                    if done_tx.push(batch).is_err() {
                        return;
                    }
                }
            });
            let mut total = 0u64;
            for round in 0..1_000u32 {
                task_tx.push(vec![round, round + 1]).unwrap();
                let out = done_rx.pop().unwrap();
                total += u64::from(out[0]) + u64::from(out[1]);
            }
            drop(task_tx);
            assert_eq!(done_rx.pop(), None);
            assert_eq!(total, (0..1_000u64).map(|r| 2 * r + 2 * (r + 1)).sum());
        });
    }
}
