//! Error type for wire-format encoding and decoding.

use std::fmt;

/// Errors produced while parsing or building DNS messages and IP headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete field could be read.
    Truncated {
        /// What was being parsed when the input ran out.
        what: &'static str,
    },
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A complete name exceeded 255 octets.
    NameTooLong(usize),
    /// A compression pointer pointed at or after its own position, or a
    /// pointer chain was longer than the permitted maximum.
    BadPointer {
        /// Offset of the offending pointer.
        at: usize,
        /// Offset the pointer referred to.
        target: usize,
    },
    /// A label length octet used the reserved 0b10/0b01 prefix.
    BadLabelType(u8),
    /// RDLENGTH disagreed with the RDATA actually present.
    BadRdataLength {
        /// The record type whose RDATA was malformed.
        rtype: u16,
        /// RDLENGTH from the wire.
        declared: usize,
        /// Bytes actually consumed.
        consumed: usize,
    },
    /// A text string (e.g. in TXT) exceeded 255 octets when building.
    StringTooLong(usize),
    /// A name was given in presentation format that is not valid ASCII.
    NotAscii,
    /// An empty label (`..`) appeared in a presentation-format name.
    EmptyLabel,
    /// An IP header field was invalid (bad version, bad IHL, short packet).
    BadIpHeader(&'static str),
    /// UDP header invalid or inconsistent with payload.
    BadUdpHeader(&'static str),
    /// The message would exceed 65 535 octets when serialized.
    MessageTooLong(usize),
    /// A length-prefixed frame declared a payload above the decoder's
    /// configured maximum (see [`crate::framing::Reassembler`]).
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The decoder's maximum.
        max: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "input truncated while reading {what}"),
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadPointer { at, target } => {
                write!(f, "invalid compression pointer at {at} -> {target}")
            }
            WireError::BadLabelType(b) => write!(f, "reserved label type octet {b:#04x}"),
            WireError::BadRdataLength {
                rtype,
                declared,
                consumed,
            } => write!(
                f,
                "rdata length mismatch for type {rtype}: declared {declared}, consumed {consumed}"
            ),
            WireError::StringTooLong(n) => write!(f, "character-string of {n} octets exceeds 255"),
            WireError::NotAscii => write!(f, "name is not ASCII"),
            WireError::EmptyLabel => write!(f, "empty label in name"),
            WireError::BadIpHeader(why) => write!(f, "bad IP header: {why}"),
            WireError::BadUdpHeader(why) => write!(f, "bad UDP header: {why}"),
            WireError::MessageTooLong(n) => write!(f, "message of {n} octets exceeds 65535"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} octets exceeds the {max}-octet limit")
            }
        }
    }
}

impl std::error::Error for WireError {}
