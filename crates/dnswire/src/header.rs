//! The 12-octet DNS message header (RFC 1035 §4.1.1).

use crate::{Opcode, Rcode, Result, WireReader, WireWriter};

/// Parsed DNS header.
///
/// The four section counts are not stored here; [`crate::Message`] derives
/// them from the actual section vectors when serializing, so they can never
/// disagree with the message contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction identifier chosen by the querier.
    pub id: u16,
    /// True for responses, false for queries (QR bit).
    pub qr: bool,
    /// Kind of query.
    pub opcode: Opcode,
    /// Authoritative Answer: the responder is authoritative for the QNAME.
    pub aa: bool,
    /// TrunCation: the response was truncated to fit the transport.
    pub tc: bool,
    /// Recursion Desired: copied from query into response.
    pub rd: bool,
    /// Recursion Available: the responder offers recursion.
    pub ra: bool,
    /// Authentic Data (DNSSEC, RFC 4035).
    pub ad: bool,
    /// Checking Disabled (DNSSEC, RFC 4035).
    pub cd: bool,
    /// Response code. Only the low 4 bits are carried here; EDNS0 extended
    /// bits are merged in by [`crate::Message::parse`].
    pub rcode: Rcode,
}

/// Section counts as they appear on the wire; used during parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Counts {
    pub qd: u16,
    pub an: u16,
    pub ns: u16,
    pub ar: u16,
}

impl Header {
    pub(crate) fn parse(r: &mut WireReader<'_>) -> Result<(Header, Counts)> {
        let id = r.read_u16("header id")?;
        let flags = r.read_u16("header flags")?;
        let counts = Counts {
            qd: r.read_u16("qdcount")?,
            an: r.read_u16("ancount")?,
            ns: r.read_u16("nscount")?,
            ar: r.read_u16("arcount")?,
        };
        let header = Header {
            id,
            qr: flags & 0x8000 != 0,
            opcode: Opcode::from_code(((flags >> 11) & 0x0f) as u8),
            aa: flags & 0x0400 != 0,
            tc: flags & 0x0200 != 0,
            rd: flags & 0x0100 != 0,
            ra: flags & 0x0080 != 0,
            ad: flags & 0x0020 != 0,
            cd: flags & 0x0010 != 0,
            rcode: Rcode::from_code(flags & 0x000f),
        };
        Ok((header, counts))
    }

    pub(crate) fn write(&self, w: &mut WireWriter, counts: Counts) {
        w.write_u16(self.id);
        let mut flags = 0u16;
        if self.qr {
            flags |= 0x8000;
        }
        flags |= (self.opcode.code() as u16) << 11;
        if self.aa {
            flags |= 0x0400;
        }
        if self.tc {
            flags |= 0x0200;
        }
        if self.rd {
            flags |= 0x0100;
        }
        if self.ra {
            flags |= 0x0080;
        }
        if self.ad {
            flags |= 0x0020;
        }
        if self.cd {
            flags |= 0x0010;
        }
        flags |= self.rcode.code() & 0x000f;
        w.write_u16(flags);
        w.write_u16(counts.qd);
        w.write_u16(counts.an);
        w.write_u16(counts.ns);
        w.write_u16(counts.ar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(h: Header) -> Header {
        let mut w = WireWriter::new();
        h.write(&mut w, Counts::default());
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        Header::parse(&mut r).unwrap().0
    }

    #[test]
    fn default_roundtrip() {
        let h = Header::default();
        assert_eq!(roundtrip(h), h);
    }

    #[test]
    fn all_flags_roundtrip() {
        let h = Header {
            id: 0xbeef,
            qr: true,
            opcode: Opcode::Notify,
            aa: true,
            tc: true,
            rd: true,
            ra: true,
            ad: true,
            cd: true,
            rcode: Rcode::Refused,
        };
        assert_eq!(roundtrip(h), h);
    }

    #[test]
    fn counts_parse() {
        let mut w = WireWriter::new();
        Header::default().write(
            &mut w,
            Counts {
                qd: 1,
                an: 2,
                ns: 3,
                ar: 4,
            },
        );
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (_, counts) = Header::parse(&mut r).unwrap();
        assert_eq!((counts.qd, counts.an, counts.ns, counts.ar), (1, 2, 3, 4));
    }

    #[test]
    fn short_header_rejected() {
        let mut r = WireReader::new(&[0u8; 11]);
        assert!(Header::parse(&mut r).is_err());
    }
}
