//! Whole DNS messages and the EDNS0 pseudo-record.

use crate::header::Counts;
use crate::{
    Header, Name, Question, RData, Rcode, Record, RecordClass, RecordType, Result, WireError,
    WireReader, WireWriter,
};

/// EDNS0 state extracted from (or to be encoded into) the OPT pseudo-record
/// in the ADDITIONAL section (RFC 6891).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Requestor's maximum UDP payload size.
    pub udp_payload_size: u16,
    /// EDNS version, normally 0.
    pub version: u8,
    /// DNSSEC OK: the querier wants DNSSEC records in the response.
    pub dnssec_ok: bool,
    /// Raw EDNS options (code/value pairs are carried opaquely; the
    /// pipeline drops them early for privacy, per the paper's §2.5).
    pub options: Vec<u8>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: 1232,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

/// A complete DNS message: header, question, and the three record sections.
///
/// The OPT pseudo-record is lifted out of the ADDITIONAL section into
/// [`Message::edns`] during parsing and re-inserted during serialization, so
/// `additionals` holds only real records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message header (section counts are derived, not stored).
    pub header: Header,
    /// Question section; in practice exactly one entry.
    pub questions: Vec<Question>,
    /// ANSWER section.
    pub answers: Vec<Record>,
    /// AUTHORITY section.
    pub authorities: Vec<Record>,
    /// ADDITIONAL section, excluding the OPT pseudo-record.
    pub additionals: Vec<Record>,
    /// EDNS0 state, if an OPT record was present.
    pub edns: Option<Edns>,
}

impl Message {
    /// Build a plain query for `qname`/`qtype`.
    pub fn query(id: u16, qname: Name, qtype: RecordType) -> Self {
        Message {
            header: Header {
                id,
                ..Header::default()
            },
            questions: vec![Question::new(qname, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        }
    }

    /// Start a response to `query`, echoing id, question, opcode and RD.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        Message {
            header: Header {
                id: query.header.id,
                qr: true,
                opcode: query.header.opcode,
                rd: query.header.rd,
                rcode,
                ..Header::default()
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        }
    }

    /// First question, if present — the common case for real traffic.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Effective RCODE; when serialized with EDNS, codes above 15 are split
    /// between the header and the OPT TTL field and re-merged on parse.
    pub fn rcode(&self) -> Rcode {
        self.header.rcode
    }

    /// Iterate over answer + authority + additional with section tags.
    pub fn all_records(&self) -> impl Iterator<Item = (crate::Section, &Record)> {
        let ans = self.answers.iter().map(|r| (crate::Section::Answer, r));
        let auth = self
            .authorities
            .iter()
            .map(|r| (crate::Section::Authority, r));
        let add = self
            .additionals
            .iter()
            .map(|r| (crate::Section::Additional, r));
        ans.chain(auth).chain(add)
    }

    /// Parse a message from wire octets.
    pub fn parse(wire: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(wire);
        let (mut header, counts) = Header::parse(&mut r)?;

        let mut questions = Vec::with_capacity(counts.qd as usize);
        for _ in 0..counts.qd {
            questions.push(Question::parse(&mut r)?);
        }
        let mut answers = Vec::with_capacity(counts.an as usize);
        for _ in 0..counts.an {
            answers.push(Record::parse(&mut r)?);
        }
        let mut authorities = Vec::with_capacity(counts.ns as usize);
        for _ in 0..counts.ns {
            authorities.push(Record::parse(&mut r)?);
        }
        let mut additionals = Vec::with_capacity(counts.ar as usize);
        let mut edns = None;
        for _ in 0..counts.ar {
            let rec = Record::parse(&mut r)?;
            if let RData::Opt(options) = rec.rdata {
                // RFC 6891: CLASS carries the UDP size, TTL carries
                // extended-RCODE (high 8 bits of the 12-bit code), version,
                // and flags.
                let ext_rcode = (rec.ttl >> 24) as u16;
                let version = ((rec.ttl >> 16) & 0xff) as u8;
                let dnssec_ok = rec.ttl & 0x8000 != 0;
                if ext_rcode != 0 {
                    let full = (ext_rcode << 4) | header.rcode.code();
                    header.rcode = Rcode::from_code(full);
                }
                edns = Some(Edns {
                    udp_payload_size: rec.class.code(),
                    version,
                    dnssec_ok,
                    options,
                });
            } else {
                additionals.push(rec);
            }
        }

        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }

    /// Serialize to wire octets with name compression.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut w = WireWriter::new();
        let rcode_num = self.header.rcode.code();
        if rcode_num > 0x0f && self.edns.is_none() {
            // An extended RCODE cannot be represented without EDNS.
            return Err(WireError::MessageTooLong(rcode_num as usize));
        }
        let ar_count = self.additionals.len() + usize::from(self.edns.is_some());
        let counts = Counts {
            qd: self.questions.len() as u16,
            an: self.answers.len() as u16,
            ns: self.authorities.len() as u16,
            ar: ar_count as u16,
        };
        // The header's 4-bit RCODE field gets the low bits.
        let mut header = self.header;
        header.rcode = Rcode::from_code(rcode_num & 0x0f);
        header.write(&mut w, counts);

        for q in &self.questions {
            q.write(&mut w)?;
        }
        for rec in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rec.write(&mut w)?;
        }
        if let Some(edns) = &self.edns {
            let mut ttl = ((rcode_num >> 4) as u32) << 24;
            ttl |= (edns.version as u32) << 16;
            if edns.dnssec_ok {
                ttl |= 0x8000;
            }
            let opt = Record {
                name: Name::root(),
                class: RecordClass::from_code(edns.udp_payload_size),
                ttl,
                rdata: RData::Opt(edns.options.clone()),
            };
            opt.write(&mut w)?;
        }
        let bytes = w.into_bytes();
        if bytes.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong(bytes.len()));
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Soa;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let query = Message::query(
            7,
            Name::from_ascii("www.example.com").unwrap(),
            RecordType::A,
        );
        let mut resp = Message::response_to(&query, Rcode::NoError);
        resp.header.aa = true;
        resp.answers.push(Record::new(
            Name::from_ascii("www.example.com").unwrap(),
            300,
            RData::A(Ipv4Addr::new(93, 184, 216, 34)),
        ));
        resp.authorities.push(Record::new(
            Name::from_ascii("example.com").unwrap(),
            86400,
            RData::Ns(Name::from_ascii("ns1.example.com").unwrap()),
        ));
        resp.additionals.push(Record::new(
            Name::from_ascii("ns1.example.com").unwrap(),
            86400,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        resp
    }

    #[test]
    fn roundtrip_response() {
        let msg = sample_response();
        let wire = msg.to_bytes().unwrap();
        let parsed = Message::parse(&wire).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn compression_shrinks_message() {
        let msg = sample_response();
        let wire = msg.to_bytes().unwrap();
        // Uncompressed, the four names would repeat "example.com" in full;
        // with compression the message must be well under that size.
        let uncompressed_estimate: usize = 12
            + msg.questions[0].qname.wire_len()
            + 4
            + msg
                .all_records()
                .map(|(_, r)| r.name.wire_len() + 10 + 20)
                .sum::<usize>();
        assert!(wire.len() < uncompressed_estimate);
    }

    #[test]
    fn edns_roundtrip() {
        let mut msg = Message::query(
            1,
            Name::from_ascii("example.com").unwrap(),
            RecordType::Aaaa,
        );
        msg.edns = Some(Edns {
            udp_payload_size: 4096,
            version: 0,
            dnssec_ok: true,
            options: vec![],
        });
        let wire = msg.to_bytes().unwrap();
        let parsed = Message::parse(&wire).unwrap();
        assert_eq!(parsed.edns.as_ref().unwrap().udp_payload_size, 4096);
        assert!(parsed.edns.as_ref().unwrap().dnssec_ok);
        assert!(parsed.additionals.is_empty());
    }

    #[test]
    fn extended_rcode_roundtrip() {
        let mut msg = Message::query(2, Name::from_ascii("x.test").unwrap(), RecordType::A);
        msg.header.qr = true;
        msg.header.rcode = Rcode::Unknown(16); // BADVERS
        msg.edns = Some(Edns::default());
        let wire = msg.to_bytes().unwrap();
        let parsed = Message::parse(&wire).unwrap();
        assert_eq!(parsed.header.rcode, Rcode::Unknown(16));
    }

    #[test]
    fn extended_rcode_without_edns_is_an_error() {
        let mut msg = Message::query(2, Name::from_ascii("x.test").unwrap(), RecordType::A);
        msg.header.rcode = Rcode::Unknown(16);
        assert!(msg.to_bytes().is_err());
    }

    #[test]
    fn nxdomain_with_soa() {
        let query = Message::query(
            9,
            Name::from_ascii("nope.example.com").unwrap(),
            RecordType::A,
        );
        let mut resp = Message::response_to(&query, Rcode::NxDomain);
        resp.authorities.push(Record::new(
            Name::from_ascii("example.com").unwrap(),
            300,
            RData::Soa(Soa {
                mname: Name::from_ascii("ns1.example.com").unwrap(),
                rname: Name::from_ascii("host.example.com").unwrap(),
                serial: 1,
                refresh: 2,
                retry: 3,
                expire: 4,
                minimum: 15,
            }),
        ));
        let wire = resp.to_bytes().unwrap();
        let parsed = Message::parse(&wire).unwrap();
        assert_eq!(parsed.rcode(), Rcode::NxDomain);
        assert_eq!(parsed.authorities.len(), 1);
    }

    #[test]
    fn query_constructor() {
        let q = Message::query(3, Name::from_ascii("a.b").unwrap(), RecordType::Txt);
        assert!(!q.header.qr);
        assert_eq!(q.questions.len(), 1);
        let wire = q.to_bytes().unwrap();
        assert_eq!(Message::parse(&wire).unwrap(), q);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Message::parse(&[]).is_err());
        assert!(Message::parse(&[0u8; 5]).is_err());
        // Header claims a question that isn't there.
        let mut bytes = sample_response().to_bytes().unwrap();
        bytes.truncate(14);
        assert!(Message::parse(&bytes).is_err());
    }

    #[test]
    fn all_records_iterates_in_section_order() {
        let msg = sample_response();
        let sections: Vec<_> = msg.all_records().map(|(s, _)| s).collect();
        assert_eq!(
            sections,
            vec![
                crate::Section::Answer,
                crate::Section::Authority,
                crate::Section::Additional
            ]
        );
    }
}
