//! Resource records (RFC 1035 §4.1.3).

use crate::{Name, RData, RecordClass, RecordType, Result, WireReader, WireWriter};
use std::fmt;

/// Which message section a record appeared in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// ANSWER section.
    Answer,
    /// AUTHORITY section.
    Authority,
    /// ADDITIONAL section.
    Additional,
}

/// A resource record: owner name, class, TTL and typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name the record is attached to.
    pub name: Name,
    /// Record class, virtually always `IN`.
    pub class: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed payload.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for an `IN`-class record.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// The record type, derived from the RDATA.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    pub(crate) fn parse(r: &mut WireReader<'_>) -> Result<Self> {
        let name = r.read_name()?;
        let rtype = RecordType::from_code(r.read_u16("record type")?);
        let class = RecordClass::from_code(r.read_u16("record class")?);
        let ttl = r.read_u32("record ttl")?;
        let rdlength = r.read_u16("rdlength")? as usize;
        let rdata = RData::parse(r, rtype, rdlength)?;
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }

    pub(crate) fn write(&self, w: &mut WireWriter) -> Result<()> {
        w.write_name(&self.name)?;
        w.write_u16(self.rtype().code());
        w.write_u16(self.class.code());
        w.write_u32(self.ttl);
        let len_at = w.len();
        w.write_u16(0); // placeholder RDLENGTH
        let rdata_start = w.len();
        self.rdata.write(w)?;
        let rdlen = w.len() - rdata_start;
        debug_assert!(rdlen <= u16::MAX as usize, "rdata cannot exceed 65535");
        w.patch_u16(len_at, rdlen as u16);
        Ok(())
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name,
            self.ttl,
            self.class,
            self.rtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn roundtrip() {
        let rec = Record::new(
            Name::from_ascii("www.example.com").unwrap(),
            300,
            RData::A(Ipv4Addr::new(93, 184, 216, 34)),
        );
        let mut w = WireWriter::new();
        rec.write(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Record::parse(&mut r).unwrap(), rec);
        assert!(r.is_empty());
    }

    #[test]
    fn rdlength_is_patched() {
        let rec = Record::new(
            Name::from_ascii("t.example").unwrap(),
            60,
            RData::Txt(vec![b"hello".to_vec()]),
        );
        let mut w = WireWriter::new();
        rec.write(&mut w).unwrap();
        let bytes = w.into_bytes();
        // name(11) + type(2) + class(2) + ttl(4) => rdlength at offset 19.
        let rdlen = u16::from_be_bytes([bytes[19], bytes[20]]);
        assert_eq!(rdlen, 6); // 1 length octet + "hello"
    }

    #[test]
    fn display() {
        let rec = Record::new(
            Name::from_ascii("www.example.com").unwrap(),
            300,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        );
        assert_eq!(rec.to_string(), "www.example.com 300 IN A 1.2.3.4");
    }
}
