//! IPv4, IPv6 and UDP header codecs, plus hop-count inference.
//!
//! Passive DNS sensors hand the pipeline raw packets starting at the IP
//! header (paper §2.1). These codecs carry exactly the fields the
//! summarization step needs; options and extension headers are skipped,
//! not interpreted.

use crate::{Result, WireError};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Protocol number for UDP in the IPv4 `protocol` / IPv6 `next header` field.
pub const PROTO_UDP: u8 = 17;

/// Decoded fields from an IPv4 or IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpHeader {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Received TTL (IPv4) or hop limit (IPv6).
    pub ttl: u8,
    /// Layer-4 protocol number.
    pub protocol: u8,
    /// Offset of the layer-4 header from the start of the buffer.
    pub payload_offset: usize,
    /// Total packet length according to the header.
    pub total_len: usize,
}

/// Decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// UDP length field (header + payload).
    pub length: u16,
}

/// Size of the fixed UDP header.
pub const UDP_HEADER_LEN: usize = 8;

impl IpHeader {
    /// Parse an IPv4 or IPv6 header from the start of `buf`, dispatching on
    /// the version nibble.
    pub fn parse(buf: &[u8]) -> Result<IpHeader> {
        let first = *buf.first().ok_or(WireError::BadIpHeader("empty buffer"))?;
        match first >> 4 {
            4 => Self::parse_v4(buf),
            6 => Self::parse_v6(buf),
            _ => Err(WireError::BadIpHeader("unknown IP version")),
        }
    }

    fn parse_v4(buf: &[u8]) -> Result<IpHeader> {
        if buf.len() < 20 {
            return Err(WireError::BadIpHeader("IPv4 header shorter than 20"));
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl < 20 {
            return Err(WireError::BadIpHeader("IPv4 IHL below 5"));
        }
        if buf.len() < ihl {
            return Err(WireError::BadIpHeader("IPv4 options truncated"));
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < ihl {
            return Err(WireError::BadIpHeader("IPv4 total length below IHL"));
        }
        Ok(IpHeader {
            src: IpAddr::V4(Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15])),
            dst: IpAddr::V4(Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19])),
            ttl: buf[8],
            protocol: buf[9],
            payload_offset: ihl,
            total_len,
        })
    }

    fn parse_v6(buf: &[u8]) -> Result<IpHeader> {
        if buf.len() < 40 {
            return Err(WireError::BadIpHeader("IPv6 header shorter than 40"));
        }
        let payload_len = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        // Extension headers are rare on resolver↔authoritative paths; we
        // only accept packets where UDP follows directly, matching the
        // sensors' behaviour of reconstructing plain UDP/53 transactions.
        Ok(IpHeader {
            src: IpAddr::V6(Ipv6Addr::from(src)),
            dst: IpAddr::V6(Ipv6Addr::from(dst)),
            ttl: buf[7],
            protocol: buf[6],
            payload_offset: 40,
            total_len: 40 + payload_len,
        })
    }

    /// Serialize an IPv4 header (no options) followed by nothing; the
    /// caller appends the payload. `payload_len` sizes the length field.
    pub fn build_v4(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, payload_len: usize) -> Vec<u8> {
        let total = 20 + payload_len;
        let mut h = vec![0u8; 20];
        h[0] = 0x45; // version 4, IHL 5
        h[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        h[8] = ttl;
        h[9] = PROTO_UDP;
        h[12..16].copy_from_slice(&src.octets());
        h[16..20].copy_from_slice(&dst.octets());
        let sum = ipv4_checksum(&h);
        h[10..12].copy_from_slice(&sum.to_be_bytes());
        h
    }

    /// Serialize an IPv6 header; the caller appends the payload.
    pub fn build_v6(src: Ipv6Addr, dst: Ipv6Addr, hop_limit: u8, payload_len: usize) -> Vec<u8> {
        let mut h = vec![0u8; 40];
        h[0] = 0x60;
        h[4..6].copy_from_slice(&(payload_len as u16).to_be_bytes());
        h[6] = PROTO_UDP;
        h[7] = hop_limit;
        h[8..24].copy_from_slice(&src.octets());
        h[24..40].copy_from_slice(&dst.octets());
        h
    }
}

/// RFC 1071 Internet checksum over an IPv4 header.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl UdpHeader {
    /// Parse a UDP header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<UdpHeader> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::BadUdpHeader("shorter than 8 octets"));
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if (length as usize) < UDP_HEADER_LEN {
            return Err(WireError::BadUdpHeader("length field below 8"));
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length,
        })
    }

    /// Serialize a UDP header for a payload of `payload_len` octets.
    /// The checksum is left zero (legal for IPv4, and the sensors do not
    /// verify it).
    pub fn build(src_port: u16, dst_port: u16, payload_len: usize) -> Vec<u8> {
        let mut h = vec![0u8; UDP_HEADER_LEN];
        h[0..2].copy_from_slice(&src_port.to_be_bytes());
        h[2..4].copy_from_slice(&dst_port.to_be_bytes());
        h[4..6].copy_from_slice(&((UDP_HEADER_LEN + payload_len) as u16).to_be_bytes());
        h
    }
}

/// A fully decoded UDP datagram: IP header, UDP header, and DNS payload
/// span within the original buffer.
#[derive(Debug, Clone, Copy)]
pub struct UdpDatagram {
    /// Network-layer fields.
    pub ip: IpHeader,
    /// Transport-layer fields.
    pub udp: UdpHeader,
    /// Offset of the DNS payload from the start of the buffer.
    pub payload_offset: usize,
    /// Length of the DNS payload.
    pub payload_len: usize,
}

/// Decode an IP packet down to its UDP payload span.
pub fn parse_udp_packet(buf: &[u8]) -> Result<UdpDatagram> {
    let ip = IpHeader::parse(buf)?;
    if ip.protocol != PROTO_UDP {
        return Err(WireError::BadUdpHeader("not UDP"));
    }
    let l4 = buf
        .get(ip.payload_offset..)
        .ok_or(WireError::BadUdpHeader("missing UDP header"))?;
    let udp = UdpHeader::parse(l4)?;
    let payload_offset = ip.payload_offset + UDP_HEADER_LEN;
    let payload_len = udp.length as usize - UDP_HEADER_LEN;
    if buf.len() < payload_offset + payload_len {
        return Err(WireError::BadUdpHeader("payload truncated"));
    }
    Ok(UdpDatagram {
        ip,
        udp,
        payload_offset,
        payload_len,
    })
}

/// Build a complete UDP/IP packet around a DNS payload.
pub fn build_udp_packet(
    src: IpAddr,
    dst: IpAddr,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    payload: &[u8],
) -> Vec<u8> {
    let udp_len = UDP_HEADER_LEN + payload.len();
    let mut pkt = match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => IpHeader::build_v4(s, d, ttl, udp_len),
        (IpAddr::V6(s), IpAddr::V6(d)) => IpHeader::build_v6(s, d, ttl, udp_len),
        // Mixed families cannot occur on a real path; fall back to mapped v6.
        (s, d) => {
            let to6 = |a: IpAddr| match a {
                IpAddr::V4(v4) => v4.to_ipv6_mapped(),
                IpAddr::V6(v6) => v6,
            };
            IpHeader::build_v6(to6(s), to6(d), ttl, udp_len)
        }
    };
    pkt.extend_from_slice(&UdpHeader::build(src_port, dst_port, payload.len()));
    pkt.extend_from_slice(payload);
    pkt
}

/// Common initial TTL values used by real stacks (cf. Jin et al., hop-count
/// filtering): 32 (old Windows), 64 (Linux/macOS), 128 (Windows), 255
/// (network gear, many BSDs).
const INITIAL_TTLS: [u8; 4] = [32, 64, 128, 255];

/// Infer the number of router hops a packet traversed from its received
/// TTL, assuming the sender used the next-highest common initial TTL.
///
/// Returns `None` for TTL 0 (cannot have arrived) — otherwise
/// `initial − received`, where `initial` is the smallest common initial
/// TTL ≥ received.
pub fn infer_hops(received_ttl: u8) -> Option<u8> {
    if received_ttl == 0 {
        return None;
    }
    let initial = INITIAL_TTLS
        .iter()
        .copied()
        .find(|&init| init >= received_ttl)
        .unwrap_or(255);
    Some(initial - received_ttl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_roundtrip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 53);
        let payload = b"hello dns";
        let pkt = build_udp_packet(src.into(), dst.into(), 4321, 53, 57, payload);
        let dg = parse_udp_packet(&pkt).unwrap();
        assert_eq!(dg.ip.src, IpAddr::V4(src));
        assert_eq!(dg.ip.dst, IpAddr::V4(dst));
        assert_eq!(dg.ip.ttl, 57);
        assert_eq!(dg.udp.src_port, 4321);
        assert_eq!(dg.udp.dst_port, 53);
        assert_eq!(
            &pkt[dg.payload_offset..dg.payload_offset + dg.payload_len],
            payload
        );
    }

    #[test]
    fn v6_roundtrip() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::53".parse().unwrap();
        let payload = b"payload";
        let pkt = build_udp_packet(src.into(), dst.into(), 1000, 53, 61, payload);
        let dg = parse_udp_packet(&pkt).unwrap();
        assert_eq!(dg.ip.src, IpAddr::V6(src));
        assert_eq!(dg.ip.ttl, 61);
        assert_eq!(dg.payload_len, payload.len());
    }

    #[test]
    fn ipv4_checksum_is_valid() {
        let h = IpHeader::build_v4(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 64, 10);
        // Recomputing the checksum over a header with a valid checksum
        // field must give zero.
        assert_eq!(ipv4_checksum(&h), 0);
    }

    #[test]
    fn bad_packets_rejected() {
        assert!(IpHeader::parse(&[]).is_err());
        assert!(IpHeader::parse(&[0x45; 10]).is_err()); // short v4
        assert!(IpHeader::parse(&[0x60; 20]).is_err()); // short v6
        assert!(IpHeader::parse(&[0x15; 20]).is_err()); // version 1
        let mut bad_ihl = vec![0u8; 20];
        bad_ihl[0] = 0x41; // IHL = 1 word
        assert!(IpHeader::parse(&bad_ihl).is_err());
        // Non-UDP protocol.
        let mut tcp =
            IpHeader::build_v4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 64, 20);
        tcp[9] = 6;
        tcp[10..12].copy_from_slice(&[0, 0]);
        tcp.extend_from_slice(&[0u8; 20]);
        assert!(parse_udp_packet(&tcp).is_err());
    }

    #[test]
    fn udp_length_below_8_rejected() {
        let mut h = UdpHeader::build(1, 2, 0);
        h[4..6].copy_from_slice(&3u16.to_be_bytes());
        assert!(UdpHeader::parse(&h).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut pkt = build_udp_packet(
            IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            IpAddr::V4(Ipv4Addr::new(2, 2, 2, 2)),
            1,
            2,
            64,
            b"abcdef",
        );
        pkt.truncate(pkt.len() - 3);
        assert!(parse_udp_packet(&pkt).is_err());
    }

    #[test]
    fn hop_inference() {
        assert_eq!(infer_hops(64), Some(0));
        assert_eq!(infer_hops(57), Some(7));
        assert_eq!(infer_hops(33), Some(31));
        assert_eq!(infer_hops(32), Some(0));
        assert_eq!(infer_hops(120), Some(8));
        assert_eq!(infer_hops(250), Some(5));
        assert_eq!(infer_hops(0), None);
        assert_eq!(infer_hops(255), Some(0));
    }
}
