//! RDATA payloads for the record types the measurement pipeline carries.

use crate::{Name, RecordType, Result, WireError, WireReader, WireWriter};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Start-of-authority payload (RFC 1035 §3.3.13).
///
/// The `minimum` field doubles as the negative-caching TTL per RFC 2308,
/// which is central to the paper's Happy Eyeballs analysis (§5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary nameserver of the zone.
    pub mname: Name,
    /// Mailbox of the zone administrator, encoded as a name.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry limit, seconds.
    pub expire: u32,
    /// Minimum TTL — in practice the negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// Mail-exchange payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mx {
    /// Lower is preferred.
    pub preference: u16,
    /// Host that accepts mail.
    pub exchange: Name,
}

/// Service-locator payload (RFC 2782).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SvcRecord {
    /// Lower is tried first.
    pub priority: u16,
    /// Relative weight among equal priorities.
    pub weight: u16,
    /// Service port.
    pub port: u16,
    /// Host providing the service.
    pub target: Name,
}

/// Delegation-signer payload (RFC 4034 §5); digest is carried opaquely.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ds {
    /// Key tag of the referenced DNSKEY.
    pub key_tag: u16,
    /// DNSSEC algorithm number.
    pub algorithm: u8,
    /// Digest algorithm number.
    pub digest_type: u8,
    /// Raw digest bytes.
    pub digest: Vec<u8>,
}

/// DNSSEC signature payload (RFC 4034 §3); the signature is carried opaquely.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rrsig {
    /// Record type this signature covers.
    pub type_covered: RecordType,
    /// DNSSEC algorithm number.
    pub algorithm: u8,
    /// Number of labels in the signed owner name.
    pub labels: u8,
    /// Original TTL of the covered RRset.
    pub original_ttl: u32,
    /// Signature validity end, UNIX-ish epoch seconds.
    pub expiration: u32,
    /// Signature validity start.
    pub inception: u32,
    /// Key tag of the signing key.
    pub key_tag: u16,
    /// Name of the signing zone.
    pub signer: Name,
    /// Raw signature bytes.
    pub signature: Vec<u8>,
}

/// Parsed RDATA.
///
/// Record types we do not model keep their raw octets in
/// [`RData::Unknown`], so any message round-trips loss-free.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Nameserver host name.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Reverse-DNS pointer target.
    Ptr(Name),
    /// Start of authority.
    Soa(Soa),
    /// Mail exchange.
    Mx(Mx),
    /// Text strings (each at most 255 octets).
    Txt(Vec<Vec<u8>>),
    /// Service locator.
    Srv(SvcRecord),
    /// Delegation signer.
    Ds(Ds),
    /// DNSSEC signature.
    Rrsig(Rrsig),
    /// EDNS0 options, raw (interpreted by [`crate::Edns`]).
    Opt(Vec<u8>),
    /// Opaque RDATA of a type we do not model.
    Unknown {
        /// Numeric record type.
        rtype: u16,
        /// Raw RDATA octets.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type corresponding to this payload.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Soa(_) => RecordType::Soa,
            RData::Mx(_) => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Srv(_) => RecordType::Srv,
            RData::Ds(_) => RecordType::Ds,
            RData::Rrsig(_) => RecordType::Rrsig,
            RData::Opt(_) => RecordType::Opt,
            RData::Unknown { rtype, .. } => RecordType::from_code(*rtype),
        }
    }

    /// Parse RDATA of type `rtype` occupying `rdlength` octets at the
    /// reader's position. The reader always ends exactly at the end of the
    /// RDATA (we re-seek for name-bearing types to be robust against
    /// trailing junk inside the declared RDLENGTH).
    pub(crate) fn parse(
        r: &mut WireReader<'_>,
        rtype: RecordType,
        rdlength: usize,
    ) -> Result<Self> {
        let start = r.position();
        let end = start
            .checked_add(rdlength)
            .ok_or(WireError::Truncated { what: "rdata" })?;
        let rd = match rtype {
            RecordType::A => {
                let b = r.read_slice(4, "A rdata")?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RecordType::Aaaa => {
                let b = r.read_slice(16, "AAAA rdata")?;
                let mut octets = [0u8; 16];
                octets.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(octets))
            }
            RecordType::Ns => RData::Ns(r.read_name()?),
            RecordType::Cname => RData::Cname(r.read_name()?),
            RecordType::Ptr => RData::Ptr(r.read_name()?),
            RecordType::Soa => RData::Soa(Soa {
                mname: r.read_name()?,
                rname: r.read_name()?,
                serial: r.read_u32("SOA serial")?,
                refresh: r.read_u32("SOA refresh")?,
                retry: r.read_u32("SOA retry")?,
                expire: r.read_u32("SOA expire")?,
                minimum: r.read_u32("SOA minimum")?,
            }),
            RecordType::Mx => RData::Mx(Mx {
                preference: r.read_u16("MX preference")?,
                exchange: r.read_name()?,
            }),
            RecordType::Txt => {
                let mut strings = Vec::new();
                while r.position() < end {
                    strings.push(r.read_character_string()?.to_vec());
                }
                if strings.is_empty() {
                    // RFC 1035 requires at least one character-string.
                    return Err(WireError::BadRdataLength {
                        rtype: rtype.code(),
                        declared: rdlength,
                        consumed: 0,
                    });
                }
                RData::Txt(strings)
            }
            RecordType::Srv => RData::Srv(SvcRecord {
                priority: r.read_u16("SRV priority")?,
                weight: r.read_u16("SRV weight")?,
                port: r.read_u16("SRV port")?,
                target: r.read_name()?,
            }),
            RecordType::Ds => {
                let key_tag = r.read_u16("DS key tag")?;
                let algorithm = r.read_u8("DS algorithm")?;
                let digest_type = r.read_u8("DS digest type")?;
                let digest_len =
                    end.checked_sub(r.position())
                        .ok_or(WireError::BadRdataLength {
                            rtype: rtype.code(),
                            declared: rdlength,
                            consumed: r.position() - start,
                        })?;
                RData::Ds(Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest: r.read_slice(digest_len, "DS digest")?.to_vec(),
                })
            }
            RecordType::Rrsig => {
                let type_covered = RecordType::from_code(r.read_u16("RRSIG covered")?);
                let algorithm = r.read_u8("RRSIG algorithm")?;
                let labels = r.read_u8("RRSIG labels")?;
                let original_ttl = r.read_u32("RRSIG ttl")?;
                let expiration = r.read_u32("RRSIG expiration")?;
                let inception = r.read_u32("RRSIG inception")?;
                let key_tag = r.read_u16("RRSIG key tag")?;
                let signer = r.read_name()?;
                let sig_len = end
                    .checked_sub(r.position())
                    .ok_or(WireError::BadRdataLength {
                        rtype: rtype.code(),
                        declared: rdlength,
                        consumed: r.position() - start,
                    })?;
                RData::Rrsig(Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer,
                    signature: r.read_slice(sig_len, "RRSIG signature")?.to_vec(),
                })
            }
            RecordType::Opt => RData::Opt(r.read_slice(rdlength, "OPT rdata")?.to_vec()),
            _ => RData::Unknown {
                rtype: rtype.code(),
                data: r.read_slice(rdlength, "unknown rdata")?.to_vec(),
            },
        };
        let consumed = r.position() - start;
        if consumed > rdlength {
            return Err(WireError::BadRdataLength {
                rtype: rtype.code(),
                declared: rdlength,
                consumed,
            });
        }
        // Fixed-layout types must consume RDLENGTH exactly; name-bearing
        // compressed names may legitimately stop short of RDLENGTH only if
        // the encoder padded, which we reject too: consumed must equal the
        // declared length.
        if consumed != rdlength {
            return Err(WireError::BadRdataLength {
                rtype: rtype.code(),
                declared: rdlength,
                consumed,
            });
        }
        Ok(rd)
    }

    /// Serialize the RDATA. `w` already contains the record's fixed fields;
    /// the caller patches RDLENGTH afterwards.
    ///
    /// Names inside RDATA are written *uncompressed*: RFC 3597 forbids
    /// compression for post-1035 types, and emitting compression into SOA /
    /// NS / CNAME RDATA complicates RDLENGTH handling for no measurable
    /// gain in a measurement pipeline.
    pub(crate) fn write(&self, w: &mut WireWriter) -> Result<()> {
        match self {
            RData::A(addr) => w.write_slice(&addr.octets()),
            RData::Aaaa(addr) => w.write_slice(&addr.octets()),
            RData::Ns(name) | RData::Cname(name) | RData::Ptr(name) => {
                w.write_name_uncompressed(name)?
            }
            RData::Soa(soa) => {
                w.write_name_uncompressed(&soa.mname)?;
                w.write_name_uncompressed(&soa.rname)?;
                w.write_u32(soa.serial);
                w.write_u32(soa.refresh);
                w.write_u32(soa.retry);
                w.write_u32(soa.expire);
                w.write_u32(soa.minimum);
            }
            RData::Mx(mx) => {
                w.write_u16(mx.preference);
                w.write_name_uncompressed(&mx.exchange)?;
            }
            RData::Txt(strings) => {
                for s in strings {
                    w.write_character_string(s)?;
                }
            }
            RData::Srv(srv) => {
                w.write_u16(srv.priority);
                w.write_u16(srv.weight);
                w.write_u16(srv.port);
                w.write_name_uncompressed(&srv.target)?;
            }
            RData::Ds(ds) => {
                w.write_u16(ds.key_tag);
                w.write_u8(ds.algorithm);
                w.write_u8(ds.digest_type);
                w.write_slice(&ds.digest);
            }
            RData::Rrsig(sig) => {
                w.write_u16(sig.type_covered.code());
                w.write_u8(sig.algorithm);
                w.write_u8(sig.labels);
                w.write_u32(sig.original_ttl);
                w.write_u32(sig.expiration);
                w.write_u32(sig.inception);
                w.write_u16(sig.key_tag);
                w.write_name_uncompressed(&sig.signer)?;
                w.write_slice(&sig.signature);
            }
            RData::Opt(data) => w.write_slice(data),
            RData::Unknown { data, .. } => w.write_slice(data),
        }
        Ok(())
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Mx(m) => write!(f, "{} {}", m.preference, m.exchange),
            RData::Txt(strings) => {
                for (i, s) in strings.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "\"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Srv(s) => write!(f, "{} {} {} {}", s.priority, s.weight, s.port, s.target),
            RData::Ds(d) => write!(
                f,
                "{} {} {} ({} digest octets)",
                d.key_tag,
                d.algorithm,
                d.digest_type,
                d.digest.len()
            ),
            RData::Rrsig(s) => write!(
                f,
                "{} {} {} sig-by {}",
                s.type_covered, s.algorithm, s.labels, s.signer
            ),
            RData::Opt(data) => write!(f, "OPT ({} octets)", data.len()),
            RData::Unknown { rtype, data } => {
                write!(f, "\\# type {} ({} octets)", rtype, data.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rd: &RData) -> RData {
        let mut w = WireWriter::new();
        rd.write(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let parsed = RData::parse(&mut r, rd.rtype(), bytes.len()).unwrap();
        assert!(r.is_empty());
        parsed
    }

    #[test]
    fn a_roundtrip() {
        let rd = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn aaaa_roundtrip() {
        let rd = RData::Aaaa("2001:db8::1".parse().unwrap());
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn name_types_roundtrip() {
        for rd in [
            RData::Ns(Name::from_ascii("ns1.example.com").unwrap()),
            RData::Cname(Name::from_ascii("alias.example.com").unwrap()),
            RData::Ptr(Name::from_ascii("host.example.com").unwrap()),
        ] {
            assert_eq!(roundtrip(&rd), rd);
        }
    }

    #[test]
    fn soa_roundtrip() {
        let rd = RData::Soa(Soa {
            mname: Name::from_ascii("ns1.example.com").unwrap(),
            rname: Name::from_ascii("hostmaster.example.com").unwrap(),
            serial: 2019041901,
            refresh: 7200,
            retry: 900,
            expire: 1209600,
            minimum: 300,
        });
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn mx_srv_roundtrip() {
        let mx = RData::Mx(Mx {
            preference: 10,
            exchange: Name::from_ascii("mail.example.com").unwrap(),
        });
        assert_eq!(roundtrip(&mx), mx);
        let srv = RData::Srv(SvcRecord {
            priority: 0,
            weight: 5,
            port: 443,
            target: Name::from_ascii("svc.example.com").unwrap(),
        });
        assert_eq!(roundtrip(&srv), srv);
    }

    #[test]
    fn txt_roundtrip() {
        let rd = RData::Txt(vec![b"v=spf1 -all".to_vec(), vec![0xff, 0x00]]);
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn empty_txt_rejected() {
        let mut r = WireReader::new(&[]);
        assert!(RData::parse(&mut r, RecordType::Txt, 0).is_err());
    }

    #[test]
    fn ds_rrsig_roundtrip() {
        let ds = RData::Ds(Ds {
            key_tag: 12345,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xab; 32],
        });
        assert_eq!(roundtrip(&ds), ds);
        let sig = RData::Rrsig(Rrsig {
            type_covered: RecordType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 3600,
            expiration: 1_556_668_800,
            inception: 1_554_076_800,
            key_tag: 12345,
            signer: Name::from_ascii("example.com").unwrap(),
            signature: vec![0xcd; 64],
        });
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn unknown_type_is_opaque() {
        let rd = RData::Unknown {
            rtype: 99,
            data: vec![1, 2, 3],
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn declared_length_mismatch_rejected() {
        // A record with 3 bytes of RDATA.
        let mut r = WireReader::new(&[192, 0, 2]);
        assert!(RData::parse(&mut r, RecordType::A, 3).is_err());
        // A record where RDLENGTH says 5 but A consumes 4.
        let mut r = WireReader::new(&[192, 0, 2, 1, 9]);
        assert!(matches!(
            RData::parse(&mut r, RecordType::A, 5).unwrap_err(),
            WireError::BadRdataLength { .. }
        ));
    }

    #[test]
    fn display_forms() {
        assert_eq!(RData::A(Ipv4Addr::new(1, 2, 3, 4)).to_string(), "1.2.3.4");
        assert_eq!(RData::Txt(vec![b"hi".to_vec()]).to_string(), "\"hi\"");
        let mx = RData::Mx(Mx {
            preference: 10,
            exchange: Name::from_ascii("mx.example").unwrap(),
        });
        assert_eq!(mx.to_string(), "10 mx.example");
    }
}
